"""Unit tests for the Android UDP send-path model."""

import pytest

from repro.phone.udp import (
    ANDROID_MAC_BROADCAST_BPS,
    ANDROID_OS_BUFFER_BYTES,
    PROTOTYPE_PACKET_BYTES,
    UdpSendModel,
    android_radio_config,
)


def test_paper_constants():
    assert PROTOTYPE_PACKET_BYTES == 1500
    assert ANDROID_MAC_BROADCAST_BPS == pytest.approx(7.2e6)


def test_buffer_fits_about_658_packets():
    """§V-2: almost all of the first 658 messages (≈1 MB) are received."""
    model = UdpSendModel()
    assert 640 <= model.packets_before_overflow() <= 680


def test_steady_state_reception_matches_14_percent():
    """§V-4: ~14% reception when sending as fast as possible."""
    model = UdpSendModel()
    rate = model.steady_state_reception(app_rate_bps=50e6)
    assert 0.10 <= rate <= 0.20


def test_reception_full_when_app_slower_than_mac():
    model = UdpSendModel()
    assert model.steady_state_reception(4.5e6) == 1.0


def test_radio_config_uses_android_buffer():
    config = android_radio_config()
    assert config.os_buffer_bytes == ANDROID_OS_BUFFER_BYTES
