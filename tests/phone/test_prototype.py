"""Behavioural tests for the single-hop prototype harness (§V-4, Fig. 3).

These use reduced workloads; the full-scale figures come from the bench.
"""

import pytest

from repro.errors import ConfigurationError
from repro.net.leaky_bucket import LeakyBucketConfig
from repro.net.reliability import ReliabilityConfig
from repro.phone.prototype import MODES, PrototypeConfig, run_prototype


def run(mode, n_senders=1, packets=3000, seed=1, **kwargs):
    config = PrototypeConfig(
        n_senders=n_senders, mode=mode, packets_per_sender=packets, **kwargs
    )
    return run_prototype(config, seed)


def test_modes_constant():
    assert MODES == ("raw", "bucket", "bucket_ack")


def test_config_validation():
    with pytest.raises(ConfigurationError):
        PrototypeConfig(mode="bogus")
    with pytest.raises(ConfigurationError):
        PrototypeConfig(n_senders=0)
    with pytest.raises(ConfigurationError):
        PrototypeConfig(packets_per_sender=0)


def test_raw_mode_overflows_like_the_paper():
    """Raw UDP: buffer overflow crushes reception (§V-2: ≈14%)."""
    result = run("raw", packets=6000)
    assert result.reception_rate < 0.35
    assert result.stats.frames_dropped_buffer > 0


def test_raw_mode_first_buffer_worth_received():
    """The first ≈658 packets fit the buffer and arrive."""
    result = run("raw", packets=600)
    assert result.reception_rate > 0.9


def test_bucket_single_sender_near_perfect():
    result = run("bucket")
    assert result.reception_rate > 0.9


def test_bucket_degrades_with_contention():
    solo = run("bucket", n_senders=1).reception_rate
    crowded = run("bucket", n_senders=4, packets=2500).reception_rate
    assert crowded < solo - 0.2


def test_ack_mode_recovers_contention_losses():
    bucket_only = run("bucket", n_senders=3, packets=2500).reception_rate
    with_ack = run("bucket_ack", n_senders=3, packets=2500).reception_rate
    assert with_ack > bucket_only
    assert with_ack > 0.9


def test_fig3_ordering_holds():
    """raw < bucket < bucket_ack for 2 concurrent senders."""
    raw = run("raw", n_senders=2, packets=4000).reception_rate
    bucket = run("bucket", n_senders=2, packets=4000).reception_rate
    acked = run("bucket_ack", n_senders=2, packets=4000).reception_rate
    assert raw < bucket < acked


def test_excessive_leak_rate_hurts_reception():
    """§V-4: leaking faster than the MAC can broadcast causes overflow."""
    good = run(
        "bucket",
        bucket=LeakyBucketConfig(capacity_bytes=300 * 1024, leak_rate_bps=4.5e6),
    ).reception_rate
    bad = run(
        "bucket",
        bucket=LeakyBucketConfig(capacity_bytes=300 * 1024, leak_rate_bps=12e6),
    ).reception_rate
    assert bad < good


def test_oversized_bucket_capacity_hurts_reception():
    """§V-4: a capacity above the real OS buffer lets bursts overflow."""
    good = run(
        "bucket",
        bucket=LeakyBucketConfig(capacity_bytes=300 * 1024, leak_rate_bps=4.5e6),
    ).reception_rate
    bad = run(
        "bucket",
        n_senders=2,
        bucket=LeakyBucketConfig(capacity_bytes=3_000_000, leak_rate_bps=4.5e6),
    ).reception_rate
    assert bad < good


def test_more_retries_improve_reception():
    few = run(
        "bucket_ack",
        n_senders=3,
        packets=2000,
        reliability=ReliabilityConfig(retr_timeout_s=0.2, max_retransmissions=1),
    ).reception_rate
    many = run(
        "bucket_ack",
        n_senders=3,
        packets=2000,
        reliability=ReliabilityConfig(retr_timeout_s=0.2, max_retransmissions=6),
    ).reception_rate
    assert many >= few


def test_goodput_positive():
    result = run("bucket", packets=1000)
    assert result.goodput_bps > 0


def test_result_accounting_consistent():
    result = run("bucket_ack", packets=1000)
    assert result.received <= result.committed <= result.generated


def test_deterministic_per_seed():
    a = run("bucket", seed=5)
    b = run("bucket", seed=5)
    assert a.received == b.received
    assert a.committed == b.committed
