"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(42, "medium") == derive_seed(42, "medium")


def test_derive_seed_varies_with_name():
    assert derive_seed(42, "medium") != derive_seed(42, "workload")


def test_derive_seed_varies_with_master():
    assert derive_seed(1, "medium") != derive_seed(2, "medium")


def test_streams_are_cached():
    registry = RngRegistry(7)
    assert registry.stream("a") is registry.stream("a")


def test_streams_independent():
    registry = RngRegistry(7)
    a_values = [registry.stream("a").random() for _ in range(3)]
    # Drawing from b must not perturb a's future draws.
    registry2 = RngRegistry(7)
    registry2.stream("b").random()
    a_values2 = [registry2.stream("a").random() for _ in range(3)]
    assert a_values == a_values2


def test_same_master_seed_reproduces_streams():
    first = RngRegistry(99).stream("x").random()
    second = RngRegistry(99).stream("x").random()
    assert first == second


def test_reset_recreates_streams():
    registry = RngRegistry(5)
    before = registry.stream("s").random()
    registry.reset()
    after = registry.stream("s").random()
    assert before == after
