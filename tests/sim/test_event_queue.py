"""Unit tests for the scheduler contract, run against every scheduler.

Every test here is parametrized over the full scheduler registry (heap
and calendar), so a new scheduler gets the whole contract suite for
free by registering itself in ``repro.sim.scheduler.SCHEDULERS``.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.event import DEFAULT_PRIORITY, EventQueue, HeapScheduler
from repro.sim.scheduler import SCHEDULERS, CalendarScheduler


@pytest.fixture(params=sorted(SCHEDULERS))
def queue(request):
    return SCHEDULERS[request.param]()


def test_registry_names_match_instances():
    assert HeapScheduler is EventQueue
    assert SCHEDULERS["heap"]().name == "heap"
    assert SCHEDULERS["calendar"]().name == "calendar"
    assert isinstance(SCHEDULERS["calendar"](), CalendarScheduler)


def test_empty_queue_is_falsy(queue):
    assert len(queue) == 0
    assert not queue


def test_pop_returns_earliest_event(queue):
    order = []
    queue.push(2.0, order.append, ("b",))
    queue.push(1.0, order.append, ("a",))
    queue.push(3.0, order.append, ("c",))
    while queue:
        queue.pop().fire()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_fifo_order(queue):
    order = []
    for tag in ("first", "second", "third"):
        queue.push(1.0, order.append, (tag,))
    while queue:
        queue.pop().fire()
    assert order == ["first", "second", "third"]


def test_priority_breaks_time_ties(queue):
    order = []
    queue.push(1.0, order.append, ("low",), priority=5)
    queue.push(1.0, order.append, ("high",), priority=-5)
    assert queue.pop().args == ("high",)
    assert queue.pop().args == ("low",)
    assert not order  # fire() was never called


def test_pop_empty_raises(queue):
    with pytest.raises(SimulationError):
        queue.pop()


def test_cancel_removes_event_from_active_count(queue):
    event = queue.push(1.0, lambda: None)
    assert len(queue) == 1
    queue.cancel(event)
    assert len(queue) == 0
    with pytest.raises(SimulationError):
        queue.pop()


def test_cancel_is_idempotent(queue):
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_cancelled_event_skipped_by_pop(queue):
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.pop().time == 2.0


def test_peek_time_skips_cancelled(queue):
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    assert queue.peek_time() == 1.0
    queue.cancel(first)
    assert queue.peek_time() == 5.0


def test_peek_time_empty_returns_none(queue):
    assert queue.peek_time() is None


def test_clear_discards_everything(queue):
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.peek_time() is None


def test_clear_then_refill_then_stale_cancel_keeps_len_exact(queue):
    """Regression: ``clear()`` must sever queue back-references so a
    cancel on a handle from *before* the clear cannot decrement the
    accounting of events scheduled *after* it."""
    stale = [queue.push(float(i), lambda: None) for i in range(4)]
    queue.clear()
    fresh = [queue.push(10.0 + i, lambda: None) for i in range(3)]
    for event in stale:
        event.cancel()  # e.g. a timer handle kept across a sim reset
    assert len(queue) == 3
    popped = [queue.pop() for _ in range(3)]
    assert [e.time for e in popped] == [10.0, 11.0, 12.0]
    assert all(e is f for e, f in zip(popped, fresh))
    assert len(queue) == 0


def test_pop_severs_back_reference(queue):
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.pop() is event
    event.cancel()  # post-pop cancel must not touch the queue
    assert len(queue) == 1


def test_event_fire_invokes_callback_with_args(queue):
    seen = []
    event = queue.push(0.0, lambda a, b: seen.append((a, b)), (1, 2))
    event.fire()
    assert seen == [(1, 2)]


def test_default_priority_constant():
    assert DEFAULT_PRIORITY == 0


def test_interleaved_push_pop_stays_sorted(queue):
    times = [7.0, 1.0, 3.0, 3.0, 0.5, 9.0, 2.5]
    for t in times[:4]:
        queue.push(t, lambda: None)
    head = [queue.pop().time, queue.pop().time]
    assert head == [1.0, 3.0]
    for t in times[4:]:  # 0.5 and 2.5 rewind below the last popped time
        queue.push(t, lambda: None)
    tail = []
    while queue:
        tail.append(queue.pop().time)
    assert tail == sorted(tail) == [0.5, 2.5, 3.0, 7.0, 9.0]
