"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.event import DEFAULT_PRIORITY, EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert len(queue) == 0
    assert not queue


def test_pop_returns_earliest_event():
    queue = EventQueue()
    order = []
    queue.push(2.0, order.append, ("b",))
    queue.push(1.0, order.append, ("a",))
    queue.push(3.0, order.append, ("c",))
    while queue:
        queue.pop().fire()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_fifo_order():
    queue = EventQueue()
    order = []
    for tag in ("first", "second", "third"):
        queue.push(1.0, order.append, (tag,))
    while queue:
        queue.pop().fire()
    assert order == ["first", "second", "third"]


def test_priority_breaks_time_ties():
    queue = EventQueue()
    order = []
    queue.push(1.0, order.append, ("low",), priority=5)
    queue.push(1.0, order.append, ("high",), priority=-5)
    assert queue.pop().args == ("high",)
    assert queue.pop().args == ("low",)
    assert not order  # fire() was never called


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()


def test_cancel_removes_event_from_active_count():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert len(queue) == 1
    queue.cancel(event)
    assert len(queue) == 0
    with pytest.raises(SimulationError):
        queue.pop()


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_cancelled_event_skipped_by_pop():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.pop().time == 2.0


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    assert queue.peek_time() == 1.0
    queue.cancel(first)
    assert queue.peek_time() == 5.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_clear_discards_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.peek_time() is None


def test_event_fire_invokes_callback_with_args():
    queue = EventQueue()
    seen = []
    event = queue.push(0.0, lambda a, b: seen.append((a, b)), (1, 2))
    event.fire()
    assert seen == [(1, 2)]


def test_default_priority_constant():
    assert DEFAULT_PRIORITY == 0
