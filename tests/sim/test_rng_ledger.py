"""RNG draw ledger: observation-only wrapping, site keys, fault injection.

The load-bearing property is **zero perturbation**: a ledgered stream must
draw exactly the values an unwrapped ``random.Random`` with the same seed
would, because the ledger exists to diagnose divergence — it must never
cause any.  The perturbation knob is the deliberate exception: it flips
exactly one primitive draw of one named stream, which is what the diverge
engine's localization gates inject.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import (
    RngLedger,
    RngRegistry,
    _parse_perturbation,
    active_rng_ledger,
    diff_ledgers,
    rng_ledger,
)


# ----------------------------------------------------------------------
# Observation without perturbation
# ----------------------------------------------------------------------
def _draw_mixture(stream: random.Random) -> list:
    # Primitive draws plus derived draws (uniform/randrange/choice all
    # funnel through random()/getrandbits()).
    return [
        stream.random(),
        stream.uniform(0.0, 5.0),
        stream.getrandbits(16),
        stream.randrange(1000),
        stream.choice(["a", "b", "c", "d"]),
    ]


def test_ledgered_streams_draw_identical_values():
    plain = _draw_mixture(RngRegistry(7).stream("medium"))
    with rng_ledger():
        wrapped = _draw_mixture(RngRegistry(7).stream("medium"))
    assert wrapped == plain


def test_plain_registry_hands_out_unwrapped_streams():
    stream = RngRegistry(1).stream("medium")
    assert type(stream) is random.Random


def test_ledger_scoping():
    assert active_rng_ledger() is None
    with rng_ledger() as ledger:
        assert active_rng_ledger() is ledger
    assert active_rng_ledger() is None


def test_sites_count_per_call_site_and_stream():
    with rng_ledger() as ledger:
        registry = RngRegistry(3)
        medium = registry.stream("medium")
        jitter = registry.stream("jitter")
        for _ in range(4):
            medium.random()  # one site, four draws
        jitter.uniform(0.0, 1.0)  # derived draw -> this line is the site
    sites = ledger.snapshot()["sites"]
    assert ledger.draws == 5
    medium_sites = [site for site in sites if site.startswith("medium@")]
    jitter_sites = [site for site in sites if site.startswith("jitter@")]
    assert len(medium_sites) == 1 and sites[medium_sites[0]] == 4
    assert len(jitter_sites) == 1 and sites[jitter_sites[0]] == 1
    # Site keys name the *calling* code, not random.py internals.
    assert "test_rng_ledger" in medium_sites[0]
    assert "random.py" not in jitter_sites[0]


def test_stream_digests_chain_drawn_values():
    def run(seed):
        with rng_ledger() as ledger:
            RngRegistry(seed).stream("medium").random()
        return ledger.stream_digests()["medium"]

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_diff_ledgers_reports_skewed_sites_sorted():
    a = {"sites": {"s@f:g:1": 3, "s@f:g:2": 5, "t@f:h:9": 1}}
    b = {"sites": {"s@f:g:1": 3, "s@f:g:2": 4}}
    skews = diff_ledgers(a, b)
    assert skews == [
        {"site": "s@f:g:2", "a": 5, "b": 4},
        {"site": "t@f:h:9", "a": 1, "b": 0},
    ]
    assert diff_ledgers(a, a) == []


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_perturbation_flips_exactly_one_random_draw(monkeypatch):
    baseline = RngRegistry(5)
    values = [baseline.stream("medium").random() for _ in range(6)]
    monkeypatch.setenv("REPRO_RNG_PERTURB", "medium:2")
    perturbed_registry = RngRegistry(5)
    perturbed = [perturbed_registry.stream("medium").random() for _ in range(6)]
    flipped = [i for i in range(6) if perturbed[i] != values[i]]
    assert flipped == [2]
    assert perturbed[2] == pytest.approx(1.0 - values[2])


def test_perturbation_flips_exactly_one_getrandbits_draw(monkeypatch):
    baseline = RngRegistry(5).stream("w")
    values = [baseline.getrandbits(8) for _ in range(4)]
    monkeypatch.setenv("REPRO_RNG_PERTURB", "w:1")
    stream = RngRegistry(5).stream("w")
    perturbed = [stream.getrandbits(8) for _ in range(4)]
    flipped = [i for i in range(4) if perturbed[i] != values[i]]
    assert flipped == [1]
    assert perturbed[1] == values[1] ^ 1


def test_perturbation_targets_only_the_named_stream(monkeypatch):
    baseline = _draw_mixture(RngRegistry(9).stream("other"))
    monkeypatch.setenv("REPRO_RNG_PERTURB", "medium:0")
    assert _draw_mixture(RngRegistry(9).stream("other")) == baseline


def test_perturbation_composes_with_ledger(monkeypatch):
    def digest(perturb):
        if perturb:
            monkeypatch.setenv("REPRO_RNG_PERTURB", "medium:0")
        else:
            monkeypatch.delenv("REPRO_RNG_PERTURB", raising=False)
        with rng_ledger() as ledger:
            stream = RngRegistry(2).stream("medium")
            for _ in range(3):
                stream.random()
        snapshot = ledger.snapshot()
        return snapshot["draws"], snapshot["streams"]["medium"]

    plain_draws, plain_digest = digest(perturb=False)
    fault_draws, fault_digest = digest(perturb=True)
    # The ledger digests what was actually drawn: same count, different
    # chained value digest — exactly what a real divergence looks like.
    assert fault_draws == plain_draws == 3
    assert fault_digest != plain_digest


@pytest.mark.parametrize("raw", ["medium", ":3", "medium:", "medium:x", "m:-1"])
def test_parse_perturbation_rejects_malformed(raw):
    with pytest.raises(ConfigurationError):
        _parse_perturbation(raw)


def test_parse_perturbation_accepts_colons_in_stream_name():
    assert _parse_perturbation("a:b:3") == ("a:b", 3)
