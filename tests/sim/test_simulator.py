"""Unit tests for the simulator kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_at_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)


def test_run_advances_clock_to_event_times(sim):
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(0.5, lambda: times.append(sim.now))
    processed = sim.run()
    assert processed == 2
    assert times == [0.5, 1.5]
    assert sim.now == 1.5


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    # Clock advanced to the until bound even though the queue has more.
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_run_until_advances_clock_when_queue_drains(sim):
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_events_can_schedule_more_events(sim):
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_processing(sim):
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 1


def test_max_events_guard(sim):
    def forever():
        sim.schedule(0.1, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError, match=r"processed=100, now="):
        sim.run(max_events=100)


def test_cancel_scheduled_event(sim):
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_run_not_reentrant(sim):
    def nested():
        sim.run()

    sim.schedule(0.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_reset_rewinds_clock_and_queue(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(4.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_same_time_priority_order(sim):
    order = []
    sim.schedule(1.0, lambda: order.append("normal"))
    sim.schedule(1.0, lambda: order.append("urgent"), priority=-1)
    sim.run()
    assert order == ["urgent", "normal"]


def test_pending_events_counts_active(sim):
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    sim.cancel(event)
    assert sim.pending_events == 1


def test_reset_zeroes_metrics_in_place():
    """Regression: reset() used to rewind the clock and queue but leave
    every counter/histogram at its previous value, so back-to-back runs
    on one simulator accumulated stale metrics."""
    sim = Simulator()
    counter = sim.metrics.counter("test.events")
    sim.schedule(0.1, lambda: counter.inc(3))
    sim.run()
    assert counter.value == 3
    sim.reset()
    assert counter.value == 0
    # the cached reference keeps feeding the registry after reset
    sim.schedule(0.1, lambda: counter.inc(2))
    sim.run()
    assert sim.metrics.counter("test.events").value == 2
