"""Unit tests for timers and periodic tasks."""

import pytest

from repro.sim.process import PeriodicTask, Timer


def test_timer_fires_once(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timer_restart_cancels_previous(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(3.0)
    sim.run()
    assert fired == [3.0]


def test_timer_cancel(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_armed_property(sim):
    timer = Timer(sim, lambda: None)
    assert not timer.armed
    timer.start(1.0)
    assert timer.armed
    sim.run()
    assert not timer.armed


def test_timer_can_rearm_from_callback(sim):
    fired = []
    holder = {}

    def on_fire():
        fired.append(sim.now)
        if len(fired) < 3:
            holder["timer"].start(1.0)

    holder["timer"] = Timer(sim, on_fire)
    holder["timer"].start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_task_ticks_at_interval(sim):
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start()
    sim.run(until=3.5)
    task.stop()
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_task_initial_delay(sim):
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start(initial_delay=0.25)
    sim.run(until=2.5)
    task.stop()
    assert ticks == [0.25, 1.25, 2.25]


def test_periodic_task_stop_halts_ticks(sim):
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start()
    sim.run(until=1.5)
    task.stop()
    sim.run(until=5.0)
    assert ticks == [1.0]


def test_periodic_task_stop_from_callback(sim):
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: (ticks.append(sim.now), task.stop()))
    task.start()
    sim.run(until=10.0)
    assert len(ticks) == 1


def test_periodic_task_rejects_bad_interval(sim):
    with pytest.raises(ValueError):
        PeriodicTask(sim, 0.0, lambda: None)


def test_periodic_task_start_idempotent(sim):
    ticks = []
    task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
    task.start()
    task.start()
    sim.run(until=2.5)
    task.stop()
    assert ticks == [1.0, 2.0]


def test_periodic_task_running_property(sim):
    task = PeriodicTask(sim, 1.0, lambda: None)
    assert not task.running
    task.start()
    assert task.running
    task.stop()
    assert not task.running
