"""Scheduler selection plumbing and CalendarScheduler internals."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.event import EventQueue, HeapScheduler
from repro.sim.scheduler import (
    SCHEDULER_ENV,
    SCHEDULER_NAMES,
    CalendarScheduler,
    configured_scheduler,
    resolve_scheduler,
)
from repro.sim.simulator import Simulator


# ----------------------------------------------------------------------
# Selection: registry, env knob, Simulator wiring
# ----------------------------------------------------------------------
def test_registry_exposes_both_kernels():
    assert set(SCHEDULER_NAMES) == {"heap", "calendar"}


def test_resolve_defaults_to_heap(monkeypatch):
    monkeypatch.delenv(SCHEDULER_ENV, raising=False)
    assert isinstance(resolve_scheduler(), EventQueue)
    assert configured_scheduler() == "heap"


def test_resolve_honours_env(monkeypatch):
    monkeypatch.setenv(SCHEDULER_ENV, "calendar")
    assert isinstance(resolve_scheduler(), CalendarScheduler)
    assert configured_scheduler() == "calendar"


def test_resolve_by_name_is_case_and_space_tolerant():
    assert isinstance(resolve_scheduler(" Calendar "), CalendarScheduler)
    assert isinstance(resolve_scheduler("heap"), EventQueue)


def test_resolve_passes_instances_through():
    instance = CalendarScheduler()
    assert resolve_scheduler(instance) is instance


def test_resolve_rejects_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown scheduler"):
        resolve_scheduler("fibonacci")


def test_resolve_rejects_wrong_type():
    with pytest.raises(ConfigurationError, match="Scheduler instance"):
        resolve_scheduler(42)


def test_env_with_unknown_name_raises(monkeypatch):
    monkeypatch.setenv(SCHEDULER_ENV, "splay")
    with pytest.raises(ConfigurationError, match=SCHEDULER_ENV):
        configured_scheduler()


def test_simulator_takes_name_instance_or_env(monkeypatch):
    monkeypatch.delenv(SCHEDULER_ENV, raising=False)
    assert Simulator().scheduler_name == "heap"
    assert Simulator(scheduler="calendar").scheduler_name == "calendar"
    assert Simulator(scheduler=CalendarScheduler()).scheduler_name == "calendar"
    monkeypatch.setenv(SCHEDULER_ENV, "calendar")
    assert Simulator().scheduler_name == "calendar"
    # Explicit argument beats the env knob.
    assert Simulator(scheduler="heap").scheduler_name == "heap"


def test_heap_scheduler_alias():
    assert HeapScheduler is EventQueue
    assert EventQueue().name == "heap"


def test_simulation_outputs_identical_across_schedulers():
    def drive(scheduler):
        sim = Simulator(scheduler=scheduler)
        trace = []

        def tick(tag):
            trace.append((round(sim.now, 9), tag))
            if len(trace) < 40:
                sim.schedule(0.25 * (len(trace) % 5), tick, tag)

        for tag in ("a", "b", "c"):
            sim.schedule(0.0, tick, tag)
        timer = sim.schedule(1.0, tick, "cancelled")
        timer.cancel()
        sim.run(until=30.0)
        return trace, sim.now, sim.events_processed, sim.peak_queue_depth

    assert drive("heap") == drive("calendar")


# ----------------------------------------------------------------------
# CalendarScheduler internals
# ----------------------------------------------------------------------
def test_constructor_rejects_bad_width():
    with pytest.raises(ConfigurationError, match="bucket_width"):
        CalendarScheduler(bucket_width=0.0)
    with pytest.raises(ConfigurationError, match="bucket_width"):
        CalendarScheduler(bucket_width=-1.0)


def test_constructor_rejects_bad_nbuckets():
    with pytest.raises(ConfigurationError, match="nbuckets"):
        CalendarScheduler(nbuckets=0)


def test_ring_doubles_and_halves_around_population():
    queue = CalendarScheduler()
    floor = CalendarScheduler.MIN_BUCKETS
    events = [queue.push(float(i), lambda: None) for i in range(100)]
    assert queue._nbuckets > floor
    for _ in events:
        queue.pop()
    assert queue._nbuckets == floor
    assert len(queue) == 0


def test_resize_purges_cancelled_ghosts():
    queue = CalendarScheduler()
    events = [queue.push(float(i), lambda: None) for i in range(40)]
    for event in events[1:]:
        event.cancel()
    assert len(queue) == 1
    assert queue._stored == 40  # ghosts linger until a resize or scan
    queue._resize(queue.MIN_BUCKETS)
    assert queue._stored == 1  # wholesale ghost purge
    assert queue.pop() is events[0]
    assert len(queue) == 0


def test_sparse_events_use_direct_search_fallback():
    # A fixed narrow width with events far apart guarantees a full ring
    # pass finds nothing, exercising the direct-search fallback.
    queue = CalendarScheduler(bucket_width=0.001, nbuckets=4)
    times = [1000.0, 5.0, 2_000_000.0, 300.0]
    for t in times:
        queue.push(t, lambda: None)
    assert queue.peek_time() == 5.0
    assert [queue.pop().time for _ in range(4)] == sorted(times)


def test_width_retunes_to_live_population():
    queue = CalendarScheduler()
    assert queue._auto_width
    for i in range(100):
        queue.push(1000.0 * i, lambda: None)
    # Mean gap 1000s: the retuned width must be far above the 1.0 seed.
    assert queue._width > 100.0
    drained = [queue.pop().time for _ in range(100)]
    assert drained == sorted(drained)


def test_peek_pop_cache_survives_interleaved_cancel():
    queue = CalendarScheduler()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    first.cancel()  # invalidates the cached head between peek and pop
    assert queue.pop().time == 2.0
    assert len(queue) == 0


def test_zero_time_and_negative_priority_events():
    queue = CalendarScheduler()
    queue.push(0.0, lambda: None, priority=3)
    queue.push(0.0, lambda: None, priority=-3)
    assert queue.pop().priority == -3
    assert queue.pop().priority == 3
