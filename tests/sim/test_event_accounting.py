"""Lazy-cancellation accounting: cancelled-but-unpopped events must not
inflate ``len(queue)`` — and therefore ``Simulator.peak_queue_depth`` —
no matter which cancellation entry point is used or which scheduler
backs the kernel."""

import pytest

from repro.sim.scheduler import SCHEDULER_NAMES, SCHEDULERS
from repro.sim.simulator import Simulator


@pytest.fixture(params=sorted(SCHEDULERS))
def queue(request):
    return SCHEDULERS[request.param]()


@pytest.fixture(params=sorted(SCHEDULER_NAMES))
def sim(request):
    return Simulator(scheduler=request.param)


def test_len_counts_only_active_events(queue):
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    assert len(queue) == 5
    queue.cancel(events[0])
    assert len(queue) == 4


def test_direct_event_cancel_updates_queue_len(queue):
    """`event.cancel()` (not via the queue) must keep accounting exact —
    this is the path retransmission timers use."""
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    assert len(queue) == 1
    assert not queue.pop().cancelled


def test_cancel_is_idempotent(queue):
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    event.cancel()
    queue.cancel(event)
    assert len(queue) == 1


def test_cancel_after_fire_is_a_no_op(sim):
    fired = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert len(sim._queue) == 1
    fired.cancel()  # e.g. an ACK arriving after the retransmit fired
    assert len(sim._queue) == 1


def test_cancel_after_clear_is_a_no_op(queue):
    event = queue.push(1.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    event.cancel()
    assert len(queue) == 0


def test_peak_queue_depth_ignores_cancelled_retransmits(sim):
    """Scheduling N retransmit timers and cancelling them (ACKs arrived)
    must not report a peak of N ghosts."""
    retransmits = [sim.schedule(10.0 + i, lambda: None) for i in range(50)]
    sim.schedule(1.0, lambda: None)
    for event in retransmits:
        event.cancel()
    sim.run()
    assert sim.events_processed == 1
    assert sim.peak_queue_depth == 1


def test_peak_queue_depth_tracks_live_events(sim):
    def fanout():
        for i in range(10):
            sim.schedule(1.0 + i, lambda: None)

    sim.schedule(1.0, fanout)
    sim.run()
    assert sim.events_processed == 11
    assert sim.peak_queue_depth == 10
