"""Unit tests for scenario builders."""

from repro.experiments.scenario import (
    build_campus_scenario,
    build_grid_scenario,
    simulation_device_config,
)
from repro.mobility.campus import STUDENT_CENTER


def test_grid_scenario_shape():
    scenario = build_grid_scenario(rows=4, cols=5, seed=1)
    assert len(scenario.devices) == 20
    assert len(scenario.topology) == 20
    assert len(scenario.consumers) == 1


def test_grid_consumer_at_center():
    scenario = build_grid_scenario(rows=5, cols=5, seed=1)
    consumer = scenario.consumers[0]
    # Centre of a 5x5 grid has the full 8-neighborhood.
    assert len(scenario.topology.neighbors(consumer)) == 8


def test_grid_extra_consumers_from_central_subgrid():
    scenario = build_grid_scenario(rows=10, cols=10, seed=1, n_consumers=4)
    assert len(scenario.consumers) == 4
    assert len(set(scenario.consumers)) == 4
    from repro.net.topology import center_subgrid

    pool = center_subgrid(10, 10, list(range(100)), sub=5)
    assert all(c in pool for c in scenario.consumers)


def test_grid_scenario_deterministic_per_seed():
    a = build_grid_scenario(rows=4, cols=4, seed=9, n_consumers=3)
    b = build_grid_scenario(rows=4, cols=4, seed=9, n_consumers=3)
    assert a.consumers == b.consumers
    assert a.workload_rng().random() == b.workload_rng().random()


def test_simulation_device_config_deep_queue():
    config = simulation_device_config()
    assert config.radio.os_buffer_bytes >= 4_000_000


def test_campus_scenario_builds_initial_population():
    scenario = build_campus_scenario(STUDENT_CENTER, seed=2, duration_s=60.0)
    assert len(scenario.devices) == STUDENT_CENTER.population
    assert scenario.trace_player is not None
    assert "trace" in scenario.extras


def test_campus_consumers_from_initial_nodes():
    scenario = build_campus_scenario(
        STUDENT_CENTER, seed=2, duration_s=60.0, n_consumers=3
    )
    trace = scenario.extras["trace"]
    assert len(scenario.consumers) == 3
    assert all(c in trace.initial_nodes for c in scenario.consumers)


def test_campus_trace_events_scheduled():
    scenario = build_campus_scenario(STUDENT_CENTER, seed=2, duration_s=120.0)
    assert scenario.sim.pending_events > 0


def test_campus_mobility_applies_over_time():
    scenario = build_campus_scenario(
        STUDENT_CENTER, seed=3, duration_s=120.0, frequency_scale=2.0
    )
    scenario.sim.run(until=120.0)
    player = scenario.trace_player
    assert player.moves > 0
