"""Unit tests for metrics aggregation."""

import pytest

from repro.experiments.metrics import AggregateMetrics, TrialMetrics


def trial(recall=1.0, latency=5.0, overhead=1_000_000, rounds=2):
    return TrialMetrics(
        recall=recall,
        latency_s=latency,
        overhead_bytes=overhead,
        rounds=rounds,
    )


def test_overhead_mb_conversion():
    assert trial(overhead=5_130_000).overhead_mb == pytest.approx(5.13)


def test_aggregate_means():
    agg = AggregateMetrics.from_trials(
        [trial(recall=1.0, latency=4.0), trial(recall=0.5, latency=6.0)]
    )
    assert agg.recall_mean == pytest.approx(0.75)
    assert agg.latency_mean == pytest.approx(5.0)
    assert agg.trials == 2


def test_aggregate_std():
    agg = AggregateMetrics.from_trials(
        [trial(latency=4.0), trial(latency=6.0)]
    )
    assert agg.latency_std == pytest.approx(2.0**0.5)


def test_single_trial_zero_std():
    agg = AggregateMetrics.from_trials([trial()])
    assert agg.latency_std == 0.0
    assert agg.recall_std == 0.0


def test_empty_trials_rejected():
    with pytest.raises(ValueError):
        AggregateMetrics.from_trials([])


def test_as_row_rounding():
    agg = AggregateMetrics.from_trials([trial(latency=5.126, overhead=5_134_567)])
    row = agg.as_row()
    assert row["latency_s"] == 5.13
    assert row["overhead_mb"] == 5.13
    assert row["recall"] == 1.0


def test_as_row_sums_audit_violations_over_trials():
    agg = AggregateMetrics.from_trials([
        TrialMetrics(recall=1.0, latency_s=1.0, overhead_bytes=0,
                     extras={"audit": {"unanswered_query": 2}}),
        TrialMetrics(recall=1.0, latency_s=1.0, overhead_bytes=0,
                     extras={"audit": {"unanswered_query": 1,
                                       "early_round_stop": 1}}),
        TrialMetrics(recall=1.0, latency_s=1.0, overhead_bytes=0),  # untraced
    ])
    assert agg.audited_trials == 2
    row = agg.as_row()
    assert row["violations"] == 4
    assert row["audit_unanswered_query"] == 3
    assert row["audit_early_round_stop"] == 1


def test_as_row_clean_audit_reports_zero_violations():
    agg = AggregateMetrics.from_trials([
        TrialMetrics(recall=1.0, latency_s=1.0, overhead_bytes=0,
                     extras={"audit": {}}),
    ])
    row = agg.as_row()
    assert row["violations"] == 0
    assert not any(key.startswith("audit_") for key in row)


def test_as_row_omits_audit_columns_when_untraced():
    agg = AggregateMetrics.from_trials([trial()])
    assert "violations" not in agg.as_row()


def test_as_row_includes_spread_columns():
    agg = AggregateMetrics.from_trials(
        [trial(recall=0.8, latency=1.0), trial(recall=1.0, latency=3.0)]
    )
    row = agg.as_row()
    assert set(row) >= {"recall_std", "latency_std", "overhead_mb_std"}
    assert row["latency_std"] == pytest.approx(2.0**0.5, abs=0.01)
    assert row["recall_std"] > 0.0
    assert row["overhead_mb_std"] == 0.0
