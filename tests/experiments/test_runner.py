"""Unit tests for the trial runner and table rendering."""

import signal
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import TrialMetrics
from repro.experiments.runner import (
    DEFAULT_SEEDS,
    TrialTimeout,
    _trial_deadline,
    configured_jobs,
    configured_seeds,
    configured_trial_timeout,
    render_table,
    run_trials,
    scale_factor,
)


def test_default_seeds_five_runs():
    """The paper averages over 5 runs (§VI-A)."""
    assert len(DEFAULT_SEEDS) == 5


def test_configured_seeds_env(monkeypatch):
    monkeypatch.setenv("REPRO_SEEDS", "3")
    assert configured_seeds() == [1, 2, 3]


def test_configured_seeds_default(monkeypatch):
    monkeypatch.delenv("REPRO_SEEDS", raising=False)
    assert configured_seeds() == list(DEFAULT_SEEDS)


def test_scale_factor_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    assert scale_factor() == 0.25
    monkeypatch.delenv("REPRO_SCALE")
    assert scale_factor(0.5) == 0.5


@pytest.mark.parametrize("raw", ["banana", "2.5", "0", "-3"])
def test_configured_seeds_rejects_bad_values(monkeypatch, raw):
    """Regression: a typo'd REPRO_SEEDS used to crash with a bare
    ValueError (or, for 0/-3, silently yield an empty campaign whose
    aggregation then divided by zero)."""
    monkeypatch.setenv("REPRO_SEEDS", raw)
    with pytest.raises(ConfigurationError) as excinfo:
        configured_seeds()
    assert "REPRO_SEEDS" in str(excinfo.value)
    assert repr(raw) in str(excinfo.value)


@pytest.mark.parametrize("raw", ["fast", "0", "-1"])
def test_scale_factor_rejects_bad_values(monkeypatch, raw):
    """Regression: REPRO_SCALE=0 used to produce empty workloads that
    looked like perfect recall; non-numeric values crashed mid-sweep."""
    monkeypatch.setenv("REPRO_SCALE", raw)
    with pytest.raises(ConfigurationError) as excinfo:
        scale_factor()
    assert "REPRO_SCALE" in str(excinfo.value)
    assert repr(raw) in str(excinfo.value)


def test_configured_jobs_default_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert configured_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert configured_jobs() == 3


@pytest.mark.parametrize("raw", ["0", "auto", "AUTO"])
def test_configured_jobs_auto_means_cpu_count(monkeypatch, raw):
    monkeypatch.setenv("REPRO_JOBS", raw)
    import os

    assert configured_jobs() == (os.cpu_count() or 1)


@pytest.mark.parametrize("raw", ["-2", "two", "1.5"])
def test_configured_jobs_rejects_bad_values(monkeypatch, raw):
    monkeypatch.setenv("REPRO_JOBS", raw)
    with pytest.raises(ConfigurationError) as excinfo:
        configured_jobs()
    assert "REPRO_JOBS" in str(excinfo.value)
    assert repr(raw) in str(excinfo.value)


def test_configured_trial_timeout(monkeypatch):
    monkeypatch.delenv("REPRO_TRIAL_TIMEOUT", raising=False)
    assert configured_trial_timeout() is None
    monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "2.5")
    assert configured_trial_timeout() == 2.5
    monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "0")
    with pytest.raises(ConfigurationError):
        configured_trial_timeout()
    monkeypatch.setenv("REPRO_TRIAL_TIMEOUT", "soon")
    with pytest.raises(ConfigurationError):
        configured_trial_timeout()


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="deadline needs SIGALRM (Unix)"
)
def test_trial_deadline_fires_on_subsecond_timeout():
    """Regression: an integer ``signal.alarm`` would truncate 0.5s to 0
    ("never"); ``setitimer`` must fire the deadline at ~0.5s."""
    start = time.monotonic()
    with pytest.raises(TrialTimeout, match="0.5s deadline"):
        with _trial_deadline(0.5, "sleepy-trial"):
            time.sleep(5.0)
    assert time.monotonic() - start < 2.0


@pytest.mark.parametrize("bad", [0, 0.0, -1.5])
def test_trial_deadline_rejects_non_positive_timeout(bad):
    """A non-positive timeout must be a loud error, not an ``alarm(0)``
    style silent disarm."""
    with pytest.raises(ConfigurationError, match="positive"):
        with _trial_deadline(bad, "x"):
            pass  # pragma: no cover - never entered


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="deadline needs SIGALRM (Unix)"
)
def test_trial_deadline_disarms_and_restores_handler():
    previous = signal.getsignal(signal.SIGALRM)
    with _trial_deadline(0.2, "quick"):
        pass
    assert signal.getsignal(signal.SIGALRM) is previous
    time.sleep(0.3)  # would blow up here if the timer were left armed


def test_trial_deadline_none_disables():
    with _trial_deadline(None, "x"):
        pass


def test_run_trials_aggregates():
    def trial(seed):
        return TrialMetrics(
            recall=1.0, latency_s=float(seed), overhead_bytes=1000
        )

    agg = run_trials(trial, seeds=[1, 2, 3])
    assert agg.trials == 3
    assert agg.latency_mean == pytest.approx(2.0)


def _traced_trial(seed, violate):
    """A trial that runs a tiny simulation visible to global trace sinks."""
    from repro.sim.simulator import Simulator

    sim = Simulator()
    if violate:
        # A round that stopped before its window: early_round_stop fires.
        sim.schedule(0.1, lambda: sim.trace.emit(
            "round_end", node=0, round=1, duration=1.0, window=3.0))
    else:
        sim.schedule(0.1, lambda: sim.trace.emit(
            "round_end", node=0, round=1, duration=3.0, window=3.0))
    sim.run()
    return TrialMetrics(recall=1.0, latency_s=1.0, overhead_bytes=1000)


def test_traced_trials_carry_audit_summary():
    from repro.obs.trace import ListSink, global_sink

    with global_sink(ListSink()):
        agg = run_trials(lambda seed: _traced_trial(seed, False), seeds=[1, 2])
    assert agg.audited_trials == 2
    row = agg.as_row()
    assert row["violations"] == 0


def test_traced_trial_violations_surface_in_row():
    from repro.obs.trace import ListSink, global_sink

    with global_sink(ListSink()):
        agg = run_trials(lambda seed: _traced_trial(seed, True), seeds=[1, 2])
    row = agg.as_row()
    assert row["violations"] == 2
    assert row["audit_early_round_stop"] == 2


def test_untraced_trials_skip_audit():
    agg = run_trials(lambda seed: _traced_trial(seed, True), seeds=[1])
    assert agg.audited_trials == 0
    assert "violations" not in agg.as_row()


def test_render_table_contains_rows():
    table = render_table(
        "My Title",
        ["a", "b"],
        [{"a": 1, "b": "x"}, {"a": 2, "b": "longer-value"}],
    )
    assert "My Title" in table
    assert "longer-value" in table
    lines = table.splitlines()
    assert len(lines) >= 6


def test_render_table_missing_cells_blank():
    table = render_table("T", ["a", "b"], [{"a": 1}])
    assert "1" in table
