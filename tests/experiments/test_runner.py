"""Unit tests for the trial runner and table rendering."""

import pytest

from repro.experiments.metrics import TrialMetrics
from repro.experiments.runner import (
    DEFAULT_SEEDS,
    configured_seeds,
    render_table,
    run_trials,
    scale_factor,
)


def test_default_seeds_five_runs():
    """The paper averages over 5 runs (§VI-A)."""
    assert len(DEFAULT_SEEDS) == 5


def test_configured_seeds_env(monkeypatch):
    monkeypatch.setenv("REPRO_SEEDS", "3")
    assert configured_seeds() == [1, 2, 3]


def test_configured_seeds_default(monkeypatch):
    monkeypatch.delenv("REPRO_SEEDS", raising=False)
    assert configured_seeds() == list(DEFAULT_SEEDS)


def test_scale_factor_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    assert scale_factor() == 0.25
    monkeypatch.delenv("REPRO_SCALE")
    assert scale_factor(0.5) == 0.5


def test_run_trials_aggregates():
    def trial(seed):
        return TrialMetrics(
            recall=1.0, latency_s=float(seed), overhead_bytes=1000
        )

    agg = run_trials(trial, seeds=[1, 2, 3])
    assert agg.trials == 3
    assert agg.latency_mean == pytest.approx(2.0)


def test_render_table_contains_rows():
    table = render_table(
        "My Title",
        ["a", "b"],
        [{"a": 1, "b": "x"}, {"a": 2, "b": "longer-value"}],
    )
    assert "My Title" in table
    assert "longer-value" in table
    lines = table.splitlines()
    assert len(lines) >= 6


def test_render_table_missing_cells_blank():
    table = render_table("T", ["a", "b"], [{"a": 1}])
    assert "1" in table
