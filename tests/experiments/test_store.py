"""Campaign-store unit tests: keys, round-trips, corruption, gc.

The store's whole contract is "a digest has exactly one correct
content", so the tests lean on two properties: key derivation must be
stable across processes yet distinct across inputs, and anything less
than a complete, self-consistent entry must read as a cache miss.
"""

import json
import math
import os
from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import TrialFailure, TrialMetrics
from repro.experiments.runner import run_trials
from repro.experiments.store import (
    CampaignStore,
    canonical_params,
    resolve_store,
    task_digest,
)


@dataclass(frozen=True)
class _Spec:
    name: str
    scale: float


def _trial(seed):
    return {"score": seed * 10}


def _other_trial(seed):
    return {"score": seed * 10}


def _metrics_trial(seed):
    return TrialMetrics(
        recall=1.0,
        latency_s=float(seed),
        overhead_bytes=seed * 100,
        extras={"note": "kept"},
    )


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------
def test_digest_is_stable_and_input_sensitive():
    base = task_digest(_trial, (3,))
    assert base == task_digest(_trial, (3,))  # pure function of inputs
    assert base != task_digest(_trial, (4,))  # seed is key material
    assert base != task_digest(_other_trial, (3,))  # trial identity too
    point = {"size": 5}
    assert task_digest(_trial, (point, 3)) != task_digest(
        _trial, ({"size": 7}, 3)
    )


def test_canonical_params_dict_order_invariant():
    a = canonical_params({"x": 1, "y": 2.5})
    b = canonical_params({"y": 2.5, "x": 1})
    assert a == b


def test_canonical_params_distinguishes_close_values():
    assert canonical_params(1) != canonical_params(1.0)
    assert canonical_params("1") != canonical_params(1)
    assert canonical_params(True) != canonical_params(1)


def test_canonical_params_dataclass_fields():
    spec = _Spec(name="center", scale=1.5)
    text = canonical_params(spec)
    assert "center" in text and "1.5" in text
    assert text != canonical_params(_Spec(name="center", scale=2.0))


def test_canonical_params_rejects_opaque_objects():
    class Opaque:
        pass

    with pytest.raises(ConfigurationError):
        canonical_params({"handle": Opaque()})


def test_canonical_params_store_key_protocol():
    class Keyed:
        def store_key(self):
            return ("v1", 7)

    first = canonical_params(Keyed())
    assert first == canonical_params(Keyed())  # identity never leaks
    assert "7" in first


# ----------------------------------------------------------------------
# Entry round-trips and corruption handling
# ----------------------------------------------------------------------
def test_put_get_roundtrip_dict(tmp_path):
    store = CampaignStore(str(tmp_path / "store"))
    digest = task_digest(_trial, (3,))
    store.put_value(digest, "t", "seed 3", 3, {"score": 30})
    entry = store.get(digest)
    assert entry is not None and entry.ok
    assert entry.value == {"score": 30}
    assert entry.seed == 3
    assert digest in store


def test_put_get_roundtrip_trial_metrics(tmp_path):
    store = CampaignStore(str(tmp_path))
    digest = task_digest(_metrics_trial, (2,))
    store.put_value(digest, "t", "seed 2", 2, _metrics_trial(2))
    entry = store.get(digest)
    assert isinstance(entry.value, TrialMetrics)
    assert entry.value == _metrics_trial(2)  # bit-identical replay


def test_truncated_entry_is_a_miss_not_a_crash(tmp_path):
    store = CampaignStore(str(tmp_path))
    digest = task_digest(_trial, (1,))
    store.put_value(digest, "t", "seed 1", 1, {"score": 10})
    path = store._entry_path(digest)
    with open(path, "r+", encoding="utf-8") as handle:
        handle.truncate(os.path.getsize(path) // 2)
    assert store.get(digest) is None
    assert store.corrupt_seen == 1


def test_digest_mismatch_never_trusted(tmp_path):
    store = CampaignStore(str(tmp_path))
    real = task_digest(_trial, (1,))
    store.put_value(real, "t", "seed 1", 1, {"score": 10})
    impostor = task_digest(_trial, (2,))
    os.makedirs(
        os.path.dirname(store._entry_path(impostor)), exist_ok=True
    )
    with open(store._entry_path(real), encoding="utf-8") as handle:
        doc = handle.read()
    with open(store._entry_path(impostor), "w", encoding="utf-8") as handle:
        handle.write(doc)
    assert store.get(impostor) is None  # embedded key disagrees
    assert store.corrupt_seen == 1


def test_failures_are_recorded_but_never_hits(tmp_path):
    store = CampaignStore(str(tmp_path))
    digest = task_digest(_trial, (2,))
    failure = TrialFailure(
        label="seed 2", seed=2, kind="crash", error="died", attempts=1
    )
    store.put_failure(digest, "t", failure)
    assert store.get(digest) is None  # resume re-runs the trial
    entry = store.get(digest, include_failures=True)
    assert entry is not None and not entry.ok
    assert entry.failure.kind == "crash"
    status = store.status()
    assert status["failed"] == 1 and status["ok"] == 0


def test_lossy_values_are_refused():
    from repro.experiments.store import _check_roundtrip

    with pytest.raises(ConfigurationError):
        _check_roundtrip({"pair": (1, 2)}, "t")  # tuple → list
    with pytest.raises(ConfigurationError):
        _check_roundtrip({"x": math.nan}, "t")  # NaN != NaN
    with pytest.raises(ConfigurationError):
        _check_roundtrip({"raw": b"bytes"}, "t")  # not JSON at all


def test_gc_removes_tmp_corrupt_and_optionally_failed(tmp_path):
    store = CampaignStore(str(tmp_path))
    ok_digest = task_digest(_trial, (1,))
    store.put_value(ok_digest, "t", "seed 1", 1, {"score": 10})
    bad_digest = task_digest(_trial, (2,))
    store.put_value(bad_digest, "t", "seed 2", 2, {"score": 20})
    bad_path = store._entry_path(bad_digest)
    with open(bad_path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    fail_digest = task_digest(_trial, (3,))
    store.put_failure(
        fail_digest,
        "t",
        TrialFailure(
            label="seed 3", seed=3, kind="error", error="x", attempts=2
        ),
    )
    tmp_leftover = os.path.join(tmp_path, "objects", "stale.tmp")
    with open(tmp_leftover, "w", encoding="utf-8"):
        pass

    removed = store.gc()
    assert removed == {"tmp": 1, "corrupt": 1, "failed": 0}
    assert store.get(ok_digest) is not None  # survivors untouched
    assert store.get(fail_digest, include_failures=True) is not None

    removed = store.gc(failed=True)
    assert removed["failed"] == 1
    assert store.get(fail_digest, include_failures=True) is None
    assert store.get(ok_digest) is not None


def test_foreign_schema_reads_as_miss(tmp_path):
    store = CampaignStore(str(tmp_path))
    digest = task_digest(_trial, (1,))
    store.put_value(digest, "t", "seed 1", 1, {"score": 10})
    path = store._entry_path(digest)
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    doc["store"] = 999
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    assert store.get(digest) is None


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_resolve_store_knob(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert resolve_store(None) is None
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
    assert resolve_store(None).root == str(tmp_path / "env-store")
    explicit = resolve_store(str(tmp_path / "explicit"))
    assert explicit.root == str(tmp_path / "explicit")
    assert resolve_store(explicit) is explicit
    with pytest.raises(ConfigurationError):
        resolve_store(42)


# ----------------------------------------------------------------------
# run_trials integration (serial; parallel resume is test_resume.py)
# ----------------------------------------------------------------------
def test_run_trials_store_hits_on_second_run(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    store = CampaignStore(str(tmp_path))
    cold = run_trials(_metrics_trial, seeds=[1, 2, 3], jobs=1, store=store)
    assert cold.cache_hits == 0 and cold.executed == 3
    warm = run_trials(_metrics_trial, seeds=[1, 2, 3], jobs=1, store=store)
    assert warm.cache_hits == 3 and warm.executed == 0
    # Bit-identical table modulo the cache-accounting columns.
    cold_row = {
        k: v
        for k, v in cold.as_row().items()
        if k not in ("cache_hits", "executed")
    }
    warm_row = {
        k: v
        for k, v in warm.as_row().items()
        if k not in ("cache_hits", "executed")
    }
    assert cold_row == warm_row
    plain = run_trials(_metrics_trial, seeds=[1, 2, 3], jobs=1)
    assert "cache_hits" not in plain.as_row()  # store-less shape intact
    assert plain.as_row() == cold_row


def test_run_trials_resume_false_recomputes(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    store = CampaignStore(str(tmp_path))
    run_trials(_metrics_trial, seeds=[1, 2], jobs=1, store=store)
    again = run_trials(
        _metrics_trial, seeds=[1, 2], jobs=1, store=store, resume=False
    )
    assert again.cache_hits == 0 and again.executed == 2
