"""Parallel campaign tests: determinism, crash isolation, observability.

The trial functions live at module level so forked workers can resolve
them by reference.  Each is deterministic in its seed, which is what
makes the bit-identity assertions meaningful.
"""

import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import TrialMetrics
from repro.experiments.runner import run_sweep, run_trials
from repro.obs import trace as obs_trace


def _ok_trial(seed):
    return TrialMetrics(
        recall=1.0, latency_s=float(seed), overhead_bytes=1000 * seed
    )


def _raises_on_seed_2(seed):
    if seed == 2:
        raise RuntimeError("injected failure")
    return _ok_trial(seed)


def _sleeps_on_seed_2(seed):
    if seed == 2:
        time.sleep(30.0)
    return _ok_trial(seed)


def _dies_on_seed_2(seed):
    if seed == 2:
        os._exit(17)  # hard worker death, not an exception
    return _ok_trial(seed)


def _traced_trial(seed):
    # Like Simulator's bus: subscribe whatever process-wide sinks exist
    # in *this* process — in a worker, its own JSONL shard.
    bus = obs_trace.TraceBus()
    for sink in obs_trace.global_sinks():
        bus.subscribe(sink)
    bus.emit("trial.ran", seed=seed)
    return _ok_trial(seed)


def _sweep_trial(point, seed):
    return {"score": point["base"] * 100 + seed}


def _sweep_raises_everywhere(point, seed):
    raise ValueError(f"bad point {point['base']}")


def test_parallel_matches_serial_aggregate():
    """Same seeds, any worker count → the same AggregateMetrics."""
    serial = run_trials(_ok_trial, seeds=[1, 2, 3, 4, 5], jobs=1)
    parallel = run_trials(_ok_trial, seeds=[1, 2, 3, 4, 5], jobs=4)
    assert parallel == serial


def test_parallel_failure_becomes_structured_row():
    agg = run_trials(_raises_on_seed_2, seeds=[1, 2, 3], jobs=2)
    assert agg.trials == 2  # seeds 1 and 3 still aggregated
    assert len(agg.failures) == 1
    failure = agg.failures[0]
    assert failure.seed == 2
    assert failure.kind == "error"
    assert failure.attempts == 2  # first try + one retry
    assert "injected failure" in failure.error


def test_serial_path_still_propagates():
    """jobs=1 keeps the historical contract: exceptions escape."""
    with pytest.raises(RuntimeError):
        run_trials(_raises_on_seed_2, seeds=[1, 2, 3], jobs=1)


@pytest.mark.skipif(
    not hasattr(__import__("signal"), "SIGALRM"), reason="needs SIGALRM"
)
def test_parallel_timeout_becomes_failure():
    agg = run_trials(
        _sleeps_on_seed_2, seeds=[1, 2, 3], jobs=2, timeout_s=0.5, retries=0
    )
    assert agg.trials == 2
    assert [f.kind for f in agg.failures] == ["timeout"]
    assert agg.failures[0].seed == 2


def test_parallel_worker_crash_is_isolated():
    """A worker that dies mid-trial surfaces as kind='crash'; the other
    seeds — possibly collateral damage of the shared pool breaking —
    still complete via the isolated retry round."""
    agg = run_trials(_dies_on_seed_2, seeds=[1, 2, 3], jobs=2)
    assert agg.trials == 2
    assert [f.kind for f in agg.failures] == ["crash"]
    assert agg.failures[0].seed == 2


def test_crash_does_not_fail_innocent_siblings():
    """One worker's death poisons every pending future in the pool with
    BrokenProcessPool; with retries=0 the old accounting turned healthy
    sibling trials into permanent kind='crash' failures after a single
    genuine attempt.  Only the task that ran on the dead worker may fail."""
    agg = run_trials(_dies_on_seed_2, seeds=[1, 2, 3], jobs=2, retries=0)
    assert agg.trials == 2  # seeds 1 and 3 complete despite the shared pool
    assert [f.seed for f in agg.failures] == [2]
    assert [f.kind for f in agg.failures] == ["crash"]
    # One *charged* execution: the isolated retry where blame is
    # unambiguous.  Pool-wide fallout is never charged to anyone.
    assert agg.failures[0].attempts == 1


def test_crash_attempts_reflect_charged_executions():
    """TrialFailure.attempts counts executions attributable to the task
    itself — never inflated by sibling crashes sharing its pool."""
    agg = run_trials(_dies_on_seed_2, seeds=[1, 2, 3], jobs=2, retries=1)
    assert agg.trials == 2
    failure = agg.failures[0]
    assert failure.seed == 2 and failure.kind == "crash"
    assert failure.attempts == 2  # isolated first charge + one retry


def test_failure_kinds_only_for_exhibiting_task():
    """After the spillover fix, 'crash' appears only on the crashing
    trial; an erroring sibling keeps its own kind."""

    agg = run_trials(_dies_or_raises, seeds=[1, 2, 3, 4], jobs=2, retries=0)
    kinds = {f.seed: f.kind for f in agg.failures}
    assert kinds == {2: "crash", 3: "error"}
    assert agg.trials == 2  # seeds 1 and 4 survive


def _dies_or_raises(seed):
    if seed == 2:
        os._exit(17)
    if seed == 3:
        raise RuntimeError("injected failure")
    return _ok_trial(seed)


def _traced_dies_once_on_seed_2(seed):
    """Emits a trace event, then dies on seed 2's *first* attempt only.

    The flag file (path via env, inherited across fork) makes the death
    one-shot, so the retry succeeds — leaving the aborted attempt's
    partial shard events for sanitization to drop.
    """
    bus = obs_trace.TraceBus()
    for sink in obs_trace.global_sinks():
        bus.subscribe(sink)
    bus.emit("trial.ran", seed=seed)
    if seed == 2:
        flag = os.environ["REPRO_TEST_DIE_ONCE_FLAG"]
        if not os.path.exists(flag):
            with open(flag, "w"):
                pass
            for sink in obs_trace.global_sinks():
                # Land the partial event on disk before dying, like a
                # buffer flush mid-trial would.
                sink.flush()
            os._exit(23)
    return _ok_trial(seed)


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="trace shards need fork",
)
def test_crashed_attempt_shard_events_are_dropped(tmp_path, monkeypatch):
    """A killed attempt's partial trace shard events must not
    double-count next to the successful retry's events."""
    monkeypatch.setenv(
        "REPRO_TEST_DIE_ONCE_FLAG", str(tmp_path / "died-once")
    )
    path = str(tmp_path / "trace.jsonl")
    with obs_trace.global_sink(obs_trace.JsonlSink(path)):
        agg = run_trials(_traced_dies_once_on_seed_2, seeds=[1, 2, 3], jobs=2)
    assert agg.trials == 3 and not agg.failures  # the retry succeeded
    events = []
    for name in sorted(os.listdir(tmp_path)):
        if name.startswith("trace.") and name != "trace.jsonl":
            events += obs_trace.read_jsonl(str(tmp_path / name))
    seeds = sorted(e["seed"] for e in events if e["kind"] == "trial.ran")
    # Without sanitization this reads [1, 2, 2, 3]: the dead first
    # attempt's event plus the retry's.
    assert seeds == [1, 2, 3]


def test_run_sweep_parallel_matches_serial():
    points = [{"base": base} for base in (1, 2, 3)]
    serial = run_sweep(_sweep_trial, points, seeds=[1, 2], jobs=1)
    parallel = run_sweep(_sweep_trial, points, seeds=[1, 2], jobs=3)
    assert [sp.results for sp in parallel] == [sp.results for sp in serial]
    assert [sp.point for sp in parallel] == points
    assert all(sp.ok for sp in parallel)


def test_run_sweep_all_seeds_failing_marks_point():
    sweep = run_sweep(
        _sweep_raises_everywhere, [{"base": 9}], seeds=[1, 2], jobs=2
    )
    assert not sweep[0].ok
    assert sweep[0].results == ()
    assert len(sweep[0].failures) == 2


def test_run_sweep_labels_failures(tmp_path):
    sweep = run_sweep(
        _sweep_raises_everywhere,
        [{"base": 7}],
        seeds=[1],
        jobs=2,
        label_fn=lambda p: f"base {p['base']}",
    )
    assert sweep[0].failures[0].label == "base 7 seed 1"


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="trace shards need fork",
)
def test_parallel_trace_shards(tmp_path):
    """Workers write per-worker JSONL shards next to the parent file."""
    path = str(tmp_path / "trace.jsonl")
    with obs_trace.global_sink(obs_trace.JsonlSink(path)):
        run_trials(_traced_trial, seeds=[1, 2, 3, 4], jobs=2)
    shards = sorted(p for p in os.listdir(tmp_path) if p != "trace.jsonl")
    assert shards  # at least one worker wrote a shard
    assert all(p.startswith("trace.") and p.endswith(".jsonl") for p in shards)
    events = []
    for shard in shards:
        events += obs_trace.read_jsonl(str(tmp_path / shard))
    seeds = sorted(e["seed"] for e in events if e["kind"] == "trial.ran")
    assert seeds == [1, 2, 3, 4]


def test_parallel_rejects_unshardable_sink():
    """Non-file sinks cannot follow trials into workers: clear error."""
    with obs_trace.global_sink(obs_trace.ListSink()):
        with pytest.raises(ConfigurationError) as excinfo:
            run_trials(_ok_trial, seeds=[1, 2], jobs=2)
    assert "jobs=1" in str(excinfo.value)


# ----------------------------------------------------------------------
# timeline= knob (flight recorder)
# ----------------------------------------------------------------------
def _recorded_trial(seed):
    from repro.experiments.figures.common import pdd_experiment

    outcome = pdd_experiment(
        seed, rows=3, cols=3, metadata_count=100, sim_cap_s=30.0
    )
    return outcome.to_trial_metrics()


def test_timeline_knob_memory_attaches_summary_columns():
    agg = run_trials(_recorded_trial, seeds=[1, 2], jobs=1, timeline=True)
    assert agg.timeline_trials == 2
    stats = dict(agg.timeline)
    assert stats["peak_lqt"] >= 1
    assert 0.0 <= stats["airtime_util"] <= 1.0
    row = agg.as_row()
    assert "peak_lqt" in row and "cdi_conv_s" in row and "airtime_util" in row
    # Without the knob the columns stay absent (tables keep their seed shape).
    plain = run_trials(_recorded_trial, seeds=[1], jobs=1)
    assert plain.timeline_trials == 0
    assert "peak_lqt" not in plain.as_row()


def test_timeline_knob_does_not_perturb_results():
    plain = run_trials(_recorded_trial, seeds=[1, 2], jobs=1)
    recorded = run_trials(_recorded_trial, seeds=[1, 2], jobs=1, timeline=True)
    assert recorded.recall_mean == plain.recall_mean
    assert recorded.latency_mean == plain.latency_mean
    assert recorded.overhead_mb_mean == plain.overhead_mb_mean


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="timeline shards need fork",
)
def test_timeline_knob_shards_per_worker(tmp_path):
    path = str(tmp_path / "tl.jsonl")
    agg = run_trials(
        _recorded_trial, seeds=[1, 2, 3, 4], jobs=2, timeline=path
    )
    assert agg.trials == 4
    assert agg.timeline_trials == 4  # summaries travel in pickled results
    shards = sorted(p for p in os.listdir(tmp_path) if p.startswith("tl."))
    assert shards and all(p.endswith(".jsonl") for p in shards)
    from repro.obs.timeline import load_timeline, reconstruct_at

    load = load_timeline(path)
    assert len(load.runs) == 4  # one recorded run per trial
    for run in load.runs:
        _, _, flat = reconstruct_at(run, run.t_max)
        assert flat  # every shard ends in reconstructible state


def test_timeline_knob_memory_works_parallel_without_files():
    agg = run_trials(_recorded_trial, seeds=[1, 2], jobs=2, timeline=True)
    assert agg.trials == 2
    assert agg.timeline_trials == 2


def test_plan_timeline_shards_requires_fork_for_files(tmp_path):
    from repro.experiments.runner import _plan_timeline_shards
    from repro.obs import recorder as obs_recorder

    class _SpawnContext:
        @staticmethod
        def get_start_method():
            return "spawn"

    assert _plan_timeline_shards(_SpawnContext()) is False  # no recording
    with obs_recorder.recording(path=str(tmp_path / "tl.jsonl")):
        with pytest.raises(ConfigurationError) as excinfo:
            _plan_timeline_shards(_SpawnContext())
        assert "jobs=1" in str(excinfo.value)
    with obs_recorder.recording(path=None):
        # Memory-only recordings survive any start method.
        assert _plan_timeline_shards(_SpawnContext()) is False
