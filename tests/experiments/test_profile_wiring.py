"""Kernel-profile plumbing through run_trials: extras, columns, merging.

Trial functions live at module level so forked workers can resolve them
by reference; each runs a tiny real simulation so there are events to
attribute.
"""

import multiprocessing

import pytest

from repro.experiments.metrics import TrialMetrics
from repro.experiments.runner import run_trials
from repro.obs.kernelprof import KernelProfiler
from repro.sim.simulator import Simulator


def _sim_trial(seed):
    sim = Simulator()
    state = {"fired": 0}

    def tick():
        state["fired"] += 1

    for i in range(10 + seed):
        sim.schedule(float(i), tick)
    sim.run()
    return TrialMetrics(
        recall=1.0, latency_s=float(seed), overhead_bytes=100 * seed
    )


def test_unprofiled_trials_carry_no_profile_extras():
    agg = run_trials(_sim_trial, seeds=[1, 2], jobs=1)
    row = agg.as_row()
    assert agg.profiled_trials == 0
    assert "kernel_share" not in row
    assert "hot_subsystem" not in row


def test_serial_trials_attach_profile_and_fold_into_outer():
    outer = KernelProfiler()
    with outer.activate():
        agg = run_trials(_sim_trial, seeds=[1, 2], jobs=1)
    assert agg.profiled_trials == 2
    row = agg.as_row()
    assert 0.0 < row["kernel_share"] <= 1.0
    assert row["hot_subsystem"]
    # Per-trial handler stats folded upward into the CLI-level profiler.
    assert outer.events == (10 + 1) + (10 + 2)


def test_parallel_trials_profile_and_merge_snapshots():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    outer = KernelProfiler()
    with outer.activate():
        agg = run_trials(_sim_trial, seeds=[1, 2, 3], jobs=2)
    assert agg.profiled_trials == 3
    row = agg.as_row()
    assert 0.0 < row["kernel_share"] <= 1.0
    assert row["hot_subsystem"]
    # Worker snapshots merged into the parent's active profiler.
    assert outer.events == (10 + 1) + (10 + 2) + (10 + 3)


def test_parallel_without_parent_profiler_stays_unprofiled():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    agg = run_trials(_sim_trial, seeds=[1, 2], jobs=2)
    assert agg.profiled_trials == 0
    assert "kernel_share" not in agg.as_row()


def test_serial_and_parallel_profiles_agree_on_events():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    with KernelProfiler().activate():
        serial = run_trials(_sim_trial, seeds=[1, 2], jobs=1)
    with KernelProfiler().activate():
        parallel = run_trials(_sim_trial, seeds=[1, 2], jobs=2)
    # The deterministic trial statistics are bit-identical either way.
    assert serial.as_row()["hot_subsystem"] == parallel.as_row()["hot_subsystem"]
    assert serial.recall_mean == parallel.recall_mean
