"""Unit tests for the EXPERIMENTS.md generator."""

from pathlib import Path

from repro.experiments.figures import REGISTRY
from repro.experiments.report import (
    ABLATIONS,
    TARGETS,
    build_experiments_md,
    read_results,
)


def test_targets_cover_every_registry_figure():
    assert {t.figure_id for t in TARGETS} == set(REGISTRY)


def test_read_results(tmp_path):
    (tmp_path / "fig4.txt").write_text("TABLE CONTENT\n")
    tables = read_results(tmp_path)
    assert tables == {"fig4": "TABLE CONTENT"}


def test_read_results_missing_dir(tmp_path):
    assert read_results(tmp_path / "nope") == {}


def test_build_embeds_tables_and_targets(tmp_path):
    (tmp_path / "fig4.txt").write_text("FIG4 MEASURED ROWS\n")
    doc = build_experiments_md(tmp_path)
    assert "FIG4 MEASURED ROWS" in doc
    assert "Paper reports:" in doc
    # Figures without tables point at the bench command.
    assert "pytest benchmarks/ --benchmark-only -k fig3" in doc


def test_build_mentions_every_figure_title(tmp_path):
    doc = build_experiments_md(tmp_path)
    for target in TARGETS:
        assert target.title in doc
    for _, description in ABLATIONS:
        assert description in doc


def test_real_results_directory_renders():
    results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    doc = build_experiments_md(results)
    assert doc.startswith("# EXPERIMENTS")
