"""Unit tests for the EXPERIMENTS.md generator."""

from pathlib import Path

from repro.experiments.figures import REGISTRY
from repro.experiments.report import (
    ABLATIONS,
    TARGETS,
    build_experiments_md,
    read_results,
)


def test_targets_cover_every_registry_figure():
    assert {t.figure_id for t in TARGETS} == set(REGISTRY)


def test_read_results(tmp_path):
    (tmp_path / "fig4.txt").write_text("TABLE CONTENT\n")
    tables = read_results(tmp_path)
    assert tables == {"fig4": "TABLE CONTENT"}


def test_read_results_missing_dir(tmp_path):
    assert read_results(tmp_path / "nope") == {}


def test_build_embeds_tables_and_targets(tmp_path):
    (tmp_path / "fig4.txt").write_text("FIG4 MEASURED ROWS\n")
    doc = build_experiments_md(tmp_path)
    assert "FIG4 MEASURED ROWS" in doc
    assert "Paper reports:" in doc
    # Figures without tables point at the bench command.
    assert "pytest benchmarks/ --benchmark-only -k fig3" in doc


def test_build_mentions_every_figure_title(tmp_path):
    doc = build_experiments_md(tmp_path)
    for target in TARGETS:
        assert target.title in doc
    for _, description in ABLATIONS:
        assert description in doc


def test_real_results_directory_renders():
    results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    doc = build_experiments_md(results)
    assert doc.startswith("# EXPERIMENTS")


# ----------------------------------------------------------------------
# Table rendering: the pipeline that feeds every recorded results table
# ----------------------------------------------------------------------
from repro.experiments.metrics import AggregateMetrics, TrialMetrics
from repro.experiments.runner import render_table


def test_render_table_layout():
    text = render_table(
        "My title",
        ["grid", "recall"],
        [{"grid": "3x3", "recall": 1.0}, {"grid": "11x11", "recall": 0.72}],
    )
    lines = text.splitlines()
    assert lines[0] == "My title"
    assert set(lines[1]) == {"-"}  # rule under the title
    assert lines[2].split() == ["grid", "recall"]
    assert lines[4].split() == ["3x3", "1.0"]
    assert lines[5].split() == ["11x11", "0.72"]
    assert lines[-1] == lines[1]  # closing rule


def test_render_table_blanks_missing_cells():
    text = render_table("t", ["a", "b"], [{"a": 1}])
    row = text.splitlines()[4]
    assert "1" in row
    assert row.rstrip().endswith("1")  # the b cell rendered empty


def test_aggregate_row_std_columns_render():
    agg = AggregateMetrics.from_trials(
        [
            TrialMetrics(recall=1.0, latency_s=2.0, overhead_bytes=1_000_000),
            TrialMetrics(recall=0.5, latency_s=4.0, overhead_bytes=3_000_000),
        ]
    )
    row = agg.as_row()
    for column in ("recall_std", "latency_std", "overhead_mb_std"):
        assert column in row
    text = render_table("t", sorted(row), [row])
    assert "recall_std" in text
    assert str(row["latency_std"]) in text


def test_aggregate_row_timeline_columns_render():
    trials = [
        TrialMetrics(
            recall=1.0,
            latency_s=1.0,
            overhead_bytes=1_000,
            extras={
                "timeline": {
                    "peak_lqt": 4,
                    "cdi_conv_s": 2.5,
                    "airtime_util": 0.12345,
                }
            },
        ),
        TrialMetrics(
            recall=1.0,
            latency_s=1.0,
            overhead_bytes=1_000,
            extras={
                "timeline": {
                    "peak_lqt": 2,
                    "cdi_conv_s": 1.5,
                    "airtime_util": 0.2,
                }
            },
        ),
    ]
    agg = AggregateMetrics.from_trials(trials)
    assert agg.timeline_trials == 2
    row = agg.as_row()
    assert row["peak_lqt"] == 4  # max over trials, rendered as an int
    assert row["cdi_conv_s"] == 2.0  # mean
    assert row["airtime_util"] == round((0.12345 + 0.2) / 2, 4)
    text = render_table("t", ["recall", "peak_lqt", "airtime_util"], [row])
    assert "peak_lqt" in text and "airtime_util" in text
    # An unrecorded aggregate renders the same columns as blanks.
    plain = AggregateMetrics.from_trials(
        [TrialMetrics(recall=1.0, latency_s=1.0, overhead_bytes=1_000)]
    )
    assert "peak_lqt" not in plain.as_row()
