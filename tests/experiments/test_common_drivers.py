"""Unit tests for the shared experiment drivers."""

import pytest

from repro.core.rounds import RoundConfig
from repro.errors import ConfigurationError
from repro.experiments.figures.common import (
    experiment_device_config,
    pdd_experiment,
    retrieval_experiment,
)
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def test_invalid_mode_rejected():
    with pytest.raises(ConfigurationError):
        pdd_experiment(seed=1, rows=3, cols=3, metadata_count=10, mode="bogus")


def test_invalid_method_rejected():
    with pytest.raises(ConfigurationError):
        retrieval_experiment(
            seed=1, item=make_video_item(MB), method="bogus"
        )


def test_device_config_toggles():
    config = experiment_device_config(ack=False, redundancy_detection=False)
    assert not config.reliability.enabled
    assert not config.protocol.redundancy_detection
    default = experiment_device_config()
    assert default.reliability.enabled
    assert default.protocol.redundancy_detection


def test_single_consumer_outcome_shape():
    outcome = pdd_experiment(seed=1, rows=3, cols=3, metadata_count=30)
    assert len(outcome.consumers) == 1
    assert outcome.first is outcome.consumers[0]
    metrics = outcome.to_trial_metrics()
    assert metrics.recall == outcome.first.recall
    assert metrics.overhead_bytes == outcome.total_overhead_bytes


def test_sequential_mode_orders_sessions():
    outcome = pdd_experiment(
        seed=2, rows=4, cols=4, metadata_count=60,
        n_consumers=3, mode="sequential", sim_cap_s=200.0,
    )
    starts = [c.result.started_at for c in outcome.consumers]
    finishes = [c.result.finished_at for c in outcome.consumers]
    assert starts == sorted(starts)
    for i in range(len(starts) - 1):
        assert starts[i + 1] >= finishes[i]


def test_sequential_overheads_sum_to_total():
    outcome = pdd_experiment(
        seed=3, rows=4, cols=4, metadata_count=60,
        n_consumers=2, mode="sequential", sim_cap_s=200.0,
    )
    assert (
        sum(c.overhead_bytes for c in outcome.consumers)
        <= outcome.total_overhead_bytes
    )


def test_simultaneous_mode_starts_together():
    outcome = pdd_experiment(
        seed=4, rows=4, cols=4, metadata_count=60,
        n_consumers=3, mode="simultaneous", sim_cap_s=200.0,
    )
    starts = [c.result.started_at for c in outcome.consumers]
    assert max(starts) - min(starts) < 0.1  # small anti-sync jitter only


def test_mdr_default_window_scales_with_chunks():
    small = retrieval_experiment(
        seed=5, item=make_video_item(MB), method="mdr", rows=3, cols=3
    )
    # Implicit check: completes with the scaled default window.
    assert small.first.recall == 1.0


def test_round_config_override_respected():
    outcome = pdd_experiment(
        seed=6, rows=3, cols=3, metadata_count=30,
        round_config=RoundConfig(max_rounds=1),
    )
    assert outcome.first.result.rounds == 1
