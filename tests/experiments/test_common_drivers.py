"""Unit tests for the shared experiment drivers."""

import pytest

from repro.core.rounds import RoundConfig
from repro.errors import ConfigurationError
from repro.experiments.figures.common import (
    experiment_device_config,
    pdd_experiment,
    retrieval_experiment,
)
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def test_invalid_mode_rejected():
    with pytest.raises(ConfigurationError):
        pdd_experiment(seed=1, rows=3, cols=3, metadata_count=10, mode="bogus")


def test_invalid_method_rejected():
    with pytest.raises(ConfigurationError):
        retrieval_experiment(
            seed=1, item=make_video_item(MB), method="bogus"
        )


def test_device_config_toggles():
    config = experiment_device_config(ack=False, redundancy_detection=False)
    assert not config.reliability.enabled
    assert not config.protocol.redundancy_detection
    default = experiment_device_config()
    assert default.reliability.enabled
    assert default.protocol.redundancy_detection


def test_single_consumer_outcome_shape():
    outcome = pdd_experiment(seed=1, rows=3, cols=3, metadata_count=30)
    assert len(outcome.consumers) == 1
    assert outcome.first is outcome.consumers[0]
    metrics = outcome.to_trial_metrics()
    assert metrics.recall == outcome.first.recall
    assert metrics.overhead_bytes == outcome.total_overhead_bytes


def test_sequential_mode_orders_sessions():
    outcome = pdd_experiment(
        seed=2, rows=4, cols=4, metadata_count=60,
        n_consumers=3, mode="sequential", sim_cap_s=200.0,
    )
    starts = [c.result.started_at for c in outcome.consumers]
    finishes = [c.result.finished_at for c in outcome.consumers]
    assert starts == sorted(starts)
    for i in range(len(starts) - 1):
        assert starts[i + 1] >= finishes[i]


def test_sequential_overheads_sum_to_total():
    outcome = pdd_experiment(
        seed=3, rows=4, cols=4, metadata_count=60,
        n_consumers=2, mode="sequential", sim_cap_s=200.0,
    )
    assert (
        sum(c.overhead_bytes for c in outcome.consumers)
        <= outcome.total_overhead_bytes
    )


def test_simultaneous_mode_starts_together():
    outcome = pdd_experiment(
        seed=4, rows=4, cols=4, metadata_count=60,
        n_consumers=3, mode="simultaneous", sim_cap_s=200.0,
    )
    starts = [c.result.started_at for c in outcome.consumers]
    assert max(starts) - min(starts) < 0.1  # small anti-sync jitter only


def test_mdr_default_window_scales_with_chunks():
    small = retrieval_experiment(
        seed=5, item=make_video_item(MB), method="mdr", rows=3, cols=3
    )
    # Implicit check: completes with the scaled default window.
    assert small.first.recall == 1.0


def test_round_config_override_respected():
    outcome = pdd_experiment(
        seed=6, rows=3, cols=3, metadata_count=30,
        round_config=RoundConfig(max_rounds=1),
    )
    assert outcome.first.result.rounds == 1


def test_simultaneous_overheads_split_not_duplicated():
    """Regression: single/simultaneous modes used to report the whole
    network's bytes_sent for *every* consumer, so summing per-consumer
    overhead double-counted each byte once per consumer."""
    outcome = pdd_experiment(
        seed=7, rows=4, cols=4, metadata_count=60,
        n_consumers=3, mode="simultaneous", sim_cap_s=200.0,
    )
    per_consumer = [c.overhead_bytes for c in outcome.consumers]
    assert sum(per_consumer) == outcome.total_overhead_bytes
    # an even split, up to the integer remainder
    assert max(per_consumer) - min(per_consumer) <= 1
    assert all(c.launched for c in outcome.consumers)


def test_single_consumer_gets_full_total():
    outcome = pdd_experiment(seed=8, rows=3, cols=3, metadata_count=30)
    assert outcome.first.overhead_bytes == outcome.total_overhead_bytes


def test_never_launched_sequential_consumer_is_flagged():
    """Regression: a sequential consumer whose turn never came before the
    simulation cap used to get overhead window [bytes_at_cap, total] = a
    real-looking 0-ish number with launched implied; now it is explicit."""
    outcome = pdd_experiment(
        seed=9, rows=4, cols=4, metadata_count=60,
        n_consumers=4, mode="sequential", sim_cap_s=3.0,
    )
    launched = [c for c in outcome.consumers if c.launched]
    skipped = [c for c in outcome.consumers if not c.launched]
    assert launched, "first consumer always launches"
    assert skipped, "cap of 3s cannot run four sequential discoveries"
    for consumer in skipped:
        assert consumer.overhead_bytes == 0
    assert (
        sum(c.overhead_bytes for c in launched) == outcome.total_overhead_bytes
    )
