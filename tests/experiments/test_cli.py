"""Unit tests for the figure-regeneration CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.figures import REGISTRY


def test_list_prints_all_figures(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_SEEDS", raising=False)
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for figure_id in REGISTRY:
        assert figure_id in out


def test_unknown_figure_errors(capsys):
    assert main(["bogus"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_seeds_and_scale_set_environment(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_SEEDS", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    import os

    assert main(["list", "--seeds", "3", "--scale", "0.5"]) == 0
    assert os.environ["REPRO_SEEDS"] == "3"
    assert os.environ["REPRO_SCALE"] == "0.5"


def test_scheduler_flag_sets_environment(monkeypatch, capsys):
    import os

    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert main(["list", "--scheduler", "calendar"]) == 0
    assert os.environ["REPRO_SCHEDULER"] == "calendar"


def test_scheduler_flag_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["list", "--scheduler", "splay"])


def test_scheduler_flag_absent_leaves_env_alone(monkeypatch, capsys):
    import os

    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert main(["list"]) == 0
    assert os.environ["REPRO_SCHEDULER"] == "calendar"


def test_single_figure_runs_table(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SEEDS", "1")
    # fig4 at tiny scale via its module defaults is too slow for a unit
    # test; patch the module's run to a stub and check wiring only.
    module = REGISTRY["fig4"]
    monkeypatch.setattr(
        module, "run", lambda *a, **k: [{"grid": "3x3", "max_hops": 1,
                                         "recall": 1.0, "latency_s": 0.1,
                                         "overhead_mb": 0.01}]
    )
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "3x3" in out


def test_parser_flags():
    parser = build_parser()
    args = parser.parse_args(["fig5", "--seeds", "2"])
    assert args.figure == "fig5"
    assert args.seeds == 2
    assert args.scale is None


def test_jobs_flag_sets_environment(monkeypatch):
    # setenv first so monkeypatch restores the pre-test state even though
    # main() itself mutates os.environ.
    monkeypatch.setenv("REPRO_JOBS", "1")
    import os

    assert main(["list", "--jobs", "4"]) == 0
    assert os.environ["REPRO_JOBS"] == "4"


def test_bad_jobs_env_reports_cleanly(capsys, monkeypatch):
    """A typo'd knob prints one configuration error, not a traceback."""
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert main(["fig4"]) == 2
    err = capsys.readouterr().err
    assert "configuration error" in err
    assert "REPRO_JOBS" in err
