"""Smoke tests: every figure module runs at miniature scale and produces
rows with the expected columns.  Full-scale shape checks live in the
benchmarks and integration tests."""

import pytest

from repro.experiments.figures import (
    REGISTRY,
    fig3_prototype,
    fig4_grid_size,
    fig5_round_params,
    fig6_metadata_amount,
    fig7_sequential_consumers,
    fig8_simultaneous_consumers,
    fig11_item_size,
    fig13_14_redundancy,
    leaky_bucket_params,
    retransmission_params,
    saturation,
)

MB = 1024 * 1024
SEEDS = (1,)


def test_registry_covers_all_paper_figures():
    expected = {
        "fig3", "lbparams", "retrparams", "saturation", "fig4", "fig5",
        "fig6", "fig7", "fig8", "fig9_10", "fig11", "fig12", "fig13_14",
        "fig15", "fig16",
    }
    assert set(REGISTRY) == expected


def test_registry_modules_expose_run_and_main():
    for module in REGISTRY.values():
        assert callable(module.run)
        assert callable(module.main)


def test_fig3_rows():
    rows = fig3_prototype.run(
        sender_counts=(1,), seeds=SEEDS, packets_per_sender=800
    )
    assert {r["mode"] for r in rows} == {"raw", "bucket", "bucket_ack"}
    assert all(0.0 <= r["reception"] <= 1.0 for r in rows)


def test_lbparams_rows():
    rows = leaky_bucket_params.run(
        leak_rates=(4.5e6,),
        capacities=(300 * 1024,),
        seeds=SEEDS,
        packets_per_sender=500,
    )
    assert {r["sweep"] for r in rows} == {"leak_rate", "capacity"}


def test_retrparams_rows():
    rows = retransmission_params.run(
        timeouts=(0.2,), max_retries=(4,), seeds=SEEDS, packets_per_sender=500
    )
    assert {r["sweep"] for r in rows} == {"retr_timeout", "max_retr"}


def test_saturation_rows():
    rows = saturation.run(
        amounts=(200,), redundancies=(1,), seeds=SEEDS, rows_cols=4
    )
    assert rows[0]["entries"] == 200
    assert 0.0 <= rows[0]["recall"] <= 1.0


def test_fig4_rows():
    rows = fig4_grid_size.run(grid_sizes=(3,), seeds=SEEDS, entries_per_node=10)
    assert rows[0]["grid"] == "3x3"
    assert rows[0]["max_hops"] == 1
    assert rows[0]["recall"] > 0.5


def test_fig5_rows():
    rows = fig5_round_params.run(
        windows=(0.5,), tds=(0.0,), seeds=SEEDS, metadata_count=100, rows_cols=4
    )
    assert rows[0]["T_s"] == 0.5
    assert rows[0]["rounds"] >= 1


def test_fig6_rows():
    rows = fig6_metadata_amount.run(amounts=(150,), seeds=SEEDS, rows_cols=4)
    assert rows[0]["entries"] == 150
    assert rows[0]["recall"] > 0.8


def test_fig7_rows():
    rows = fig7_sequential_consumers.run(
        n_consumers=2, seeds=SEEDS, metadata_count=100, rows_cols=4
    )
    assert [r["consumer"] for r in rows] == [1, 2]


def test_fig8_rows():
    rows = fig8_simultaneous_consumers.run(
        consumer_counts=(2,), seeds=SEEDS, metadata_count=100, rows_cols=4
    )
    assert rows[0]["consumers"] == 2
    assert rows[0]["recall"] > 0.8


def test_fig11_rows():
    rows = fig11_item_size.run(sizes=(1 * MB,), seeds=SEEDS, rows_cols=4)
    assert rows[0]["size_mb"] == 1.0
    assert rows[0]["recall"] == 1.0
    assert rows[0]["overhead_ratio"] > 0


def test_fig13_14_rows():
    rows = fig13_14_redundancy.run(
        redundancies=(1,), seeds=SEEDS, item_size=1 * MB, rows_cols=4
    )
    methods = {r["method"] for r in rows}
    assert methods == {"pdr", "mdr"}
    assert all(r["recall"] == 1.0 for r in rows)
