"""Kill-and-resume property tests for store-backed campaigns.

The headline guarantee: a campaign SIGKILLed mid-flight and then
resumed produces *byte-identical* results to an uninterrupted run, with
``cache_hits + executed == total`` accounting for how the work was
split.  The kill happens in a real subprocess (its own session, killed
via ``killpg`` so forked pool workers die too) — the trial function
lives at module level here so the subprocess and the resuming process
derive identical content addresses for every task.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.store import CampaignStore, task_digest

POINTS = ({"base": 1}, {"base": 2})
SEEDS = (1, 2, 3)

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def slow_sweep_trial(point, seed):
    """Deterministic but slow enough to be caught mid-campaign."""
    time.sleep(0.4)
    return {"score": point["base"] * 100 + seed}


_CHILD_SCRIPT = """
import sys
from repro.experiments.runner import run_sweep
from tests.experiments.test_resume import POINTS, SEEDS, slow_sweep_trial

run_sweep(slow_sweep_trial, POINTS, seeds=SEEDS, jobs=2, store=sys.argv[1])
"""


def _shape(sweep):
    """The bit-comparable payload of a sweep (results + failures)."""
    return [
        (
            point.point,
            point.label,
            point.results,
            point.seeds,
            tuple((f.seed, f.kind) for f in point.failures),
        )
        for point in sweep
    ]


def _start_campaign(store_root):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        (os.path.join(_REPO_ROOT, "src"), _REPO_ROOT)
    )
    env.pop("REPRO_STORE", None)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, store_root],
        cwd=_REPO_ROOT,
        env=env,
        start_new_session=True,  # killpg reaches the pool workers too
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_entries(objects_dir, deadline_s=60.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        count = 0
        for dirpath, _dirnames, filenames in os.walk(objects_dir):
            count += sum(name.endswith(".json") for name in filenames)
        if count:
            return count
        time.sleep(0.05)
    return 0


def _kill_campaign(proc):
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass  # finished before the kill — resume is then all hits
    proc.wait(timeout=30)


@pytest.mark.skipif(
    not hasattr(os, "killpg"), reason="needs process groups"
)
def test_sigkill_then_resume_is_bit_identical(tmp_path):
    store_root = str(tmp_path / "store")
    proc = _start_campaign(store_root)
    try:
        landed = _wait_for_entries(os.path.join(store_root, "objects"))
        assert landed >= 1, "campaign produced no entries before kill"
    finally:
        _kill_campaign(proc)

    store = CampaignStore(store_root)
    resumed = run_sweep(
        slow_sweep_trial, POINTS, seeds=SEEDS, jobs=2, store=store
    )
    clean = run_sweep(slow_sweep_trial, POINTS, seeds=SEEDS, jobs=2)
    assert _shape(resumed) == _shape(clean)

    total = len(POINTS) * len(SEEDS)
    hits = sum(point.cache_hits for point in resumed)
    executed = sum(point.executed for point in resumed)
    assert hits + executed == total
    assert hits >= 1  # the killed campaign's work was not thrown away
    for point in clean:
        assert point.cache_hits is None  # store-less sweeps unchanged

    # A second resume touches nothing: everything is now cached.
    warm = run_sweep(
        slow_sweep_trial, POINTS, seeds=SEEDS, jobs=2, store=store
    )
    assert _shape(warm) == _shape(clean)
    assert sum(point.cache_hits for point in warm) == total
    assert sum(point.executed for point in warm) == 0


def test_corrupt_entry_recomputes_and_stays_identical(tmp_path):
    store = CampaignStore(str(tmp_path))
    first = run_sweep(
        slow_sweep_trial, POINTS, seeds=SEEDS, jobs=2, store=store
    )
    victim = task_digest(slow_sweep_trial, (POINTS[0], SEEDS[0]))
    with open(store._entry_path(victim), "w", encoding="utf-8") as handle:
        handle.write('{"store": 1, "half')  # torn write
    resumed = run_sweep(
        slow_sweep_trial, POINTS, seeds=SEEDS, jobs=2, store=store
    )
    assert _shape(resumed) == _shape(first)
    total = len(POINTS) * len(SEEDS)
    assert sum(point.cache_hits for point in resumed) == total - 1
    assert sum(point.executed for point in resumed) == 1
    assert store.corrupt_seen >= 1
    # The recomputed entry healed the store in place.
    assert store.get(victim) is not None
