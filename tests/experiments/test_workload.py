"""Unit tests for workload generation and distribution."""

import random

import pytest

from repro.data import attributes as attr
from repro.experiments.scenario import build_grid_scenario
from repro.experiments.workload import (
    distribute_chunks,
    distribute_metadata,
    distribute_small_items,
    generate_metadata,
    make_video_item,
    sensor_descriptor,
)


def test_sensor_descriptors_distinct():
    entries = generate_metadata(500)
    assert len(set(entries)) == 500


def test_sensor_descriptor_is_compact():
    """≈30 B per entry, as in §VI-A."""
    entry = sensor_descriptor(3)
    assert 25 <= entry.wire_size() <= 35


def test_distribute_metadata_redundancy():
    scenario = build_grid_scenario(rows=3, cols=3, seed=1)
    entries = generate_metadata(50)
    placement = distribute_metadata(
        scenario.devices, entries, random.Random(1), redundancy=2
    )
    for entry, holders in placement.items():
        assert len(holders) == 2
        assert len(set(holders)) == 2
        for node in holders:
            assert scenario.devices[node].store.has_metadata(entry)


def test_distribute_metadata_exclusion():
    scenario = build_grid_scenario(rows=3, cols=3, seed=1)
    consumer = scenario.consumers[0]
    entries = generate_metadata(30)
    placement = distribute_metadata(
        scenario.devices, entries, random.Random(1), exclude=[consumer]
    )
    assert all(consumer not in holders for holders in placement.values())


def test_distribute_metadata_all_excluded_raises():
    scenario = build_grid_scenario(rows=2, cols=2, seed=1)
    with pytest.raises(ValueError):
        distribute_metadata(
            scenario.devices,
            generate_metadata(1),
            random.Random(1),
            exclude=list(scenario.devices),
        )


def test_make_video_item_chunks():
    item = make_video_item(20 * 1024 * 1024)
    assert item.total_chunks == 80
    assert item.descriptor.get(attr.TOTAL_CHUNKS) == 80


def test_distribute_chunks_covers_every_chunk():
    scenario = build_grid_scenario(rows=3, cols=3, seed=1)
    item = make_video_item(1024 * 1024)
    placement = distribute_chunks(
        scenario.devices, item, random.Random(1), redundancy=3
    )
    assert set(placement) == set(range(item.total_chunks))
    for chunk_id, holders in placement.items():
        assert len(holders) == 3
        descriptor = item.descriptor.chunk_descriptor(chunk_id)
        for node in holders:
            assert scenario.devices[node].store.has_chunk(descriptor)


def test_distribute_chunks_redundancy_capped_by_population():
    scenario = build_grid_scenario(rows=2, cols=2, seed=1)
    item = make_video_item(512 * 1024)
    placement = distribute_chunks(
        scenario.devices, item, random.Random(1), redundancy=10
    )
    assert all(len(holders) == 4 for holders in placement.values())


def test_distribute_small_items():
    from repro.data.item import DataItem

    scenario = build_grid_scenario(rows=3, cols=3, seed=1)
    items = [
        DataItem(sensor_descriptor(i), size=100, chunk_size=1000) for i in range(5)
    ]
    placement = distribute_small_items(
        scenario.devices, items, random.Random(1)
    )
    assert len(placement) == 5
    for descriptor, holders in placement.items():
        assert len(holders) == 1
