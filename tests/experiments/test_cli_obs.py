"""CLI tests for --trace / --metrics and the `inspect` subcommand."""

import json

import pytest

from repro.cli import main
from repro.experiments.figures import REGISTRY
from repro.obs.trace import read_jsonl
from repro.sim.simulator import Simulator


@pytest.fixture
def tiny_fig4(monkeypatch):
    """Replace fig4's run with a tiny real simulation (trace-visible)."""

    def run(*args, **kwargs):
        sim = Simulator()
        sim.schedule(0.1, lambda: sim.trace.emit(
            "frame_sent", node=0, frame_kind="query", size=64))
        sim.run()
        return [{"grid": "1x1", "max_hops": 0, "recall": 1.0,
                 "latency_s": 0.1, "overhead_mb": 0.0}]

    monkeypatch.setattr(REGISTRY["fig4"], "run", run)


def test_trace_flag_writes_jsonl(tmp_path, capsys, tiny_fig4):
    path = tmp_path / "out.jsonl"
    assert main(["fig4", "--trace", str(path)]) == 0
    err = capsys.readouterr().err
    assert f"trace written to {path}" in err
    events = read_jsonl(str(path))
    kinds = {e["kind"] for e in events}
    assert "frame_sent" in kinds
    assert "sim_run_end" in kinds


def test_trace_sink_removed_after_run(tmp_path, tiny_fig4):
    assert main(["fig4", "--trace", str(tmp_path / "out.jsonl")]) == 0
    assert Simulator().trace.enabled is False


def test_metrics_flag_prints_profile(capsys, tiny_fig4):
    assert main(["fig4", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "ev/s" in out


def test_inspect_summarizes_trace(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    events = [
        {"t": 0.0, "kind": "frame_sent", "run": 1, "node": 1,
         "frame_kind": "query", "size": 100},
        {"t": 0.5, "kind": "frame_delivered", "run": 1, "node": 2,
         "frame_kind": "query", "size": 100},
    ]
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "2 events" in out
    assert "query" in out


def test_inspect_without_path_errors(capsys):
    assert main(["inspect"]) == 2
    assert "inspect needs a trace file" in capsys.readouterr().err


def test_inspect_missing_file_errors(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err
