"""CLI tests for --trace / --metrics and the `inspect` subcommand."""

import json

import pytest

from repro.cli import main
from repro.experiments.figures import REGISTRY
from repro.obs.trace import read_jsonl
from repro.sim.simulator import Simulator


@pytest.fixture
def tiny_fig4(monkeypatch):
    """Replace fig4's run with a tiny real simulation (trace-visible)."""

    def run(*args, **kwargs):
        sim = Simulator()
        sim.schedule(0.1, lambda: sim.trace.emit(
            "frame_sent", node=0, frame_kind="query", size=64))
        sim.run()
        return [{"grid": "1x1", "max_hops": 0, "recall": 1.0,
                 "latency_s": 0.1, "overhead_mb": 0.0}]

    monkeypatch.setattr(REGISTRY["fig4"], "run", run)


def test_trace_flag_writes_jsonl(tmp_path, capsys, tiny_fig4):
    path = tmp_path / "out.jsonl"
    assert main(["fig4", "--trace", str(path)]) == 0
    err = capsys.readouterr().err
    assert f"trace written to {path}" in err
    events = read_jsonl(str(path))
    kinds = {e["kind"] for e in events}
    assert "frame_sent" in kinds
    assert "sim_run_end" in kinds


def test_trace_sink_removed_after_run(tmp_path, tiny_fig4):
    assert main(["fig4", "--trace", str(tmp_path / "out.jsonl")]) == 0
    assert Simulator().trace.enabled is False


def test_metrics_flag_prints_profile(capsys, tiny_fig4):
    assert main(["fig4", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "ev/s" in out


def test_inspect_summarizes_trace(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    events = [
        {"t": 0.0, "kind": "frame_sent", "run": 1, "node": 1,
         "frame_kind": "query", "size": 100},
        {"t": 0.5, "kind": "frame_delivered", "run": 1, "node": 2,
         "frame_kind": "query", "size": 100},
    ]
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "2 events" in out
    assert "query" in out


def test_inspect_without_path_errors(capsys):
    assert main(["inspect"]) == 2
    assert "inspect needs a trace file" in capsys.readouterr().err


def test_inspect_missing_file_errors(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err


def _write_events(path, events):
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")


_SPAN_EVENTS = [
    {"t": 1.0, "kind": "query_issued", "run": 1, "node": 1, "query_id": 10,
     "proto": "pdd", "round": 1, "consumer": 1, "expires_at": 31.0},
    {"t": 1.4, "kind": "response_sent", "run": 1, "node": 4, "query_id": 10,
     "proto": "pdd", "entries": 2, "keys": []},
]


def test_inspect_spans_flag_prints_span_table(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_events(path, _SPAN_EVENTS)
    assert main(["inspect", str(path), "--spans"]) == 0
    out = capsys.readouterr().out
    assert "spans: 1 across 1 root(s)" in out
    assert "response_sent" in out


def test_inspect_audit_clean_trace_exits_zero(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_events(path, _SPAN_EVENTS)
    assert main(["inspect", str(path), "--audit"]) == 0
    out = capsys.readouterr().out
    assert "audit: 0 violation(s)" in out


def test_inspect_audit_violation_exits_one(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_events(path, _SPAN_EVENTS + [
        {"t": 40.0, "kind": "query_forwarded", "run": 1, "node": 3,
         "query_id": 10, "expires_at": 31.0},
    ])
    assert main(["inspect", str(path), "--audit"]) == 1
    out = capsys.readouterr().out
    assert "lingering_past_expiry" in out
    assert "FAIL" in out


def test_inspect_json_document(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_events(path, _SPAN_EVENTS)
    assert main(["inspect", str(path), "--spans", "--audit", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["total"] == 2
    assert doc["audit"]["ok"] is True
    assert doc["spans"]["total"] == 1
    assert doc["spans"]["queries"][0]["query_id"] == 10
    assert doc["spans"]["queries"][0]["proto"] == "pdd"


def test_inspect_merges_worker_shards_from_base_path(tmp_path, capsys):
    base = tmp_path / "t.jsonl"
    base.write_text("")  # parent file of a --jobs N run: exists, empty
    _write_events(tmp_path / "t.0.jsonl", [_SPAN_EVENTS[0]])
    _write_events(tmp_path / "t.1.jsonl", [_SPAN_EVENTS[1]])
    assert main(["inspect", str(base)]) == 0
    out = capsys.readouterr().out
    assert "2 events" in out
    assert "loader: 3 shard file(s)" in out


def test_inspect_accepts_glob_pattern(tmp_path, capsys):
    _write_events(tmp_path / "t.0.jsonl", [_SPAN_EVENTS[0]])
    _write_events(tmp_path / "t.1.jsonl", [_SPAN_EVENTS[1]])
    assert main(["inspect", str(tmp_path / "t.*.jsonl")]) == 0
    assert "2 events" in capsys.readouterr().out


def test_inspect_accepts_directory(tmp_path, capsys):
    _write_events(tmp_path / "a.jsonl", [_SPAN_EVENTS[0]])
    _write_events(tmp_path / "b.jsonl", [_SPAN_EVENTS[1]])
    assert main(["inspect", str(tmp_path)]) == 0
    assert "2 events" in capsys.readouterr().out


def test_inspect_unmatched_glob_errors(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "nope.*.jsonl")]) == 2
    assert "no trace files match" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --timeline recording and inspect dispatch
# ----------------------------------------------------------------------
@pytest.fixture
def scenario_fig4(monkeypatch):
    """Replace fig4's run with a tiny real scenario (recorder-visible)."""
    from repro.experiments.figures.common import experiment_device_config
    from repro.experiments.scenario import build_grid_scenario

    def run(*args, **kwargs):
        scenario = build_grid_scenario(
            rows=2, cols=2, seed=1, device_config=experiment_device_config()
        )
        scenario.sim.run(until=3.0)
        return [{"grid": "2x2", "recall": 1.0}]

    monkeypatch.setattr(REGISTRY["fig4"], "run", run)


def test_timeline_flag_records_jsonl(tmp_path, capsys, scenario_fig4):
    path = tmp_path / "tl.jsonl"
    assert main(
        ["fig4", "--timeline", str(path), "--timeline-interval", "0.5",
         "--keyframe-every", "3"]
    ) == 0
    err = capsys.readouterr().err
    assert f"timeline written to {path}" in err
    records = read_jsonl(str(path))
    kinds = [r["rec"] for r in records]
    assert kinds[0] == "meta"
    assert "key" in kinds and "delta" in kinds
    assert records[0]["interval"] == 0.5
    assert records[0]["keyframe_every"] == 3


def test_timeline_recording_removed_after_run(tmp_path, scenario_fig4):
    from repro.obs.recorder import configured_recording

    assert main(["fig4", "--timeline", str(tmp_path / "tl.jsonl")]) == 0
    assert configured_recording() is None


def _record_small_timeline(tmp_path):
    from repro.experiments.figures.common import (
        experiment_device_config,
        pdd_experiment,
    )
    from repro.experiments.scenario import build_grid_scenario
    from repro.obs.recorder import recording

    path = tmp_path / "tl.jsonl"
    with recording(path=str(path), interval_s=0.5, keyframe_every=4):
        scenario = build_grid_scenario(
            rows=3, cols=3, seed=1, device_config=experiment_device_config()
        )
        pdd_experiment(1, metadata_count=100, scenario=scenario, sim_cap_s=20.0)
    return path


def test_inspect_timeline_views(tmp_path, capsys):
    path = _record_small_timeline(tmp_path)
    assert main(["inspect", str(path), "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "series lqt" in out
    assert main(["inspect", str(path), "--at", "5.0"]) == 0
    out = capsys.readouterr().out
    assert "state at t=5" in out
    assert main(["inspect", str(path), "--diff", "0", "5"]) == 0
    out = capsys.readouterr().out
    assert "diff t1=0 -> t2=5" in out


def test_inspect_timeline_at_out_of_range_exits_two(tmp_path, capsys):
    path = _record_small_timeline(tmp_path)
    assert main(["inspect", str(path), "--at", "-4"]) == 2
    assert "timeline error" in capsys.readouterr().out


def test_inspect_timeline_unknown_series_exits_two(tmp_path, capsys):
    path = _record_small_timeline(tmp_path)
    assert main(["inspect", str(path), "--timeline", "--series", "bogus"]) == 2
    assert "unknown series" in capsys.readouterr().out


def test_inspect_timeline_missing_file_errors(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "nope.jsonl"), "--timeline"]) == 2
    assert "no such trace file" in capsys.readouterr().err
