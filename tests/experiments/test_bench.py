"""Tests for the ``repro bench`` perf-regression harness."""

import json

import pytest

from repro import bench
from repro.bench import _check_one, main


def run_bench(args):
    return main(args)


# ----------------------------------------------------------------------
# Check logic
# ----------------------------------------------------------------------
def record(**overrides):
    base = {
        "wall_s": 1.0,
        "events": 1000,
        "peak_queue_depth": 40,
        "calibration_s": 0.1,
        "meta": {"digest": "abc123"},
    }
    base.update(overrides)
    return base


def test_check_passes_on_identical_results():
    assert _check_one("x", record(), record(), tolerance=0.25) == []


def test_check_flags_counter_drift():
    failures = _check_one("x", record(events=1001), record(), tolerance=0.25)
    assert any("events" in failure for failure in failures)


def test_check_flags_digest_drift():
    failures = _check_one(
        "x", record(meta={"digest": "zzz"}), record(), tolerance=0.25
    )
    assert any("digest" in failure for failure in failures)


def test_check_flags_wall_regression():
    failures = _check_one("x", record(wall_s=1.5), record(), tolerance=0.25)
    assert any("wall-clock" in failure for failure in failures)


def test_check_allows_wall_within_tolerance():
    assert _check_one("x", record(wall_s=1.2), record(), tolerance=0.25) == []


def test_check_allows_speedups():
    assert _check_one("x", record(wall_s=0.1), record(), tolerance=0.25) == []


def test_check_normalizes_by_machine_speed():
    """A 2x-slower machine (per calibration) gets a 2x-scaled budget."""
    slow_machine = record(wall_s=1.9, calibration_s=0.2)
    assert _check_one("x", slow_machine, record(), tolerance=0.25) == []
    too_slow_even_scaled = record(wall_s=2.6, calibration_s=0.2)
    failures = _check_one("x", too_slow_even_scaled, record(), tolerance=0.25)
    assert any("wall-clock" in failure for failure in failures)


def test_check_skips_wall_gate_below_noise_floor():
    tiny = record(wall_s=bench.MIN_GATED_WALL_S / 10)
    assert _check_one("x", record(wall_s=5.0), tiny, tolerance=0.25) == []


# ----------------------------------------------------------------------
# CLI end to end (micro benchmarks only: fast)
# ----------------------------------------------------------------------
def test_bench_writes_schema_and_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    out_dir = tmp_path / "out"
    assert (
        run_bench(
            [
                "bloom_ops",
                "--quick",
                "--out-dir",
                str(out_dir),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    result = json.loads((out_dir / "BENCH_bloom_ops.json").read_text())
    for field in (
        "schema",
        "name",
        "quick",
        "wall_s",
        "events",
        "events_per_sec",
        "peak_queue_depth",
        "calibration_s",
        "meta",
    ):
        assert field in result
    assert result["name"] == "bloom_ops"
    assert result["quick"] is True
    assert result["events"] > 0
    assert result["meta"]["digest"]

    saved = json.loads(baseline.read_text())
    assert saved["quick"]["bloom_ops"]["events"] == result["events"]

    # Re-running against the fresh baseline passes the gate.
    assert (
        run_bench(
            [
                "bloom_ops",
                "--quick",
                "--check",
                "--out-dir",
                str(out_dir),
                "--baseline",
                str(baseline),
            ]
        )
        == 0
    )
    assert "perf check passed" in capsys.readouterr().out


def test_bench_check_fails_on_doctored_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    out_dir = tmp_path / "out"
    run_bench(
        [
            "spatial_index",
            "--quick",
            "--out-dir",
            str(out_dir),
            "--baseline",
            str(baseline),
            "--update-baseline",
        ]
    )
    doctored = json.loads(baseline.read_text())
    doctored["quick"]["spatial_index"]["events"] += 1
    baseline.write_text(json.dumps(doctored))
    assert (
        run_bench(
            [
                "spatial_index",
                "--quick",
                "--check",
                "--out-dir",
                str(out_dir),
                "--baseline",
                str(baseline),
            ]
        )
        == 1
    )
    assert "deterministic counter" in capsys.readouterr().err


def test_bench_check_without_baseline_errors(tmp_path):
    assert (
        run_bench(
            [
                "bloom_ops",
                "--quick",
                "--check",
                "--out-dir",
                str(tmp_path),
                "--baseline",
                str(tmp_path / "missing.json"),
            ]
        )
        == 2
    )


def test_bench_rejects_unknown_names(tmp_path):
    assert run_bench(["nope", "--out-dir", str(tmp_path)]) == 2


def test_bench_list(capsys):
    assert run_bench(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("bloom_ops", "spatial_index", "mobility_pdd", "round_params"):
        assert name in out


def test_cli_dispatches_bench_subcommand(tmp_path, capsys):
    from repro.cli import main as cli_main

    assert cli_main(["bench", "--list"]) == 0
    assert "bloom_ops" in capsys.readouterr().out


def test_tolerance_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.9")
    assert bench._resolve_tolerance(None) == pytest.approx(0.9)
    assert bench._resolve_tolerance(0.1) == pytest.approx(0.1)
    monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "junk")
    assert bench._resolve_tolerance(None) == bench.DEFAULT_TOLERANCE


# ----------------------------------------------------------------------
# Scaling-curve gating
# ----------------------------------------------------------------------
def curve_record(**point_overrides):
    point = {"nodes": 100, "wall_s": 1.0, "events": 5000}
    point.update(point_overrides)
    return record(curve=[{"nodes": 30, "wall_s": 0.2, "events": 900}, point])


def test_check_passes_on_identical_curves():
    assert _check_one("scaling", curve_record(), curve_record(), 0.25) == []


def test_check_flags_per_point_curve_regression():
    # The total wall stays within tolerance, but the large point alone
    # regressed past it — the per-point gate must still catch it.
    current = curve_record(wall_s=1.6)
    current["wall_s"] = 1.1  # total within 25%
    failures = _check_one("scaling", current, curve_record(), 0.25)
    assert any("curve regression at 100 nodes" in f for f in failures)


def test_check_flags_missing_curve_point():
    current = record(curve=[{"nodes": 30, "wall_s": 0.2, "events": 900}])
    failures = _check_one("scaling", current, curve_record(), 0.25)
    assert any("curve point for 100 nodes missing" in f for f in failures)


def test_check_normalizes_curve_points_by_machine_speed():
    # 1.5x slower machine overall: a 1.4x slower point is fine...
    current = curve_record(wall_s=1.4)
    current["calibration_s"] = 0.15
    current["wall_s"] = 1.6
    assert _check_one("scaling", current, curve_record(), 0.25) == []
    # ...but a 2.5x slower point is a regression even on that machine.
    current = curve_record(wall_s=2.5)
    current["calibration_s"] = 0.15
    current["wall_s"] = 2.7
    failures = _check_one("scaling", current, curve_record(), 0.25)
    assert any("curve regression" in f for f in failures)


def test_check_skips_curve_points_below_noise_floor():
    baseline = record(curve=[{"nodes": 30, "wall_s": 0.01, "events": 900}])
    current = record(curve=[{"nodes": 30, "wall_s": 0.04, "events": 900}])
    assert _check_one("scaling", current, baseline, 0.25) == []


def test_scaling_bench_quick_shape(tmp_path):
    code = run_bench(["scaling", "--quick", "--out-dir", str(tmp_path)])
    assert code == 0
    result = json.loads((tmp_path / "BENCH_scaling.json").read_text())
    assert result["schema"] == bench.SCHEMA_VERSION
    curve = result["curve"]
    # One point per (grid, scheduler): the curve carries both kernels.
    assert [p["nodes"] for p in curve] == [30, 30, 64, 64, 121, 121]
    assert [p["scheduler"] for p in curve] == ["heap", "calendar"] * 3
    for point in curve:
        assert point["events"] > 0
        assert point["events_per_sec"] > 0
        assert point["peak_rss_kb"] > 0
        assert 0.0 < point["kernel_share"] <= 1.0
        assert point["subsystems"]
    # Order-identity: both kernels must process identical event counts.
    by_nodes = {}
    for point in curve:
        by_nodes.setdefault(point["nodes"], []).append(
            (point["events"], point["peak_queue_depth"], point["recall"])
        )
    for nodes, outputs in by_nodes.items():
        assert outputs[0] == outputs[1], f"schedulers disagree at {nodes}"
    assert result["meta"]["points"] == 6
    assert result["events"] == sum(p["events"] for p in curve)


# ----------------------------------------------------------------------
# Peak-RSS platform normalization
# ----------------------------------------------------------------------
def test_peak_rss_kb_linux_passthrough(monkeypatch):
    """Linux ``ru_maxrss`` is already KiB and must pass through."""
    monkeypatch.setattr(bench.sys, "platform", "linux")
    assert bench._peak_rss_kb(204800) == 204800


def test_peak_rss_kb_darwin_bytes_normalized(monkeypatch):
    """Regression: macOS reports ``ru_maxrss`` in *bytes*; treating it as
    KiB inflated the reported peak 1024x."""
    monkeypatch.setattr(bench.sys, "platform", "darwin")
    assert bench._peak_rss_kb(209715200) == 204800  # 200 MiB in bytes


def test_peak_rss_kb_reads_getrusage(monkeypatch):
    import resource

    class FakeUsage:
        ru_maxrss = 123456

    monkeypatch.setattr(bench.sys, "platform", "linux")
    monkeypatch.setattr(
        resource, "getrusage", lambda who: FakeUsage(), raising=True
    )
    assert bench._peak_rss_kb() == 123456
