"""Unit tests for random-waypoint trace generation."""

import random

from repro.mobility.model import AreaSpec, MobilityEventKind
from repro.mobility.waypoint import generate_waypoint_trace


def make(duration=300.0, seed=1, speed=1.2):
    area = AreaSpec(100.0, 100.0)
    nodes = [0, 1, 2]
    positions = {0: (0.0, 0.0), 1: (50.0, 50.0), 2: (99.0, 99.0)}
    events = generate_waypoint_trace(
        nodes, positions, area, duration, random.Random(seed), speed=speed
    )
    return events, area


def test_only_move_events():
    events, _ = make()
    assert all(e.kind is MobilityEventKind.MOVE for e in events)


def test_sorted_and_bounded():
    events, _ = make()
    times = [e.time for e in events]
    assert times == sorted(times)
    assert all(0 <= t < 300.0 for t in times)


def test_positions_inside_area():
    events, area = make()
    assert all(area.contains(e.position) for e in events)


def test_all_nodes_move():
    events, _ = make(duration=600.0)
    movers = {e.node_id for e in events}
    assert movers == {0, 1, 2}


def test_deterministic():
    a, _ = make(seed=9)
    b, _ = make(seed=9)
    assert a == b


def test_zero_speed_produces_no_moves():
    events, _ = make(speed=0.0)
    assert events == []
