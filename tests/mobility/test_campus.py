"""Unit tests for the observation-based campus trace generator."""

import random

import pytest

from repro.mobility.campus import (
    CLASSROOMS,
    STUDENT_CENTER,
    MOVE_STEP_S,
    WALK_SPEED,
    generate_campus_trace,
)
from repro.mobility.model import MobilityEventKind


def trace(scenario=STUDENT_CENTER, duration=600.0, seed=1, scale=1.0):
    return generate_campus_trace(
        scenario, duration, random.Random(seed), frequency_scale=scale
    )


def test_scenario_constants_match_paper():
    """§VI-B-2 observations."""
    assert STUDENT_CENTER.area.width == 120.0
    assert STUDENT_CENTER.population == 20
    assert STUDENT_CENTER.joins_per_minute == 1.0
    assert STUDENT_CENTER.moves_per_minute == 4.0
    assert CLASSROOMS.area.width == 20.0
    assert CLASSROOMS.population == 30
    assert CLASSROOMS.moves_per_minute == 0.5


def test_initial_population():
    t = trace()
    assert len(t.initial_nodes) == 20
    assert set(t.initial_positions) == set(t.initial_nodes)


def test_initial_positions_inside_area():
    t = trace()
    for position in t.initial_positions.values():
        assert STUDENT_CENTER.area.contains(position)


def test_events_sorted_by_time_within_duration():
    t = trace()
    times = [e.time for e in t.events]
    assert times == sorted(times)
    assert all(0 <= time < t.duration_s for time in times)


def test_event_rates_match_observations():
    """~1 join, ~1 leave per minute over 10 minutes → ≈10 each."""
    t = trace(duration=3600.0, seed=7)
    joins = sum(1 for e in t.events if e.kind is MobilityEventKind.JOIN)
    leaves = sum(1 for e in t.events if e.kind is MobilityEventKind.LEAVE)
    assert 35 <= joins <= 90  # Poisson(60)
    assert 25 <= leaves <= 90


def test_frequency_scale_multiplies_rates():
    slow = trace(duration=3600.0, seed=3, scale=0.5)
    fast = trace(duration=3600.0, seed=3, scale=2.0)
    slow_joins = sum(1 for e in slow.events if e.kind is MobilityEventKind.JOIN)
    fast_joins = sum(1 for e in fast.events if e.kind is MobilityEventKind.JOIN)
    assert fast_joins > slow_joins * 2


def test_join_ids_fresh():
    t = trace(duration=3600.0)
    assert set(t.joining_nodes).isdisjoint(set(t.initial_nodes))
    join_events = [e for e in t.events if e.kind is MobilityEventKind.JOIN]
    assert {e.node_id for e in join_events} == set(t.joining_nodes)


def test_leave_targets_present_nodes():
    t = trace(duration=3600.0)
    present = set(t.initial_nodes)
    for event in t.events:
        if event.kind is MobilityEventKind.JOIN:
            present.add(event.node_id)
        elif event.kind is MobilityEventKind.LEAVE:
            assert event.node_id in present
            present.remove(event.node_id)


def test_moves_respect_walking_speed():
    t = trace(duration=600.0, seed=5)
    last = dict(t.initial_positions)
    last_time = {n: 0.0 for n in t.initial_nodes}
    for event in t.events:
        if event.kind is MobilityEventKind.MOVE and event.node_id in last:
            dt = event.time - last_time[event.node_id]
            dx = event.position[0] - last[event.node_id][0]
            dy = event.position[1] - last[event.node_id][1]
            dist = (dx * dx + dy * dy) ** 0.5
            if dt > 0:
                assert dist / dt <= WALK_SPEED * 1.5 + 1e-6
            last[event.node_id] = event.position
            last_time[event.node_id] = event.time
        elif event.kind is MobilityEventKind.JOIN:
            last[event.node_id] = event.position
            last_time[event.node_id] = event.time
        elif event.kind is MobilityEventKind.LEAVE:
            last.pop(event.node_id, None)


def test_move_positions_inside_area():
    t = trace(duration=600.0)
    for event in t.events:
        if event.kind is MobilityEventKind.MOVE:
            assert STUDENT_CENTER.area.contains(event.position)


def test_deterministic_for_seed():
    a = trace(seed=42)
    b = trace(seed=42)
    assert a.events == b.events
    assert a.initial_positions == b.initial_positions


def test_different_seeds_differ():
    assert trace(seed=1).events != trace(seed=2).events


def test_move_step_resolution():
    assert MOVE_STEP_S == pytest.approx(1.0)
