"""Unit tests for trace playback."""

import random

from repro.mobility.model import AreaSpec, MobilityEvent, MobilityEventKind
from repro.mobility.trace import TracePlayer
from repro.net.topology import Topology
from repro.sim.simulator import Simulator


class FakeDevice:
    def __init__(self):
        self.left = False

    def leave(self):
        self.left = True


def make_player(device_factory=None):
    sim = Simulator()
    topo = Topology(40.0)
    topo.add_node(0, (0, 0))
    devices = {0: FakeDevice()}
    player = TracePlayer(sim, topo, devices, device_factory)
    return sim, topo, devices, player


def test_move_event_updates_topology():
    sim, topo, _, player = make_player()
    player.schedule([MobilityEvent(1.0, MobilityEventKind.MOVE, 0, (9.0, 9.0))])
    sim.run()
    assert topo.position(0) == (9.0, 9.0)
    assert player.moves == 1


def test_move_for_absent_node_ignored():
    sim, topo, _, player = make_player()
    player.schedule([MobilityEvent(1.0, MobilityEventKind.MOVE, 99, (9.0, 9.0))])
    sim.run()
    assert player.moves == 0


def test_join_creates_device_via_factory():
    created = []

    def factory(node_id):
        device = FakeDevice()
        created.append(node_id)
        return device

    sim, topo, devices, player = make_player(factory)
    player.schedule([MobilityEvent(1.0, MobilityEventKind.JOIN, 5, (3.0, 3.0))])
    sim.run()
    assert 5 in topo
    assert created == [5]
    assert 5 in devices
    assert player.joins == 1


def test_join_without_factory_only_updates_topology():
    sim, topo, devices, player = make_player()
    player.schedule([MobilityEvent(1.0, MobilityEventKind.JOIN, 5, (3.0, 3.0))])
    sim.run()
    assert 5 in topo
    assert 5 not in devices


def test_duplicate_join_ignored():
    sim, topo, _, player = make_player()
    player.schedule(
        [
            MobilityEvent(1.0, MobilityEventKind.JOIN, 5, (3.0, 3.0)),
            MobilityEvent(2.0, MobilityEventKind.JOIN, 5, (4.0, 4.0)),
        ]
    )
    sim.run()
    assert player.joins == 1
    assert topo.position(5) == (3.0, 3.0)


def test_leave_tears_down_device_and_node():
    sim, topo, devices, player = make_player()
    device = devices[0]
    player.schedule([MobilityEvent(1.0, MobilityEventKind.LEAVE, 0)])
    sim.run()
    assert device.left
    assert 0 not in topo
    assert 0 not in devices
    assert player.leaves == 1


def test_leave_for_absent_node_safe():
    sim, _, _, player = make_player()
    player.schedule([MobilityEvent(1.0, MobilityEventKind.LEAVE, 42)])
    sim.run()
    assert player.leaves == 0


def test_past_events_skipped():
    sim, _, _, player = make_player()
    sim.schedule(5.0, lambda: None)
    sim.run()
    count = player.schedule(
        [MobilityEvent(1.0, MobilityEventKind.MOVE, 0, (1.0, 1.0))]
    )
    assert count == 0


def test_schedule_returns_count():
    sim, _, _, player = make_player()
    events = [
        MobilityEvent(1.0, MobilityEventKind.MOVE, 0, (1.0, 1.0)),
        MobilityEvent(2.0, MobilityEventKind.MOVE, 0, (2.0, 2.0)),
    ]
    assert player.schedule(events) == 2


def test_area_spec_contains_and_clamp():
    area = AreaSpec(10.0, 20.0)
    assert area.contains((5.0, 5.0))
    assert not area.contains((11.0, 5.0))
    assert area.clamp((-5.0, 25.0)) == (0.0, 20.0)
