"""Shared builders for the test suite."""

from __future__ import annotations

import random
from types import SimpleNamespace
from typing import Dict, Optional, Tuple

from repro.net.medium import BroadcastMedium
from repro.net.topology import NodeId, Position, Topology
from repro.node.config import DeviceConfig
from repro.node.device import Device
from repro.sim.simulator import Simulator


def make_net(
    positions: Dict[NodeId, Position],
    radio_range: float = 40.0,
    seed: int = 0,
    device_config: Optional[DeviceConfig] = None,
    base_loss: float = 0.0,
) -> SimpleNamespace:
    """A small network with one device per position.

    Loss defaults to zero so unit tests are fully deterministic; tests that
    exercise loss behaviour pass an explicit ``base_loss``.
    """
    sim = Simulator()
    topology = Topology(radio_range=radio_range)
    for node_id, position in positions.items():
        topology.add_node(node_id, position)
    medium = BroadcastMedium(
        sim, topology, random.Random(seed), base_loss=base_loss
    )
    devices = {
        node_id: Device(
            sim, medium, node_id, random.Random(seed * 1000 + node_id), device_config
        )
        for node_id in positions
    }
    return SimpleNamespace(
        sim=sim, topology=topology, medium=medium, devices=devices
    )


def line_positions(count: int, spacing: float = 30.0) -> Dict[NodeId, Position]:
    """``count`` nodes on a line, each hearing only adjacent neighbors
    when ``spacing`` is larger than half the radio range."""
    return {index: (index * spacing, 0.0) for index in range(count)}


def clique_positions(count: int) -> Dict[NodeId, Position]:
    """``count`` nodes all within one hop of each other."""
    return {index: (float(index), 0.0) for index in range(count)}
