"""Unit tests for the CDI table (§IV-A distance-vector rules)."""

from repro.core.cdi import CdiTable
from repro.data.descriptor import make_descriptor


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make():
    clock = FakeClock()
    return CdiTable(clock), clock


ITEM = make_descriptor("media", "video", name="v")


def test_first_entry_added():
    table, _ = make()
    assert table.update(ITEM, 0, 2, neighbor=5, ttl=30.0) is True
    assert table.best_hop(ITEM, 0) == 2
    assert [e.neighbor for e in table.best_entries(ITEM, 0)] == [5]


def test_smaller_distance_replaces():
    table, _ = make()
    table.update(ITEM, 0, 3, neighbor=5, ttl=30.0)
    assert table.update(ITEM, 0, 1, neighbor=6, ttl=30.0) is True
    entries = table.best_entries(ITEM, 0)
    assert [(e.neighbor, e.hop_count) for e in entries] == [(6, 1)]


def test_equal_distance_adds_neighbor():
    """Same least hop count via multiple neighbors → one entry each."""
    table, _ = make()
    table.update(ITEM, 0, 2, neighbor=5, ttl=30.0)
    assert table.update(ITEM, 0, 2, neighbor=6, ttl=30.0) is True
    assert {e.neighbor for e in table.best_entries(ITEM, 0)} == {5, 6}


def test_larger_distance_ignored():
    table, _ = make()
    table.update(ITEM, 0, 1, neighbor=5, ttl=30.0)
    assert table.update(ITEM, 0, 4, neighbor=6, ttl=30.0) is False
    assert {e.neighbor for e in table.best_entries(ITEM, 0)} == {5}


def test_duplicate_update_refreshes_expiry_not_new():
    table, clock = make()
    table.update(ITEM, 0, 2, neighbor=5, ttl=10.0)
    clock.now = 8.0
    assert table.update(ITEM, 0, 2, neighbor=5, ttl=10.0) is False
    clock.now = 15.0  # original would have expired at 10
    assert table.best_hop(ITEM, 0) == 2


def test_entries_expire():
    """Obsolete CDI entries do not stay forever (§IV-A)."""
    table, clock = make()
    table.update(ITEM, 0, 2, neighbor=5, ttl=10.0)
    clock.now = 10.0
    assert table.best_hop(ITEM, 0) is None
    assert table.best_entries(ITEM, 0) == []


def test_expired_best_uncovers_nothing_even_if_worse_existed():
    table, clock = make()
    table.update(ITEM, 0, 1, neighbor=5, ttl=10.0)
    # A worse entry was rejected, not stored; after expiry there is nothing.
    table.update(ITEM, 0, 3, neighbor=6, ttl=100.0)
    clock.now = 50.0
    assert table.best_hop(ITEM, 0) is None


def test_known_chunks():
    table, clock = make()
    table.update(ITEM, 0, 2, neighbor=5, ttl=10.0)
    table.update(ITEM, 3, 1, neighbor=5, ttl=100.0)
    assert table.known_chunks(ITEM) == {0, 3}
    clock.now = 50.0
    assert table.known_chunks(ITEM) == {3}


def test_items_are_separate():
    table, _ = make()
    other = make_descriptor("media", "video", name="w")
    table.update(ITEM, 0, 2, neighbor=5, ttl=30.0)
    assert table.best_hop(other, 0) is None


def test_chunk_descriptor_normalised_to_item():
    table, _ = make()
    table.update(ITEM.chunk_descriptor(0), 0, 2, neighbor=5, ttl=30.0)
    assert table.best_hop(ITEM, 0) == 2


def test_remove_neighbor():
    table, _ = make()
    table.update(ITEM, 0, 2, neighbor=5, ttl=30.0)
    table.update(ITEM, 0, 2, neighbor=6, ttl=30.0)
    table.remove_neighbor(5)
    assert {e.neighbor for e in table.best_entries(ITEM, 0)} == {6}
    table.remove_neighbor(6)
    assert table.best_hop(ITEM, 0) is None


def test_clear():
    table, _ = make()
    table.update(ITEM, 0, 2, neighbor=5, ttl=30.0)
    table.clear()
    assert table.known_chunks(ITEM) == set()
