"""Unit tests for the multi-round controller (§III-B-2)."""

import pytest

from repro.core.rounds import RoundConfig, RoundController
from repro.errors import ConfigurationError


def make(sim, on_end, **kwargs):
    return RoundController(sim, RoundConfig(**kwargs), on_end)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RoundConfig(window_s=0)
    with pytest.raises(ConfigurationError):
        RoundConfig(stop_ratio=1.0)
    with pytest.raises(ConfigurationError):
        RoundConfig(continue_ratio=-0.1)
    with pytest.raises(ConfigurationError):
        RoundConfig(check_interval_s=0)


def test_round_ends_after_window_of_silence(sim):
    ends = []
    controller = make(sim, lambda: ends.append(sim.now), window_s=1.0)
    controller.begin_round()
    sim.run(until=5.0)
    assert len(ends) == 1
    assert 1.0 <= ends[0] <= 1.5  # first check at/after the window


def test_responses_extend_the_round(sim):
    ends = []
    controller = make(sim, lambda: ends.append(sim.now), window_s=1.0)
    controller.begin_round()
    for t in (0.5, 1.2, 1.9):
        sim.schedule(t, controller.record_response)
    sim.run(until=10.0)
    assert len(ends) == 1
    # Silence starts at 1.9 → end no earlier than 2.9.
    assert ends[0] >= 2.9


def test_round_index_increments(sim):
    controller = make(sim, lambda: None)
    assert controller.begin_round() == 1
    assert controller.begin_round() == 2
    assert controller.round_index == 2


def test_stop_ratio_zero_requires_empty_window(sim):
    """T_r = 0: the round ends only when *no* response fell in the window."""
    ends = []
    controller = make(sim, lambda: ends.append(sim.now), window_s=1.0)
    controller.begin_round()
    # Steady stream every 0.5 s keeps the round alive.
    for i in range(10):
        sim.schedule(0.5 * i, controller.record_response)
    sim.run(until=4.0)
    assert ends == []
    sim.run(until=10.0)
    assert len(ends) == 1


def test_higher_stop_ratio_ends_rounds_earlier(sim):
    early_ends, late_ends = [], []
    aggressive = make(sim, lambda: early_ends.append(sim.now), window_s=1.0,
                      stop_ratio=0.5)
    patient = make(sim, lambda: late_ends.append(sim.now), window_s=1.0,
                   stop_ratio=0.0)
    aggressive.begin_round()
    patient.begin_round()
    for t in (0.1, 0.2, 0.3, 1.4):
        sim.schedule(t, aggressive.record_response)
        sim.schedule(t, patient.record_response)
    sim.run(until=10.0)
    assert early_ends and late_ends
    assert early_ends[0] < late_ends[0]


def test_should_start_new_round_continue_rule():
    """Continue iff new/total > T_d (§III-B-2)."""
    import repro.sim.simulator as s

    sim = s.Simulator()
    controller = make(sim, lambda: None, continue_ratio=0.0)
    controller.begin_round()
    assert controller.should_start_new_round(1, 100) is True
    assert controller.should_start_new_round(0, 100) is False
    assert controller.should_start_new_round(0, 0) is False


def test_continue_ratio_threshold():
    import repro.sim.simulator as s

    sim = s.Simulator()
    controller = make(sim, lambda: None, continue_ratio=0.3)
    controller.begin_round()
    assert controller.should_start_new_round(31, 100) is True
    assert controller.should_start_new_round(30, 100) is False


def test_max_rounds_cap():
    import repro.sim.simulator as s

    sim = s.Simulator()
    controller = make(sim, lambda: None, max_rounds=2)
    controller.begin_round()
    assert controller.should_start_new_round(50, 100) is True
    controller.begin_round()
    assert controller.should_start_new_round(50, 100) is False


def test_stop_prevents_further_end_callbacks(sim):
    ends = []
    controller = make(sim, lambda: ends.append(sim.now))
    controller.begin_round()
    controller.stop()
    sim.run(until=10.0)
    assert ends == []
    assert not controller.active


def test_record_response_ignored_when_inactive(sim):
    controller = make(sim, lambda: None)
    controller.record_response()  # no crash before begin_round
    assert controller._arrivals == []
