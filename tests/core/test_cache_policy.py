"""Unit tests for chunk cache policies (§VII extension)."""

import pytest

from repro.data.item import make_item
from repro.data.store import DataStore
from repro.errors import ConfigurationError
from repro.node.cache import CachePolicyConfig, ChunkCache, EvictionStrategy


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_cache(capacity=None, strategy=EvictionStrategy.LRU):
    clock = Clock()
    store = DataStore(clock)
    cache = ChunkCache(
        store, clock, CachePolicyConfig(capacity_bytes=capacity, strategy=strategy)
    )
    return cache, store, clock


def chunk_of(name, size=1000):
    return make_item("m", "v", name, size=size, chunk_size=size).chunks()[0]


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CachePolicyConfig(capacity_bytes=-1)


def test_unbounded_cache_accepts_everything():
    cache, store, _ = make_cache(capacity=None)
    for i in range(50):
        assert cache.offer(chunk_of(f"c{i}"))
    assert store.chunk_count() == 50
    assert cache.evictions == 0


def test_pinned_chunks_never_evicted():
    cache, store, clock = make_cache(capacity=2000)
    own = chunk_of("own", 1500)
    cache.pin(own)
    for i in range(5):
        clock.now += 1
        cache.offer(chunk_of(f"c{i}", 1000))
    assert store.has_chunk(own.descriptor)


def test_lru_evicts_oldest():
    cache, store, clock = make_cache(capacity=3000)
    chunks = [chunk_of(f"c{i}", 1000) for i in range(3)]
    for c in chunks:
        clock.now += 1
        cache.offer(c)
    # Touch c0 so c1 becomes the LRU victim.
    clock.now += 1
    cache.touch(chunks[0].descriptor)
    clock.now += 1
    cache.offer(chunk_of("new", 1000))
    assert store.has_chunk(chunks[0].descriptor)
    assert not store.has_chunk(chunks[1].descriptor)
    assert cache.evictions == 1


def test_least_popular_evicts_cold_chunk():
    cache, store, clock = make_cache(
        capacity=3000, strategy=EvictionStrategy.LEAST_POPULAR
    )
    hot, cold, warm = (chunk_of(n, 1000) for n in ("hot", "cold", "warm"))
    for c in (hot, cold, warm):
        clock.now += 1
        cache.offer(c)
    for _ in range(5):
        cache.touch(hot.descriptor)
    cache.touch(warm.descriptor)
    cache.offer(chunk_of("new", 1000))
    assert not store.has_chunk(cold.descriptor)
    assert store.has_chunk(hot.descriptor)


def test_largest_evicts_biggest():
    cache, store, clock = make_cache(capacity=4000, strategy=EvictionStrategy.LARGEST)
    small = chunk_of("small", 500)
    big = chunk_of("big", 3000)
    clock.now += 1
    cache.offer(small)
    clock.now += 1
    cache.offer(big)
    cache.offer(chunk_of("new", 1000))
    assert not store.has_chunk(big.descriptor)
    assert store.has_chunk(small.descriptor)


def test_oversized_chunk_rejected():
    cache, store, _ = make_cache(capacity=1000)
    assert not cache.offer(chunk_of("huge", 2000))
    assert cache.rejected == 1
    assert store.chunk_count() == 0


def test_reoffer_of_stored_chunk_is_true_and_touches():
    cache, _, clock = make_cache(capacity=5000)
    c = chunk_of("c", 1000)
    cache.offer(c)
    assert cache.offer(c) is True
    assert cache.cached_bytes == 1000  # not double counted


def test_cached_bytes_tracks_evictions():
    cache, _, clock = make_cache(capacity=2000)
    for i in range(4):
        clock.now += 1
        cache.offer(chunk_of(f"c{i}", 1000))
    assert cache.cached_bytes <= 2000


def test_device_integration_bounded_cache():
    from tests.helpers import line_positions, make_net
    from repro.node.config import DeviceConfig

    config = DeviceConfig(
        cache=CachePolicyConfig(capacity_bytes=300_000)  # ~1 chunk
    )
    net = make_net(line_positions(3), device_config=config)
    item = make_item("media", "video", "v", size=3 * 256 * 1024)
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)  # pinned: producer keeps all 3
    consumer = net.devices[0]
    from repro.core.consumer import RetrievalSession

    session = RetrievalSession(consumer, item.descriptor)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=120.0)
    # The consumer pinned its requested chunks: retrieval still completes.
    assert session.result.completed
    # The relay's bounded cache held at most its capacity in cached bytes.
    assert net.devices[1].cache.cached_bytes <= 300_000
    assert net.devices[1].cache.evictions + net.devices[1].cache.rejected >= 1
