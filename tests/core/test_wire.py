"""Unit tests for the message-level wire codec."""

import pytest

from repro.bloom.bloom_filter import BloomFilter, NullFilter
from repro.core.messages import (
    CdiQuery,
    CdiResponse,
    ChunkQuery,
    ChunkResponse,
    DiscoveryQuery,
    DiscoveryResponse,
    MdrQuery,
)
from repro.core.wire import decode_message, encode_message
from repro.data.descriptor import make_descriptor
from repro.data.item import make_item
from repro.data.predicate import QuerySpec, eq
from repro.errors import ProtocolError

ITEM = make_item("media", "video", "clip", size=3 * 256 * 1024).descriptor


def roundtrip(message):
    return decode_message(encode_message(message))


def test_discovery_query_round_trip():
    bloom = BloomFilter(256, 3, seed=2)
    bloom.insert(b"already-received")
    query = DiscoveryQuery(
        message_id=42,
        sender_id=7,
        receiver_ids=None,
        spec=QuerySpec([eq("data_type", "nox")]),
        origin_id=3,
        expires_at=123.5,
        bloom=bloom,
        round_index=2,
        want_payload=True,
        hop_count=4,
    )
    decoded = roundtrip(query)
    assert decoded.message_id == 42
    assert decoded.sender_id == 7
    assert decoded.receiver_ids is None
    assert decoded.spec == query.spec
    assert decoded.origin_id == 3
    assert decoded.expires_at == 123.5
    assert decoded.round_index == 2
    assert decoded.want_payload is True
    assert decoded.hop_count == 4
    assert b"already-received" in decoded.bloom


def test_discovery_query_infinite_expiry_round_trips():
    query = DiscoveryQuery(
        message_id=1, sender_id=1, receiver_ids=frozenset({2, 5}),
        bloom=NullFilter(),
    )
    decoded = roundtrip(query)
    assert decoded.expires_at == float("inf")
    assert decoded.receiver_ids == frozenset({2, 5})
    assert isinstance(decoded.bloom, NullFilter)


def test_discovery_response_round_trip():
    entries = (
        make_descriptor("env", "nox", time=1.0),
        make_descriptor("env", "pm25", time=2.0),
    )
    payloads = (make_item("m", "v", "x", size=500).chunks()[0],)
    response = DiscoveryResponse(
        message_id=9,
        sender_id=4,
        receiver_ids=frozenset({1}),
        entries=entries,
        payloads=payloads,
        round_index=3,
    )
    decoded = roundtrip(response)
    assert decoded.entries == entries
    assert decoded.payloads == payloads
    assert decoded.round_index == 3
    assert decoded.query_ids == ()


def test_discovery_response_query_ids_round_trip():
    response = DiscoveryResponse(
        message_id=9,
        sender_id=4,
        receiver_ids=frozenset({1}),
        entries=(make_descriptor("env", "nox", time=1.0),),
        query_ids=(42, 99, 7),
    )
    assert roundtrip(response).query_ids == (42, 99, 7)


def test_cdi_query_round_trip():
    query = CdiQuery(
        message_id=5, sender_id=2, receiver_ids=None,
        item=ITEM, origin_id=2, expires_at=60.0, hop_count=1,
    )
    decoded = roundtrip(query)
    assert decoded.item == ITEM
    assert decoded.hop_count == 1


def test_cdi_response_round_trip():
    response = CdiResponse(
        message_id=6, sender_id=3, receiver_ids=frozenset({2}),
        item=ITEM, pairs=((0, 0), (1, 2), (2, 5)),
    )
    decoded = roundtrip(response)
    assert decoded.pairs == ((0, 0), (1, 2), (2, 5))
    assert decoded.query_ids == ()


def test_cdi_response_query_ids_round_trip():
    response = CdiResponse(
        message_id=6, sender_id=3, receiver_ids=frozenset({2}),
        item=ITEM, pairs=((0, 1),), query_ids=(17,),
    )
    assert roundtrip(response).query_ids == (17,)


def test_chunk_query_round_trip():
    query = ChunkQuery(
        message_id=7, sender_id=1, receiver_ids=frozenset({8}),
        item=ITEM, chunk_ids=frozenset({0, 2}), origin_id=1, expires_at=30.0,
    )
    decoded = roundtrip(query)
    assert decoded.chunk_ids == frozenset({0, 2})
    assert decoded.receiver_ids == frozenset({8})
    assert decoded.root_id == 0
    assert decoded.parent_id == 0
    assert decoded.hop_count == 0


def test_chunk_query_division_tree_ids_round_trip():
    # The ids stamped by ChunkQuery.divided() must survive the codec so
    # the offline span reconstruction can rebuild the division tree.
    query = ChunkQuery(
        message_id=31, sender_id=1, receiver_ids=frozenset({8}),
        item=ITEM, chunk_ids=frozenset({1}), origin_id=1, expires_at=30.0,
        root_id=7, parent_id=19, hop_count=2,
    )
    decoded = roundtrip(query)
    assert decoded.root_id == 7
    assert decoded.parent_id == 19
    assert decoded.hop_count == 2


def test_divided_chunk_query_round_trips_lineage():
    parent = ChunkQuery(
        message_id=7, sender_id=1, receiver_ids=frozenset({8}),
        item=ITEM, chunk_ids=frozenset({0, 2}), origin_id=1, expires_at=30.0,
    )
    child = parent.divided(sender_id=8, receiver=9, chunk_ids=frozenset({2}))
    decoded = roundtrip(child)
    assert decoded.root_id == 7
    assert decoded.parent_id == 7
    assert decoded.hop_count == 1


def test_chunk_response_round_trip():
    chunk = make_item("m", "v", "big", size=256 * 1024 + 5).chunks()[1]
    response = ChunkResponse(
        message_id=8, sender_id=2, receiver_ids=frozenset({1}), chunk=chunk
    )
    decoded = roundtrip(response)
    assert decoded.chunk == chunk
    assert decoded.chunk.size == 5


def test_mdr_query_round_trip():
    query = MdrQuery(
        message_id=9, sender_id=0, receiver_ids=None,
        item=ITEM, total_chunks=12, have_chunk_ids=frozenset({0, 3, 11}),
        origin_id=0, expires_at=45.0, round_index=2, hop_count=3,
    )
    decoded = roundtrip(query)
    assert decoded.total_chunks == 12
    assert decoded.have_chunk_ids == frozenset({0, 3, 11})
    assert decoded.round_index == 2


def test_unknown_tag_rejected():
    with pytest.raises(ProtocolError):
        decode_message(b"\xee\x01\x01\x00")


def test_empty_message_rejected():
    with pytest.raises(ProtocolError):
        decode_message(b"")


def test_unencodable_type_rejected():
    with pytest.raises(ProtocolError):
        encode_message(object())


def test_encoded_size_tracks_wire_size_estimate():
    """The simulation's wire_size estimate is within 2x of the actual
    encoding for representative messages (headers differ slightly)."""
    bloom = BloomFilter.for_capacity(100)
    query = DiscoveryQuery(
        message_id=1, sender_id=1, receiver_ids=None,
        spec=QuerySpec([eq("data_type", "nox")]), bloom=bloom,
    )
    actual = len(encode_message(query))
    estimate = query.wire_size()
    assert 0.5 <= estimate / actual <= 2.0
