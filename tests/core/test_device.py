"""Unit tests for the Device composition: dispatch, listeners, leave."""

from repro.bloom.bloom_filter import NullFilter
from repro.core.messages import (
    ChunkResponse,
    DiscoveryResponse,
    next_message_id,
)
from repro.data.descriptor import make_descriptor
from repro.data.item import make_item
from repro.data.predicate import QuerySpec

from tests.helpers import line_positions, make_net


def sample(i=0):
    return make_descriptor("env", "nox", time=float(i))


def test_add_item_stores_chunks_and_metadata():
    net = make_net(line_positions(1))
    device = net.devices[0]
    item = make_item("media", "video", "v", size=3 * 256 * 1024)
    device.add_item(item)
    assert device.store.chunk_ids_of(item.descriptor) == [0, 1, 2]
    assert device.store.has_metadata(item.descriptor)


def test_metadata_listener_fires_once_per_new_entry():
    net = make_net(line_positions(1))
    device = net.devices[0]
    seen = []
    device.metadata_listeners.append(seen.append)
    assert device.cache_metadata(sample()) is True
    assert device.cache_metadata(sample()) is False
    assert len(seen) == 1


def test_chunk_listener_fires_once_per_new_chunk():
    net = make_net(line_positions(1))
    device = net.devices[0]
    seen = []
    device.chunk_listeners.append(seen.append)
    chunk = make_item("m", "v", "x", size=100).chunks()[0]
    assert device.cache_chunk(chunk) is True
    assert device.cache_chunk(chunk) is False
    assert len(seen) == 1


def test_response_listener_fires_only_for_addressed():
    net = make_net(line_positions(3))
    device1 = net.devices[1]
    seen = []
    device1.response_listeners.append(seen.append)
    response = DiscoveryResponse(
        message_id=next_message_id(),
        sender_id=0,
        receiver_ids=frozenset({2}),  # not node 1
        entries=(sample(),),
    )
    net.devices[0].face.send(
        response, response.wire_size(), receivers=response.receiver_ids,
        kind="response", reliable=False,
    )
    net.sim.run(until=5.0)
    assert seen == []  # overheard, not addressed
    assert device1.store.has_metadata(sample())  # but still cached


def test_left_device_ignores_traffic():
    net = make_net(line_positions(2))
    device = net.devices[1]
    device.leave()
    net.devices[0].discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=10.0)
    assert len(device.discovery.lqt) == 0


def test_left_device_stops_answering():
    net = make_net(line_positions(2))
    net.devices[1].add_metadata(sample())
    net.devices[1].leave()
    net.topology.remove_node(1)
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=10.0)
    assert not consumer.store.has_metadata(sample())


def test_chunk_response_reaches_both_chunk_and_mdr_engines():
    """Device dispatch fans ChunkResponse to PDR and MDR relays."""
    net = make_net(line_positions(2))
    device = net.devices[0]
    chunk = make_item("m", "v", "x", size=1000).chunks()[0]
    response = ChunkResponse(
        message_id=next_message_id(),
        sender_id=1,
        receiver_ids=frozenset({0}),
        chunk=chunk,
    )
    net.devices[1].face.send(
        response, response.wire_size(), receivers=response.receiver_ids,
        kind="chunk_response", reliable=False,
    )
    net.sim.run(until=5.0)
    assert device.store.has_chunk(chunk.descriptor)
    # Both engines remember the response id (each keeps its own RR set).
    assert response.message_id in device.chunks.recent
    assert response.message_id in device.mdr.recent


def test_repr_mentions_id():
    net = make_net(line_positions(1))
    assert "id=0" in repr(net.devices[0])
