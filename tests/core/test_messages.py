"""Unit tests for PDS message types and rewriting semantics."""

from repro.bloom.bloom_filter import BloomFilter, NullFilter
from repro.core.messages import (
    CdiQuery,
    CdiResponse,
    ChunkQuery,
    ChunkResponse,
    DiscoveryQuery,
    DiscoveryResponse,
    MdrQuery,
    next_message_id,
)
from repro.data.descriptor import make_descriptor
from repro.data.item import make_item
from repro.data.predicate import QuerySpec, eq


def item_descriptor():
    return make_item("media", "video", "v", size=600_000).descriptor


def test_message_ids_unique():
    ids = {next_message_id() for _ in range(100)}
    assert len(ids) == 100


def test_discovery_query_rewrite_preserves_id_and_spec():
    query = DiscoveryQuery(
        message_id=next_message_id(),
        sender_id=1,
        receiver_ids=None,
        spec=QuerySpec([eq("t", "nox")]),
        origin_id=1,
        expires_at=30.0,
    )
    rewritten = query.rewritten(sender_id=2, receiver_ids=None)
    assert rewritten.message_id == query.message_id
    assert rewritten.sender_id == 2
    assert rewritten.spec == query.spec
    assert query.sender_id == 1  # original untouched


def test_discovery_query_rewrite_can_swap_bloom():
    bloom = BloomFilter(64, 2)
    query = DiscoveryQuery(
        message_id=1, sender_id=1, receiver_ids=None, bloom=NullFilter()
    )
    rewritten = query.rewritten(sender_id=2, receiver_ids=None, bloom=bloom)
    assert rewritten.bloom is bloom
    assert isinstance(query.bloom, NullFilter)


def test_discovery_query_wire_size_includes_bloom():
    small = DiscoveryQuery(
        message_id=1, sender_id=1, receiver_ids=None, bloom=NullFilter()
    )
    big = DiscoveryQuery(
        message_id=1, sender_id=1, receiver_ids=None, bloom=BloomFilter(8192, 4)
    )
    assert big.wire_size() > small.wire_size() + 1000


def test_discovery_response_rewrite_keeps_id():
    """Algorithm 2's RR Lookup dedups relayed copies by response id."""
    d = make_descriptor("env", "nox", time=1.0)
    response = DiscoveryResponse(
        message_id=77, sender_id=1, receiver_ids=frozenset({2}), entries=(d,)
    )
    relayed = response.rewritten(
        sender_id=2, receiver_ids=frozenset({3}), entries=(d,)
    )
    assert relayed.message_id == 77
    assert relayed.sender_id == 2


def test_discovery_response_wire_size_counts_entries_and_payloads():
    d = make_descriptor("env", "nox", time=1.0)
    chunk = make_item("m", "v", "x", size=5000).chunks()[0]
    meta_only = DiscoveryResponse(
        message_id=1, sender_id=1, receiver_ids=frozenset({2}), entries=(d,)
    )
    with_payload = DiscoveryResponse(
        message_id=1,
        sender_id=1,
        receiver_ids=frozenset({2}),
        payloads=(chunk,),
    )
    assert with_payload.wire_size() > meta_only.wire_size() + 4000


def test_receiver_list_costs_bytes():
    d = make_descriptor("env", "nox")
    one = DiscoveryResponse(
        message_id=1, sender_id=1, receiver_ids=frozenset({2}), entries=(d,)
    )
    three = DiscoveryResponse(
        message_id=1, sender_id=1, receiver_ids=frozenset({2, 3, 4}), entries=(d,)
    )
    assert three.wire_size() == one.wire_size() + 8


def test_cdi_query_rewrite():
    q = CdiQuery(
        message_id=5, sender_id=1, receiver_ids=None, item=item_descriptor()
    )
    r = q.rewritten(sender_id=9, receiver_ids=None)
    assert r.message_id == 5
    assert r.sender_id == 9
    assert r.item == q.item


def test_cdi_response_rewrite_updates_pairs_keeps_id():
    resp = CdiResponse(
        message_id=6,
        sender_id=1,
        receiver_ids=frozenset({2}),
        item=item_descriptor(),
        pairs=((0, 0), (1, 2)),
    )
    relayed = resp.rewritten(
        sender_id=2, receiver_ids=frozenset({3}), pairs=((0, 1),)
    )
    assert relayed.message_id == 6
    assert relayed.pairs == ((0, 1),)


def test_cdi_response_wire_size_scales_with_pairs():
    base = CdiResponse(
        message_id=1, sender_id=1, receiver_ids=frozenset({2}),
        item=item_descriptor(), pairs=(),
    )
    four = CdiResponse(
        message_id=1, sender_id=1, receiver_ids=frozenset({2}),
        item=item_descriptor(), pairs=((0, 0), (1, 1), (2, 2), (3, 3)),
    )
    assert four.wire_size() == base.wire_size() + 16


def test_chunk_query_divided_gets_new_id():
    q = ChunkQuery(
        message_id=next_message_id(),
        sender_id=1,
        receiver_ids=frozenset({2}),
        item=item_descriptor(),
        chunk_ids=frozenset({0, 1, 2}),
        origin_id=1,
    )
    sub = q.divided(sender_id=2, receiver=5, chunk_ids=frozenset({1}))
    assert sub.message_id != q.message_id
    assert sub.receiver_ids == frozenset({5})
    assert sub.chunk_ids == frozenset({1})
    assert sub.origin_id == 1


def test_chunk_response_wire_size_includes_payload():
    chunk = make_item("m", "v", "x", size=256 * 1024).chunks()[0]
    resp = ChunkResponse(
        message_id=1, sender_id=1, receiver_ids=frozenset({2}), chunk=chunk
    )
    assert resp.wire_size() > 256 * 1024


def test_mdr_query_bitmap_cost():
    few = MdrQuery(
        message_id=1, sender_id=1, receiver_ids=None,
        item=item_descriptor(), total_chunks=8,
    )
    many = MdrQuery(
        message_id=1, sender_id=1, receiver_ids=None,
        item=item_descriptor(), total_chunks=800,
    )
    assert many.wire_size() == few.wire_size() + 99


def test_mdr_query_rewrite_extends_have_set():
    q = MdrQuery(
        message_id=1, sender_id=1, receiver_ids=None,
        item=item_descriptor(), total_chunks=10,
        have_chunk_ids=frozenset({1}),
    )
    r = q.rewritten(
        sender_id=2, receiver_ids=None, have_chunk_ids=frozenset({1, 2, 3})
    )
    assert r.message_id == q.message_id
    assert r.have_chunk_ids == frozenset({1, 2, 3})
    assert q.have_chunk_ids == frozenset({1})
