"""Recovery-path tests for PDR: stalls, CDI refresh, expired routes."""

from repro.core.consumer import RetrievalSession
from repro.core.rounds import RoundConfig
from repro.data.item import make_item
from repro.node.config import DeviceConfig, ProtocolConfig

from tests.helpers import line_positions, make_net


def test_stall_triggers_rerequest_and_completes():
    """A lossy path stalls the first attempt; re-requests finish the job."""
    net = make_net(line_positions(3), seed=5, base_loss=0.25)
    item = make_item("media", "video", "v", size=6 * 256 * 1024)
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    session = RetrievalSession(
        net.devices[0],
        item.descriptor,
        stall_timeout_s=3.0,
        max_attempts=20,
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=600.0)
    assert session.result.completed


def test_cdi_refresh_after_route_expiry():
    """CDI entries expire; the session re-runs phase 1 and still completes."""
    config = DeviceConfig(protocol=ProtocolConfig(cdi_ttl_s=2.0))
    net = make_net(line_positions(3), device_config=config)
    item = make_item("media", "video", "v", size=2 * 256 * 1024)
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    consumer = net.devices[0]
    # Warm CDI, then let it expire before retrieving.
    consumer.cdi.issue_query(item.descriptor)
    net.sim.run(until=10.0)  # > cdi_ttl_s: routes now stale
    assert consumer.cdi_table.best_hop(item.descriptor, 0) is None
    session = RetrievalSession(consumer, item.descriptor)
    net.sim.schedule(net.sim.now, session.start)
    net.sim.run(until=net.sim.now + 120.0)
    assert session.result.completed
    assert session.phase == "done"


def test_partial_initial_possession():
    """A consumer already holding some chunks fetches only the rest."""
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=4 * 256 * 1024)
    chunks = item.chunks()
    consumer = net.devices[0]
    consumer.add_chunk(chunks[0])
    consumer.add_chunk(chunks[2])
    for chunk in chunks:
        net.devices[1].add_chunk(chunk)

    fetched = []
    original = net.medium.transmit

    def spy(frame):
        from repro.core.messages import ChunkResponse

        if isinstance(frame.payload, ChunkResponse):
            fetched.append(frame.payload.chunk.chunk_id)
        return original(frame)

    net.medium.transmit = spy
    session = RetrievalSession(consumer, item.descriptor)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=120.0)
    assert session.result.completed
    assert set(fetched) == {1, 3}  # only the missing chunks moved


def test_cdi_round_config_controls_phase1_duration():
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=256 * 1024)
    net.devices[1].add_chunk(item.chunks()[0])
    short = RetrievalSession(
        net.devices[0],
        item.descriptor,
        round_config=RoundConfig(window_s=0.4),
    )
    net.sim.schedule(0.0, short.start)
    net.sim.run(until=60.0)
    assert short.result.completed
    # Phase 1 (CDI silence detection) plus one chunk: comfortably fast.
    assert short.result.finished_at < 10.0


def test_mdr_empty_round_accounting():
    """MDR tracks consecutive empty rounds and stops at the limit."""
    from repro.core.consumer import MdrSession

    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=2 * 256 * 1024)
    net.devices[1].add_chunk(item.chunks()[0])  # chunk 1 does not exist
    session = MdrSession(
        net.devices[0],
        item.descriptor,
        round_config=RoundConfig(window_s=1.0),
        max_empty_rounds=2,
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=300.0)
    assert session.done
    assert not session.result.completed
    assert session.have == {0}
