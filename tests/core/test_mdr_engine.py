"""Behavioural tests for the MDR baseline engine."""

from repro.core.messages import ChunkResponse, MdrQuery, next_message_id
from repro.data.item import make_item

from tests.helpers import clique_positions, line_positions, make_net


def make_item_4():
    return make_item("media", "video", "v", size=4 * 256 * 1024)


def spy(net, kinds):
    log = []
    original = net.medium.transmit

    def hook(frame):
        if frame.kind in kinds:
            log.append(frame)
        return original(frame)

    net.medium.transmit = hook
    return log


def test_holder_replies_requested_chunks():
    net = make_net(line_positions(2))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[1].add_chunk(chunk)
    consumer = net.devices[0]
    consumer.mdr.issue_round(item.descriptor, item.total_chunks, set(), 1)
    net.sim.run(until=30.0)
    assert consumer.store.chunk_ids_of(item.descriptor) == [0, 1, 2, 3]


def test_have_set_excludes_owned_chunks():
    net = make_net(line_positions(2))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[1].add_chunk(chunk)
    responses = spy(net, {"chunk_response"})
    consumer = net.devices[0]
    consumer.mdr.issue_round(item.descriptor, item.total_chunks, {0, 1}, 1)
    net.sim.run(until=30.0)
    served = {f.payload.chunk.chunk_id for f in responses}
    assert served == {2, 3}


def test_multi_hop_relay():
    net = make_net(line_positions(3))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    consumer = net.devices[0]
    consumer.mdr.issue_round(item.descriptor, item.total_chunks, set(), 1)
    net.sim.run(until=60.0)
    assert consumer.store.chunk_ids_of(item.descriptor) == [0, 1, 2, 3]


def test_en_route_rewriting_suppresses_downstream_duplicates():
    """A downstream holder sees the rewritten have-set and stays silent
    for chunks an upstream node will already serve."""
    net = make_net(line_positions(3))
    item = make_item_4()
    chunk0 = item.chunks()[0]
    net.devices[1].add_chunk(chunk0)
    net.devices[2].add_chunk(chunk0)
    responses = spy(net, {"chunk_response"})
    net.devices[0].mdr.issue_round(item.descriptor, item.total_chunks, set(), 1)
    net.sim.run(until=60.0)
    senders = [f.sender for f in responses if f.retransmission == 0]
    assert senders.count(2) == 0  # far copy suppressed by query rewriting
    assert senders.count(1) >= 1


def test_overhearing_suppresses_sibling_holders():
    """Two holders within earshot: only one serves the chunk."""
    net = make_net(clique_positions(3))  # 0 consumer, 1 and 2 holders
    item = make_item_4()
    chunk0 = item.chunks()[0]
    net.devices[1].add_chunk(chunk0)
    net.devices[2].add_chunk(chunk0)
    responses = spy(net, {"chunk_response"})
    net.devices[0].mdr.issue_round(item.descriptor, 4, set(), 1)
    net.sim.run(until=60.0)
    first_copies = [f for f in responses if f.retransmission == 0]
    assert len(first_copies) == 1


def test_duplicate_round_query_ignored():
    net = make_net(line_positions(2))
    item = make_item_4()
    net.devices[1].add_chunk(item.chunks()[0])
    responses = spy(net, {"chunk_response"})
    query = net.devices[0].mdr.issue_round(item.descriptor, 4, set(), 1)
    net.sim.run(until=10.0)
    net.devices[1].mdr.handle_query(query, addressed=True)
    net.sim.run(until=20.0)
    assert len([f for f in responses if f.retransmission == 0]) == 1


def test_relay_forwards_chunk_once_per_round():
    net = make_net(line_positions(3))
    item = make_item_4()
    relay = net.devices[1]
    query = MdrQuery(
        message_id=next_message_id(),
        sender_id=0,
        receiver_ids=None,
        item=item.descriptor.item_descriptor(),
        total_chunks=4,
        have_chunk_ids=frozenset(),
        origin_id=0,
        expires_at=60.0,
    )
    relay.mdr.handle_query(query, addressed=True)
    net.sim.run(until=5.0)
    responses = spy(net, {"chunk_response"})
    chunk = item.chunks()[0]
    for response_id in (77_001, 77_002):
        relay.mdr.handle_response(
            ChunkResponse(
                message_id=response_id,
                sender_id=2,
                receiver_ids=frozenset({1}),
                chunk=chunk,
            ),
            addressed=True,
        )
        net.sim.run(until=net.sim.now + 5.0)
    forwarded = [f for f in responses if f.sender == 1 and f.retransmission == 0]
    assert len(forwarded) == 1


def test_chunks_outside_total_ignored():
    net = make_net(line_positions(2))
    item = make_item_4()
    responses = spy(net, {"chunk_response"})
    for chunk in item.chunks():
        net.devices[1].add_chunk(chunk)
    # Request fewer chunks than the holder has (total_chunks=2).
    net.devices[0].mdr.issue_round(item.descriptor, 2, set(), 1)
    net.sim.run(until=30.0)
    served = {f.payload.chunk.chunk_id for f in responses}
    assert served <= {0, 1}
