"""Unit/behavioural tests for consumer sessions."""

import pytest

from repro.core.consumer import DiscoverySession, MdrSession, RetrievalSession
from repro.core.rounds import RoundConfig
from repro.data.descriptor import make_descriptor
from repro.data.item import make_item
from repro.data.predicate import QuerySpec, eq
from repro.errors import ConfigurationError

from tests.helpers import line_positions, make_net


def sample(i=0, data_type="nox"):
    return make_descriptor("env", data_type, time=float(i))


# ----------------------------------------------------------------------
# DiscoverySession
# ----------------------------------------------------------------------
def test_discovery_session_completes_and_reports():
    net = make_net(line_positions(3))
    for i in range(10):
        net.devices[2].add_metadata(sample(i))
    consumer = net.devices[0]
    done = []
    session = DiscoverySession(consumer, on_complete=done.append)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=60.0)
    assert session.done
    assert done == [session]
    assert len(session.received) == 10
    assert session.result.rounds >= 1
    assert session.result.latency > 0
    assert session.result.finished_at > session.result.latency


def test_discovery_session_counts_local_entries():
    """Entries already held locally count as received (Fig. 7 narrative)."""
    net = make_net(line_positions(2))
    consumer = net.devices[0]
    consumer.add_metadata(sample(0))
    session = DiscoverySession(consumer)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=30.0)
    assert sample(0) in session.received


def test_discovery_session_spec_filters():
    net = make_net(line_positions(2))
    net.devices[1].add_metadata(sample(0, "nox"))
    net.devices[1].add_metadata(sample(1, "pm25"))
    consumer = net.devices[0]
    session = DiscoverySession(
        consumer, spec=QuerySpec([eq("data_type", "nox")])
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=30.0)
    assert session.received == {sample(0, "nox")}


def test_discovery_session_stops_after_empty_round():
    net = make_net(line_positions(2))
    net.devices[1].add_metadata(sample())
    session = DiscoverySession(net.devices[0], round_config=RoundConfig())
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=120.0)
    assert session.done
    # At least one productive round plus the final empty round.
    assert session.result.rounds >= 2


def test_discovery_session_max_rounds():
    net = make_net(line_positions(2))
    for i in range(5):
        net.devices[1].add_metadata(sample(i))
    session = DiscoverySession(
        net.devices[0], round_config=RoundConfig(max_rounds=1)
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=60.0)
    assert session.done
    assert session.result.rounds == 1


def test_discovery_session_double_start_rejected():
    net = make_net(line_positions(2))
    session = DiscoverySession(net.devices[0])
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=1.0)
    with pytest.raises(ConfigurationError):
        session.start()


def test_discovery_session_detaches_listeners_on_finish():
    net = make_net(line_positions(2))
    consumer = net.devices[0]
    session = DiscoverySession(consumer)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=60.0)
    assert session.done
    assert session._on_metadata not in consumer.metadata_listeners
    assert session._on_response not in consumer.response_listeners


def test_discovery_session_want_payload_collects_items():
    from repro.data.item import DataItem

    net = make_net(line_positions(2))
    item = DataItem(sample(5), size=400, chunk_size=1000)
    net.devices[1].add_item(item)
    session = DiscoverySession(net.devices[0], want_payload=True)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=60.0)
    assert session.done
    assert len(session.received_payloads) == 1


# ----------------------------------------------------------------------
# RetrievalSession
# ----------------------------------------------------------------------
def test_retrieval_session_full_cycle():
    net = make_net(line_positions(3))
    item = make_item("media", "video", "v", size=4 * 256 * 1024)
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    consumer = net.devices[0]
    done = []
    session = RetrievalSession(
        consumer, item.descriptor, on_complete=done.append
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=120.0)
    assert session.done
    assert session.result.completed
    assert session.have == {0, 1, 2, 3}
    assert session.missing == set()
    assert done == [session]


def test_retrieval_session_total_chunks_from_descriptor():
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=3 * 256 * 1024)
    session = RetrievalSession(net.devices[0], item.descriptor)
    assert session.total_chunks == 3


def test_retrieval_session_requires_total_chunks():
    net = make_net(line_positions(2))
    bare = make_descriptor("media", "video", name="x")
    with pytest.raises(ConfigurationError):
        RetrievalSession(net.devices[0], bare)


def test_retrieval_session_completes_immediately_if_local():
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=2 * 256 * 1024)
    consumer = net.devices[0]
    consumer.add_item(item)
    session = RetrievalSession(consumer, item.descriptor)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=5.0)
    assert session.done
    assert session.result.completed
    assert session.result.latency == 0.0


def test_retrieval_session_gives_up_on_unreachable_data():
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=2 * 256 * 1024)
    # Nobody holds the chunks.
    session = RetrievalSession(
        net.devices[0],
        item.descriptor,
        stall_timeout_s=0.5,
        max_attempts=2,
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=300.0)
    assert session.done
    assert not session.result.completed
    assert session.have == set()


def test_retrieval_session_skips_cdi_phase_when_routes_cached():
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=2 * 256 * 1024)
    for chunk in item.chunks():
        net.devices[1].add_chunk(chunk)
    consumer = net.devices[0]
    # Warm the CDI table first.
    consumer.cdi.issue_query(item.descriptor)
    net.sim.run(until=3.0)
    session = RetrievalSession(consumer, item.descriptor)
    net.sim.schedule(net.sim.now, session.start)
    phases = []
    original = session._enter_cdi_phase
    session._enter_cdi_phase = lambda: (phases.append("cdi"), original())
    net.sim.run(until=60.0)
    assert session.done and session.result.completed
    assert phases == []  # went straight to the chunk phase


# ----------------------------------------------------------------------
# MdrSession
# ----------------------------------------------------------------------
def test_mdr_session_full_cycle():
    net = make_net(line_positions(3))
    item = make_item("media", "video", "v", size=4 * 256 * 1024)
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    session = MdrSession(
        net.devices[0],
        item.descriptor,
        round_config=RoundConfig(window_s=3.0),
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=240.0)
    assert session.done
    assert session.result.completed
    assert session.have == {0, 1, 2, 3}


def test_mdr_session_gives_up_after_empty_rounds():
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=2 * 256 * 1024)
    session = MdrSession(
        net.devices[0],
        item.descriptor,
        round_config=RoundConfig(window_s=0.5),
        max_empty_rounds=2,
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=300.0)
    assert session.done
    assert not session.result.completed
    assert session.result.rounds >= 2


def test_mdr_session_completes_immediately_if_local():
    net = make_net(line_positions(2))
    item = make_item("media", "video", "v", size=2 * 256 * 1024)
    consumer = net.devices[0]
    consumer.add_item(item)
    session = MdrSession(consumer, item.descriptor)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=5.0)
    assert session.done
    assert session.result.completed
