"""Behavioural tests for the PDD engine (Algorithms 1 and 2)."""

from repro.bloom.bloom_filter import BloomFilter, NullFilter
from repro.core.messages import DiscoveryQuery, DiscoveryResponse
from repro.data.descriptor import make_descriptor
from repro.data.predicate import QuerySpec, eq

from tests.helpers import line_positions, make_net


def sample(i=0, data_type="nox"):
    return make_descriptor("env", data_type, time=float(i))


def spy_transmissions(net, kinds=None):
    log = []
    original = net.medium.transmit

    def spy(frame):
        if kinds is None or frame.kind in kinds:
            log.append(frame)
        return original(frame)

    net.medium.transmit = spy
    return log


def test_node_with_matching_data_responds():
    net = make_net(line_positions(2))
    producer = net.devices[1]
    producer.add_metadata(sample())
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=5.0)
    assert consumer.store.has_metadata(sample())


def test_duplicate_query_processed_once():
    net = make_net(line_positions(2))
    responses = spy_transmissions(net, kinds={"response"})
    net.devices[1].add_metadata(sample())
    query = net.devices[0].discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=2.0)
    # Re-inject the same query (as a redundant flooded copy would be).
    net.devices[1].discovery.handle_query(query, addressed=True)
    net.sim.run(until=5.0)
    assert len(responses) == 1


def test_query_filters_by_spec():
    net = make_net(line_positions(2))
    net.devices[1].add_metadata(sample(0, "nox"))
    net.devices[1].add_metadata(sample(1, "pm25"))
    consumer = net.devices[0]
    consumer.discovery.issue_query(
        QuerySpec([eq("data_type", "nox")]), NullFilter()
    )
    net.sim.run(until=5.0)
    assert consumer.store.has_metadata(sample(0, "nox"))
    assert not consumer.store.has_metadata(sample(1, "pm25"))


def test_bloom_suppresses_already_received():
    net = make_net(line_positions(2))
    net.devices[1].add_metadata(sample(0))
    net.devices[1].add_metadata(sample(1))
    bloom = BloomFilter.for_capacity(100)
    bloom.insert(sample(0).stable_key())
    consumer = net.devices[0]
    responses = spy_transmissions(net, kinds={"response"})
    consumer.discovery.issue_query(QuerySpec(), bloom)
    net.sim.run(until=5.0)
    sent = [e for f in responses for e in f.payload.entries]
    assert sample(1) in sent
    assert sample(0) not in sent


def test_multi_hop_relay_over_line():
    """Entries three hops away reach the consumer via reverse paths."""
    net = make_net(line_positions(4))  # 0-1-2-3, 30 m apart, range 40
    net.devices[3].add_metadata(sample())
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=10.0)
    assert consumer.store.has_metadata(sample())


def test_relays_cache_entries_they_forward():
    net = make_net(line_positions(3))
    net.devices[2].add_metadata(sample())
    net.devices[0].discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=10.0)
    assert net.devices[1].store.has_metadata(sample())


def test_overhearers_cache_but_do_not_relay():
    # Triangle: 0 and 2 both hear 1; 0 queries, 2 overhears the response
    # addressed to 0.  With redundancy detection on, node 1 rewrites the
    # forwarded query so node 2 (which cached the overheard entry) stays
    # silent.
    net = make_net({0: (0.0, 0.0), 1: (30.0, 0.0), 2: (30.0, 30.0)})
    net.devices[1].add_metadata(sample())
    responses = spy_transmissions(net, kinds={"response"})
    bloom = BloomFilter.for_capacity(50)
    net.devices[0].discovery.issue_query(QuerySpec(), bloom)
    net.sim.run(until=10.0)
    assert net.devices[2].store.has_metadata(sample())
    # Node 2 never transmitted a response of its own for this query:
    # the entry it overheard is already in the rewritten query's filter.
    assert all(f.sender != 2 for f in responses)


def test_en_route_rewriting_prevents_downstream_duplicates():
    """A relay that answered inserts its entries into the forwarded query's
    Bloom filter, so downstream holders of the same entry stay silent."""
    net = make_net(line_positions(3))
    shared = sample(7)
    net.devices[1].add_metadata(shared)
    net.devices[2].add_metadata(shared)  # duplicate copy further away
    responses = spy_transmissions(net, kinds={"response"})
    bloom = BloomFilter.for_capacity(100)
    net.devices[0].discovery.issue_query(QuerySpec(), bloom)
    net.sim.run(until=10.0)
    carried = [e for f in responses for e in f.payload.entries]
    assert carried.count(shared) == 1


def test_mixedcast_single_transmission_serves_two_consumers():
    """Two lingering queries at one relay: a passing response is forwarded
    as ONE message whose receiver list covers both upstreams (mixedcast)."""
    net = make_net(
        {0: (0.0, 0.0), 1: (30.0, 0.0), 2: (30.0, 30.0), 3: (60.0, 0.0)},
        radio_range=40.0,
    )
    relay = net.devices[1]
    entry = sample(1)
    # Both consumers' queries linger at the relay (driven directly so the
    # response passes while both are present — on the air the timing of
    # CSMA serialisation can interleave responses between the two floods).
    for origin in (0, 2):
        query = DiscoveryQuery(
            message_id=10_000 + origin,
            sender_id=origin,
            receiver_ids=None,
            spec=QuerySpec(),
            origin_id=origin,
            expires_at=30.0,
            bloom=BloomFilter.for_capacity(50),
        )
        relay.discovery.handle_query(query, addressed=True)
    responses = spy_transmissions(net, kinds={"response"})
    response = DiscoveryResponse(
        message_id=20_000,
        sender_id=3,
        receiver_ids=frozenset({1}),
        entries=(entry,),
    )
    relay.discovery.handle_response(response, addressed=True)
    net.sim.run(until=5.0)
    relayed = [f for f in responses if f.sender == 1 and entry in f.payload.entries]
    assert len(relayed) == 1
    assert relayed[0].receivers == frozenset({0, 2})
    # A second copy of the same entry is pruned for both consumers.
    second = DiscoveryResponse(
        message_id=20_001,
        sender_id=3,
        receiver_ids=frozenset({1}),
        entries=(entry,),
    )
    relay.discovery.handle_response(second, addressed=True)
    net.sim.run(until=10.0)
    assert len(relayed) == 1


def test_response_packing_splits_large_batches():
    net = make_net(line_positions(2))
    for i in range(200):  # ~30 B each, far beyond one 1400 B frame
        net.devices[1].add_metadata(sample(i))
    responses = spy_transmissions(net, kinds={"response"})
    net.devices[0].discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=10.0)
    assert len(responses) > 1
    limit = net.devices[1].config.protocol.max_response_payload_bytes
    for frame in responses:
        entries_bytes = sum(e.wire_size() for e in frame.payload.entries)
        assert entries_bytes <= limit


def test_expired_query_not_forwarded():
    net = make_net(line_positions(3))
    queries = spy_transmissions(net, kinds={"query"})
    query = DiscoveryQuery(
        message_id=424242,
        sender_id=0,
        receiver_ids=None,
        spec=QuerySpec(),
        origin_id=0,
        expires_at=0.0,  # already expired on arrival
        bloom=NullFilter(),
    )
    net.devices[1].discovery.handle_query(query, addressed=True)
    net.sim.run(until=5.0)
    assert all(f.sender != 1 for f in queries)


def test_small_data_retrieval_returns_payloads():
    """want_payload queries return the items themselves (§IV intro)."""
    from repro.data.item import DataItem

    net = make_net(line_positions(3))
    item = DataItem(sample(3), size=500, chunk_size=1000)
    net.devices[2].add_item(item)
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter(), want_payload=True)
    net.sim.run(until=10.0)
    assert consumer.store.has_chunk(item.descriptor.chunk_descriptor(0))


def test_response_to_stale_response_id_dropped():
    net = make_net(line_positions(2))
    consumer = net.devices[0]
    d = sample()
    response = DiscoveryResponse(
        message_id=999,
        sender_id=1,
        receiver_ids=frozenset({0}),
        entries=(d,),
    )
    consumer.discovery.handle_response(response, addressed=True)
    assert consumer.store.has_metadata(d)
    consumer.store.remove_metadata(d)
    # The same response id again: RR lookup discards before caching.
    consumer.discovery.handle_response(response, addressed=True)
    assert not consumer.store.has_metadata(d)
