"""Tests for the one-shot Interest baseline (§VIII comparison)."""

import pytest

from repro.bloom.bloom_filter import BloomFilter
from repro.core.consumer import DiscoverySession
from repro.core.interest import InterestDiscoverySession
from repro.data.descriptor import make_descriptor
from repro.data.predicate import QuerySpec
from repro.errors import ConfigurationError

from tests.helpers import line_positions, make_net


def sample(i=0):
    return make_descriptor("env", "nox", time=float(i))


def test_single_interest_returns_single_data():
    """One Interest fetches at most one Data message worth of entries."""
    net = make_net(line_positions(2))
    for i in range(200):  # far more than one 1.4 KB frame holds
        net.devices[1].add_metadata(sample(i))
    consumer = net.devices[0]
    consumer.interest.issue_interest(QuerySpec(), BloomFilter.for_capacity(500))
    net.sim.run(until=10.0)
    got = consumer.store.metadata_count()
    assert 0 < got < 200


def test_pit_entry_consumed_on_first_data():
    """A relay forwards exactly one Data per Interest (PIT semantics)."""
    from repro.core.interest import InterestData, InterestQuery
    from repro.core.messages import next_message_id

    net = make_net(line_positions(3))
    relay = net.devices[1]
    interest = InterestQuery(
        message_id=next_message_id(),
        sender_id=0,
        receiver_ids=None,
        spec=QuerySpec(),
        origin_id=0,
        expires_at=60.0,
        bloom=BloomFilter.for_capacity(10),
    )
    relay.interest.handle_query(interest, addressed=True)

    forwarded = []
    original = net.medium.transmit

    def spy(frame):
        if frame.kind == "interest_data":
            forwarded.append(frame)
        return original(frame)

    net.medium.transmit = spy
    for k in (1, 2):
        data = InterestData(
            message_id=next_message_id(),
            sender_id=2,
            receiver_ids=frozenset({1}),
            interest_id=interest.message_id,
            entries=(sample(k),),
        )
        relay.interest.handle_response(data, addressed=True)
        net.sim.run(until=net.sim.now + 5.0)
    relayed = [f for f in forwarded if f.sender == 1 and f.retransmission == 0]
    assert len(relayed) == 1  # second Data found no PIT entry


def test_session_collects_everything_with_many_interests():
    net = make_net(line_positions(3))
    total = 120
    for i in range(total):
        net.devices[1 + i % 2].add_metadata(sample(i))
    consumer = net.devices[0]
    session = InterestDiscoverySession(consumer, interest_timeout_s=0.5)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=120.0)
    assert session.done
    assert len(session.received) == total
    # The whole point: one-shot semantics require MANY interests.
    assert session.interests_sent > 3


def test_lingering_queries_need_far_fewer_queries_than_interests():
    """The §VIII claim, measured: PDD's lingering query count is a small
    fraction of the Interest count for the same workload."""

    def build():
        net = make_net(line_positions(4), seed=3)
        for i in range(150):
            net.devices[1 + i % 3].add_metadata(sample(i))
        return net

    net_a = build()
    pdd = DiscoverySession(net_a.devices[0])
    net_a.sim.schedule(0.0, pdd.start)
    net_a.sim.run(until=120.0)

    net_b = build()
    interest_session = InterestDiscoverySession(
        net_b.devices[0], interest_timeout_s=0.5
    )
    net_b.sim.schedule(0.0, interest_session.start)
    net_b.sim.run(until=300.0)

    assert len(pdd.received) == 150
    assert len(interest_session.received) == 150
    # One lingering query per round vs one Interest per Data message:
    # PDD needs strictly fewer queries for the same coverage.
    assert pdd.result.rounds < interest_session.interests_sent


def test_session_double_start_rejected():
    net = make_net(line_positions(2))
    session = InterestDiscoverySession(net.devices[0])
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=0.1)
    with pytest.raises(ConfigurationError):
        session.start()


def test_session_finishes_on_empty_network():
    net = make_net(line_positions(2))
    done = []
    session = InterestDiscoverySession(
        net.devices[0],
        interest_timeout_s=0.5,
        max_idle_interests=2,
        on_complete=done.append,
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=60.0)
    assert session.done
    assert done == [session]
    assert session.received == set()
    assert session.interests_sent == 2
