"""Behavioural tests for the PDR engines (CDI + recursive chunks)."""

from repro.core.messages import CdiQuery, CdiResponse, ChunkQuery, next_message_id
from repro.data.item import make_item

import sys

sys.path.insert(0, "tests")
from tests.helpers import line_positions, make_net  # noqa: E402


def make_item_4():
    return make_item("media", "video", "v", size=4 * 256 * 1024)


def spy(net, kinds):
    log = []
    original = net.medium.transmit

    def hook(frame):
        if frame.kind in kinds:
            log.append(frame)
        return original(frame)

    net.medium.transmit = hook
    return log


# ----------------------------------------------------------------------
# Phase 1: CDI
# ----------------------------------------------------------------------
def test_holder_advertises_hop_zero():
    net = make_net(line_positions(2))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[1].add_chunk(chunk)
    responses = spy(net, {"cdi_response"})
    net.devices[0].cdi.issue_query(item.descriptor)
    net.sim.run(until=5.0)
    assert responses
    pairs = dict(responses[0].payload.pairs)
    assert pairs == {0: 0, 1: 0, 2: 0, 3: 0}


def test_consumer_learns_hop_counts_over_line():
    net = make_net(line_positions(3))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    net.devices[0].cdi.issue_query(item.descriptor)
    net.sim.run(until=5.0)
    table = net.devices[0].cdi_table
    assert table.best_hop(item.descriptor, 0) == 2
    entries = table.best_entries(item.descriptor, 0)
    assert entries[0].neighbor == 1  # via the relay


def test_relay_builds_cdi_state():
    net = make_net(line_positions(3))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    net.devices[0].cdi.issue_query(item.descriptor)
    net.sim.run(until=5.0)
    relay_table = net.devices[1].cdi_table
    assert relay_table.best_hop(item.descriptor, 0) == 1


def test_partial_holders_merge_in_cdi():
    """Different chunks at different nodes: the consumer learns each."""
    net = make_net(line_positions(3))
    item = make_item_4()
    chunks = item.chunks()
    net.devices[1].add_chunk(chunks[0])
    net.devices[2].add_chunk(chunks[1])
    net.devices[0].cdi.issue_query(item.descriptor)
    net.sim.run(until=5.0)
    table = net.devices[0].cdi_table
    assert table.best_hop(item.descriptor, 0) == 1
    assert table.best_hop(item.descriptor, 1) == 2


def test_duplicate_cdi_query_ignored():
    net = make_net(line_positions(2))
    item = make_item_4()
    net.devices[1].add_chunk(item.chunks()[0])
    responses = spy(net, {"cdi_response"})
    query = net.devices[0].cdi.issue_query(item.descriptor)
    net.sim.run(until=2.0)
    net.devices[1].cdi.handle_query(query, addressed=True)
    net.sim.run(until=5.0)
    assert len(responses) == 1


def test_cdi_response_improvement_pruning():
    """A relay only forwards pairs that improve what it already sent."""
    net = make_net(line_positions(3))
    item = make_item_4()
    relay = net.devices[1]
    # A lingering CDI query from node 0 sits at the relay.
    query = CdiQuery(
        message_id=next_message_id(),
        sender_id=0,
        receiver_ids=None,
        item=item.descriptor.item_descriptor(),
        origin_id=0,
        expires_at=60.0,
    )
    relay.cdi.handle_query(query, addressed=True)
    responses = spy(net, {"cdi_response"})
    item_plain = item.descriptor.item_descriptor()
    first = CdiResponse(
        message_id=next_message_id(),
        sender_id=2,
        receiver_ids=frozenset({1}),
        item=item_plain,
        pairs=((0, 1),),
    )
    relay.cdi.handle_response(first, addressed=True)
    net.sim.run(until=2.0)
    worse = CdiResponse(
        message_id=next_message_id(),
        sender_id=2,
        receiver_ids=frozenset({1}),
        item=item_plain,
        pairs=((0, 5),),
    )
    relay.cdi.handle_response(worse, addressed=True)
    net.sim.run(until=5.0)
    forwarded = [f for f in responses if f.sender == 1]
    assert len(forwarded) == 1  # the worse pair was not forwarded
    assert dict(forwarded[0].payload.pairs)[0] == 2  # hop+1 relative to relay


# ----------------------------------------------------------------------
# Phase 2: chunks
# ----------------------------------------------------------------------
def test_request_chunks_direct_neighbor():
    net = make_net(line_positions(2))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[1].add_chunk(chunk)
    consumer = net.devices[0]
    consumer.cdi.issue_query(item.descriptor)
    net.sim.run(until=3.0)
    assignment = consumer.chunks.request_chunks(item.descriptor, {0, 1, 2, 3})
    assert assignment == {1: {0, 1, 2, 3}}
    net.sim.run(until=30.0)
    assert consumer.store.chunk_ids_of(item.descriptor) == [0, 1, 2, 3]


def test_recursive_division_two_hops():
    net = make_net(line_positions(3))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    consumer = net.devices[0]
    consumer.cdi.issue_query(item.descriptor)
    net.sim.run(until=3.0)
    queries = spy(net, {"chunk_query"})
    consumer.chunks.request_chunks(item.descriptor, {0, 1, 2, 3})
    net.sim.run(until=60.0)
    assert consumer.store.chunk_ids_of(item.descriptor) == [0, 1, 2, 3]
    # The relay divided the request onward to node 2.
    divided = [f for f in queries if f.sender == 1]
    assert divided
    assert divided[0].receivers == frozenset({2})


def test_chunks_fetched_from_nearest_copy():
    """With copies at hop 1 and hop 2, only the near one serves."""
    net = make_net(line_positions(3))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[1].add_chunk(chunk)
        net.devices[2].add_chunk(chunk)
    consumer = net.devices[0]
    consumer.cdi.issue_query(item.descriptor)
    net.sim.run(until=3.0)
    chunk_frames = spy(net, {"chunk_response"})
    consumer.chunks.request_chunks(item.descriptor, {0, 1, 2, 3})
    net.sim.run(until=60.0)
    assert consumer.store.chunk_ids_of(item.descriptor) == [0, 1, 2, 3]
    assert all(f.sender == 1 for f in chunk_frames)


def test_relay_caches_forwarded_chunks():
    net = make_net(line_positions(3))
    item = make_item_4()
    for chunk in item.chunks():
        net.devices[2].add_chunk(chunk)
    consumer = net.devices[0]
    consumer.cdi.issue_query(item.descriptor)
    net.sim.run(until=3.0)
    consumer.chunks.request_chunks(item.descriptor, {0, 1})
    net.sim.run(until=60.0)
    assert set(net.devices[1].store.chunk_ids_of(item.descriptor)) >= {0, 1}


def test_chunk_response_forwarded_once_per_query():
    net = make_net(line_positions(3))
    item = make_item_4()
    relay = net.devices[1]
    query = ChunkQuery(
        message_id=next_message_id(),
        sender_id=0,
        receiver_ids=frozenset({1}),
        item=item.descriptor.item_descriptor(),
        chunk_ids=frozenset({0}),
        origin_id=0,
        expires_at=60.0,
    )
    # Relay remembers the query but holds no chunk (division happens,
    # but towards nobody — no CDI entries).
    relay.chunks.handle_query(query, addressed=True)
    chunk_frames = spy(net, {"chunk_response"})
    from repro.core.messages import ChunkResponse

    chunk = item.chunks()[0]
    for response_id in (91_001, 91_002):
        response = ChunkResponse(
            message_id=response_id,
            sender_id=2,
            receiver_ids=frozenset({1}),
            chunk=chunk,
        )
        relay.chunks.handle_response(response, addressed=True)
        net.sim.run(until=net.sim.now + 5.0)
    forwarded = [f for f in chunk_frames if f.sender == 1]
    assert len(forwarded) == 1


def test_unreachable_chunks_absent_from_assignment():
    net = make_net(line_positions(2))
    item = make_item_4()
    consumer = net.devices[0]
    # No CDI knowledge at all.
    assignment = consumer.chunks.request_chunks(item.descriptor, {0, 1})
    assert assignment == {}
