"""Unit tests for flood scoping: hop limits and gossip forwarding."""

import pytest

from repro.bloom.bloom_filter import NullFilter
from repro.core.messages import DiscoveryQuery
from repro.data.descriptor import make_descriptor
from repro.data.predicate import QuerySpec
from repro.errors import ConfigurationError
from repro.node.config import DeviceConfig, ProtocolConfig

from tests.helpers import line_positions, make_net


def sample(i=0):
    return make_descriptor("env", "nox", time=float(i))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(max_query_hops=-1)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(flood_probability=1.5)


def test_hop_count_increments_per_forward():
    query = DiscoveryQuery(
        message_id=1, sender_id=0, receiver_ids=None, bloom=NullFilter()
    )
    assert query.hop_count == 0
    fwd = query.rewritten(sender_id=1, receiver_ids=None)
    assert fwd.hop_count == 1
    assert fwd.rewritten(sender_id=2, receiver_ids=None).hop_count == 2


def test_hop_limit_bounds_discovery_radius():
    """With max_query_hops=1 the query reaches 2 hops of nodes: the
    consumer's transmission (hop 0->1) plus one forward (hop 1->2)."""
    config = DeviceConfig(protocol=ProtocolConfig(max_query_hops=1))
    net = make_net(line_positions(5), device_config=config)
    near, far = sample(1), sample(2)
    net.devices[2].add_metadata(near)  # 2 hops away: reachable
    net.devices[4].add_metadata(far)  # 4 hops away: out of scope
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=20.0)
    assert consumer.store.has_metadata(near)
    assert not consumer.store.has_metadata(far)


def test_unlimited_hops_reaches_everything():
    net = make_net(line_positions(5))
    far = sample(2)
    net.devices[4].add_metadata(far)
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=20.0)
    assert consumer.store.has_metadata(far)


def test_hop_limit_applies_to_cdi_queries():
    from repro.data.item import make_item

    config = DeviceConfig(protocol=ProtocolConfig(max_query_hops=1))
    net = make_net(line_positions(5), device_config=config)
    item = make_item("media", "video", "v", size=256 * 1024)
    net.devices[4].add_chunk(item.chunks()[0])
    consumer = net.devices[0]
    consumer.cdi.issue_query(item.descriptor)
    net.sim.run(until=20.0)
    assert consumer.cdi_table.best_hop(item.descriptor, 0) is None


def test_gossip_probability_zero_stops_at_first_hop():
    config = DeviceConfig(protocol=ProtocolConfig(flood_probability=0.0))
    net = make_net(line_positions(4), device_config=config)
    net.devices[1].add_metadata(sample(1))
    net.devices[3].add_metadata(sample(3))
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=20.0)
    # Direct neighbors still answer (they received the consumer's own
    # transmission); nothing beyond ever saw the query.
    assert consumer.store.has_metadata(sample(1))
    assert not consumer.store.has_metadata(sample(3))


def test_gossip_probability_one_is_full_flood():
    config = DeviceConfig(protocol=ProtocolConfig(flood_probability=1.0))
    net = make_net(line_positions(4), device_config=config)
    net.devices[3].add_metadata(sample(3))
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=20.0)
    assert consumer.store.has_metadata(sample(3))


def test_may_forward_flood_is_probabilistic():
    config = DeviceConfig(protocol=ProtocolConfig(flood_probability=0.5))
    net = make_net(line_positions(1), device_config=config)
    device = net.devices[0]
    draws = [device.may_forward_flood(0) for _ in range(400)]
    forwarded = sum(draws)
    assert 100 < forwarded < 300
