"""Tests for the subscription extension (standing lingering queries)."""

import pytest

from repro.core.subscription import SubscriptionSession
from repro.data.descriptor import make_descriptor
from repro.data.predicate import QuerySpec, eq
from repro.errors import ConfigurationError

from tests.helpers import line_positions, make_net


def sample(i=0, data_type="nox"):
    return make_descriptor("env", data_type, time=float(i))


def test_initial_data_delivered():
    net = make_net(line_positions(2))
    net.devices[1].add_metadata(sample(0))
    delivered = []
    session = SubscriptionSession(net.devices[0], on_entry=delivered.append)
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=10.0)
    assert sample(0) in delivered


def test_newly_produced_data_pushed_without_new_query():
    """Data produced AFTER the subscription arrives via the standing
    lingering query — the §IV growing-data scenario."""
    net = make_net(line_positions(3))
    delivered = []
    session = SubscriptionSession(net.devices[0], on_entry=delivered.append)
    net.sim.schedule(0.0, session.start)
    # Produce at the far node at t=5 (well after the query flooded).
    net.sim.schedule(5.0, lambda: net.devices[2].add_metadata(sample(1)))
    queries = []
    original = net.medium.transmit

    def spy(frame):
        if frame.kind == "query" and net.sim.now > 1.0:
            queries.append(frame)
        return original(frame)

    net.medium.transmit = spy
    net.sim.run(until=20.0)
    assert sample(1) in delivered
    # No re-query was needed within the lease (only the initial flood).
    assert queries == []


def test_spec_filters_pushes():
    net = make_net(line_positions(2))
    delivered = []
    session = SubscriptionSession(
        net.devices[0],
        spec=QuerySpec([eq("data_type", "nox")]),
        on_entry=delivered.append,
    )
    net.sim.schedule(0.0, session.start)
    net.sim.schedule(2.0, lambda: net.devices[1].add_metadata(sample(1, "nox")))
    net.sim.schedule(2.0, lambda: net.devices[1].add_metadata(sample(2, "pm25")))
    net.sim.run(until=20.0)
    assert sample(1, "nox") in delivered
    assert sample(2, "pm25") not in delivered


def test_each_entry_delivered_once():
    net = make_net(line_positions(2))
    delivered = []
    session = SubscriptionSession(net.devices[0], on_entry=delivered.append)
    net.sim.schedule(0.0, session.start)
    net.sim.schedule(2.0, lambda: net.devices[1].add_metadata(sample(1)))
    net.sim.schedule(4.0, lambda: net.devices[1].add_metadata(sample(1)))
    net.sim.run(until=20.0)
    assert delivered.count(sample(1)) == 1


def test_renewal_keeps_subscription_alive_past_lease():
    net = make_net(line_positions(3))
    delivered = []
    session = SubscriptionSession(
        net.devices[0], on_entry=delivered.append, lease_s=5.0
    )
    net.sim.schedule(0.0, session.start)
    # Produced long after the first lease would have expired.
    net.sim.schedule(18.0, lambda: net.devices[2].add_metadata(sample(9)))
    net.sim.run(until=40.0)
    assert session.renewals >= 3
    assert sample(9) in delivered


def test_stop_ends_delivery():
    net = make_net(line_positions(2))
    delivered = []
    session = SubscriptionSession(
        net.devices[0], on_entry=delivered.append, lease_s=5.0
    )
    net.sim.schedule(0.0, session.start)
    net.sim.schedule(1.0, session.stop)
    # Produced after stop AND after the lingering query expired.
    net.sim.schedule(10.0, lambda: net.devices[1].add_metadata(sample(3)))
    net.sim.run(until=30.0)
    assert sample(3) not in delivered
    assert not session.active


def test_double_start_rejected():
    net = make_net(line_positions(2))
    session = SubscriptionSession(net.devices[0])
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=1.0)
    with pytest.raises(ConfigurationError):
        session.start()


def test_bad_lease_rejected():
    net = make_net(line_positions(2))
    with pytest.raises(ConfigurationError):
        SubscriptionSession(net.devices[0], lease_s=0)


def test_two_subscribers_share_pushes():
    """Mixedcast applies to pushes too: one producer, two subscribers."""
    net = make_net({0: (0.0, 0.0), 1: (30.0, 0.0), 2: (30.0, 30.0)})
    got_a, got_b = [], []
    sa = SubscriptionSession(net.devices[0], on_entry=got_a.append)
    sb = SubscriptionSession(net.devices[2], on_entry=got_b.append)
    net.sim.schedule(0.0, sa.start)
    net.sim.schedule(0.0, sb.start)
    net.sim.schedule(3.0, lambda: net.devices[1].add_metadata(sample(5)))
    net.sim.run(until=20.0)
    assert sample(5) in got_a
    assert sample(5) in got_b
