"""Unit tests for the lingering query table and RR set."""

from repro.core.lqt import LingeringEntry, LingeringQueryTable, RecentResponses


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def entry(expires_at=100.0, upstream=1):
    return LingeringEntry(query="q", upstream=upstream, expires_at=expires_at)


def test_insert_and_exists():
    clock = FakeClock()
    lqt = LingeringQueryTable(clock)
    lqt.insert(entry(), query_id=1)
    assert lqt.exists(1)
    assert not lqt.exists(2)


def test_expiration_removes_entry():
    """A lingering query stays until its expiration, then is removed."""
    clock = FakeClock()
    lqt = LingeringQueryTable(clock)
    lqt.insert(entry(expires_at=10.0), query_id=1)
    clock.now = 9.9
    assert lqt.exists(1)
    clock.now = 10.0
    assert not lqt.exists(1)
    assert lqt.get(1) is None


def test_expired_id_can_be_reinserted():
    clock = FakeClock()
    lqt = LingeringQueryTable(clock)
    lqt.insert(entry(expires_at=10.0), query_id=1)
    clock.now = 20.0
    assert not lqt.exists(1)
    lqt.insert(entry(expires_at=30.0), query_id=1)
    assert lqt.exists(1)


def test_live_entries_excludes_expired():
    clock = FakeClock()
    lqt = LingeringQueryTable(clock)
    lqt.insert(entry(expires_at=10.0, upstream=1), query_id=1)
    lqt.insert(entry(expires_at=50.0, upstream=2), query_id=2)
    clock.now = 20.0
    live = list(lqt.live_entries())
    assert len(live) == 1
    assert live[0].upstream == 2


def test_len_counts_live_only():
    clock = FakeClock()
    lqt = LingeringQueryTable(clock)
    lqt.insert(entry(expires_at=10.0), query_id=1)
    lqt.insert(entry(expires_at=50.0), query_id=2)
    assert len(lqt) == 2
    clock.now = 30.0
    assert len(lqt) == 1


def test_remove():
    clock = FakeClock()
    lqt = LingeringQueryTable(clock)
    lqt.insert(entry(), query_id=1)
    lqt.remove(1)
    assert not lqt.exists(1)
    lqt.remove(1)  # idempotent


def test_entry_state_is_mutable():
    clock = FakeClock()
    lqt = LingeringQueryTable(clock)
    lqt.insert(entry(), query_id=1)
    stored = lqt.get(1)
    stored.forwarded_keys.add(7)
    stored.best_hop_sent[3] = 2
    again = lqt.get(1)
    assert 7 in again.forwarded_keys
    assert again.best_hop_sent[3] == 2


# ----------------------------------------------------------------------
# RecentResponses (RR Lookup)
# ----------------------------------------------------------------------
def test_rr_first_sighting_not_seen():
    rr = RecentResponses()
    assert rr.seen_before(1) is False
    assert rr.seen_before(1) is True


def test_rr_contains():
    rr = RecentResponses()
    rr.seen_before(5)
    assert 5 in rr
    assert 6 not in rr


def test_rr_history_bounded():
    rr = RecentResponses(history_limit=10)
    for i in range(100):
        rr.seen_before(i)
    assert len(rr._seen) <= 11
    # The most recent ids are retained.
    assert 99 in rr
