"""Unit tests for the publish hook (on_local_data)."""

from repro.bloom.bloom_filter import BloomFilter, NullFilter
from repro.core.messages import DiscoveryQuery, next_message_id
from repro.data.descriptor import make_descriptor
from repro.data.predicate import QuerySpec, eq

from tests.helpers import line_positions, make_net


def sample(i=0, data_type="nox"):
    return make_descriptor("env", data_type, time=float(i))


def lingering(node, spec=QuerySpec(), upstream=0, bloom=None, want_payload=False):
    query = DiscoveryQuery(
        message_id=next_message_id(),
        sender_id=upstream,
        receiver_ids=None,
        spec=spec,
        origin_id=upstream,
        expires_at=1000.0,
        bloom=bloom if bloom is not None else NullFilter(),
        want_payload=want_payload,
    )
    node.discovery.handle_query(query, addressed=True)
    return query


def spy_responses(net):
    log = []
    original = net.medium.transmit

    def hook(frame):
        if frame.kind == "response":
            log.append(frame)
        return original(frame)

    net.medium.transmit = hook
    return log


def test_push_goes_to_matching_lingering_query():
    net = make_net(line_positions(2))
    lingering(net.devices[1], upstream=0)
    responses = spy_responses(net)
    net.devices[1].add_metadata(sample(1))
    net.sim.run(until=5.0)
    pushed = [f for f in responses if f.sender == 1]
    assert len(pushed) == 1
    assert sample(1) in pushed[0].payload.entries
    assert pushed[0].receivers == frozenset({0})


def test_push_respects_spec():
    net = make_net(line_positions(2))
    lingering(net.devices[1], spec=QuerySpec([eq("data_type", "nox")]), upstream=0)
    responses = spy_responses(net)
    net.devices[1].add_metadata(sample(1, "pm25"))
    net.sim.run(until=5.0)
    assert not [f for f in responses if f.sender == 1]


def test_push_suppressed_by_bloom():
    net = make_net(line_positions(2))
    bloom = BloomFilter.for_capacity(10)
    bloom.insert(sample(1).stable_key())
    lingering(net.devices[1], upstream=0, bloom=bloom)
    responses = spy_responses(net)
    net.devices[1].add_metadata(sample(1))
    net.sim.run(until=5.0)
    assert not [f for f in responses if f.sender == 1]


def test_push_once_per_entry():
    net = make_net(line_positions(2))
    lingering(net.devices[1], upstream=0)
    responses = spy_responses(net)
    net.devices[1].add_metadata(sample(1))
    net.sim.run(until=5.0)
    net.devices[1].add_metadata(sample(1))  # duplicate production
    net.sim.run(until=10.0)
    assert len([f for f in responses if f.sender == 1]) == 1


def test_no_push_for_payload_queries():
    """Small-data (want_payload) queries are answered with payloads on
    request, not pushed metadata."""
    net = make_net(line_positions(2))
    lingering(net.devices[1], upstream=0, want_payload=True)
    responses = spy_responses(net)
    net.devices[1].add_metadata(sample(1))
    net.sim.run(until=5.0)
    assert not [f for f in responses if f.sender == 1]


def test_no_push_to_own_origin_query():
    net = make_net(line_positions(2))
    consumer = net.devices[0]
    consumer.discovery.issue_query(QuerySpec(), NullFilter())
    net.sim.run(until=2.0)
    responses = spy_responses(net)
    consumer.add_metadata(sample(5))  # own production, own query
    net.sim.run(until=5.0)
    assert not [f for f in responses if f.sender == 0]


def test_expired_lingering_query_not_pushed():
    net = make_net(line_positions(2))
    query = DiscoveryQuery(
        message_id=next_message_id(),
        sender_id=0,
        receiver_ids=None,
        spec=QuerySpec(),
        origin_id=0,
        expires_at=1.0,
        bloom=NullFilter(),
    )
    net.devices[1].discovery.handle_query(query, addressed=True)
    net.sim.run(until=2.0)  # lingering entry now expired
    responses = spy_responses(net)
    net.devices[1].add_metadata(sample(1))
    net.sim.run(until=5.0)
    assert not [f for f in responses if f.sender == 1]
