"""Unit tests for the min-max GAP assignment heuristic (§IV-B)."""

import random

from repro.core.assignment import assign_chunks, max_load


def test_empty_options():
    assert assign_chunks({}) == {}


def test_chunks_without_options_skipped():
    assignment = assign_chunks({0: [], 1: [(5, 1)]})
    assert assignment == {5: {1}}


def test_every_chunk_assigned_exactly_once():
    options = {
        0: [(1, 1), (2, 2)],
        1: [(1, 1)],
        2: [(2, 1), (3, 1)],
        3: [(3, 2), (1, 1)],
    }
    assignment = assign_chunks(options)
    assigned = [c for chunks in assignment.values() for c in chunks]
    assert sorted(assigned) == [0, 1, 2, 3]


def test_assignment_respects_options():
    options = {0: [(1, 1)], 1: [(2, 1)], 2: [(1, 2), (2, 1)]}
    assignment = assign_chunks(options)
    for neighbor, chunks in assignment.items():
        for chunk in chunks:
            assert neighbor in {n for n, _ in options[chunk]}


def test_single_neighbor_gets_everything():
    options = {c: [(7, 1)] for c in range(5)}
    assert assign_chunks(options) == {7: set(range(5))}


def test_balances_across_equal_neighbors():
    """10 chunks, both neighbors at hop 1 → a 5/5 split minimises max load."""
    options = {c: [(1, 1), (2, 1)] for c in range(10)}
    assignment = assign_chunks(options)
    sizes = sorted(len(chunks) for chunks in assignment.values())
    assert sizes == [5, 5]


def test_moves_to_next_smallest_hop_when_overloaded():
    """The heuristic may move a chunk to a (possibly next-)smallest hop
    neighbor to lower the maximum load."""
    # All 4 chunks nearest via neighbor 1 (hop 1); neighbor 2 offers hop 2.
    options = {c: [(1, 1), (2, 2)] for c in range(4)}
    assignment = assign_chunks(options)
    load = max_load(options, assignment)
    # All-on-1 gives max load 4; moving one chunk to 2 gives max(3, 2)=3,
    # moving two gives max(2, 4)=4 — so the optimum here is 3.
    assert load == 3


def test_max_load_helper():
    options = {0: [(1, 2)], 1: [(1, 3)]}
    assert max_load(options, {1: {0, 1}}) == 5
    assert max_load(options, {}) == 0


def test_deterministic_without_rng():
    options = {c: [(1, 1), (2, 1), (3, 1)] for c in range(9)}
    a = assign_chunks(options)
    b = assign_chunks(options)
    assert a == b


def test_rng_tiebreaks_are_valid():
    rng = random.Random(3)
    options = {c: [(1, 1), (2, 1)] for c in range(8)}
    assignment = assign_chunks(options, rng)
    assigned = sorted(c for chunks in assignment.values() for c in chunks)
    assert assigned == list(range(8))


def test_heuristic_not_worse_than_greedy_on_random_instances():
    """The improvement loop must never increase the maximum load."""
    rng = random.Random(11)
    for _ in range(25):
        n_neighbors = rng.randint(1, 6)
        n_chunks = rng.randint(1, 15)
        options = {}
        for c in range(n_chunks):
            neighbors = rng.sample(range(n_neighbors), rng.randint(1, n_neighbors))
            options[c] = [(n, rng.randint(1, 4)) for n in neighbors]
        assignment = assign_chunks(options)
        # Greedy baseline: everyone at min hop, no balancing.
        greedy = {}
        for c, opts in options.items():
            best = min(opts, key=lambda p: (p[1], p[0]))
            greedy.setdefault(best[0], set()).add(c)
        assert max_load(options, assignment) <= max_load(options, greedy)
