"""First-divergence bisection: spec parsing, O(log) search, localization.

The acceptance-critical case is the end-to-end drill: inject a single
perturbed RNG draw (``session-jitter:0`` flips the first session-launch
jitter draw, which feeds a scheduled event *time* directly) and the
engine must localize the divergence to the exact first divergent event —
``(time, seq, handler)`` — within ``1 + ceil(log2(checkpoints))``
checkpoint comparisons.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.diverge import (
    ScenarioSpec,
    SideSpec,
    bisect_checkpoints,
    diverge,
    expected_comparisons,
    first_divergent_event,
    pair_runs,
    suggest_command,
)
from repro.obs.fingerprint import FingerprintRun


# ----------------------------------------------------------------------
# Side-spec parsing
# ----------------------------------------------------------------------
def test_side_spec_parses_run_options():
    spec = SideSpec.parse("a", "scheduler=calendar,jobs=4,profile=on")
    assert spec.scheduler == "calendar"
    assert spec.jobs == 4
    assert spec.profile is True
    assert spec.perturb is None
    assert "scheduler=calendar" in spec.describe()


def test_side_spec_empty_means_defaults():
    spec = SideSpec.parse("a", "")
    assert spec.describe() == "scheduler=default,jobs=1"


def test_side_spec_parses_file():
    spec = SideSpec.parse("b", "file=fp_base.jsonl")
    assert spec.file == "fp_base.jsonl"
    assert spec.describe() == "file=fp_base.jsonl"


@pytest.mark.parametrize(
    "raw",
    [
        "bogus=1",
        "jobs=none",
        "jobs=0",
        "scheduler",
        "file=x.jsonl,scheduler=heap",  # recorded stream + run options
    ],
)
def test_side_spec_rejects_malformed(raw):
    with pytest.raises(ConfigurationError):
        SideSpec.parse("a", raw)


# ----------------------------------------------------------------------
# Bisection over synthetic checkpoint streams
# ----------------------------------------------------------------------
def _synthetic_run(digests, every=10):
    """A FingerprintRun whose checkpoint i*every carries digests[i]."""
    run = FingerprintRun(scope=("test", 1))
    for index, digest in enumerate(digests, start=1):
        run.checkpoints.append(
            {
                "fp": "ckpt",
                "run": 1,
                "i": index * every,
                "digest": digest,
                "t": float(index),
                "seq": index,
                "h": "handler",
            }
        )
    return run


def test_bisect_identical_streams_is_one_comparison():
    run_a = _synthetic_run(["d1", "d2", "d3", "d4"])
    run_b = _synthetic_run(["d1", "d2", "d3", "d4"])
    result = bisect_checkpoints(run_a, run_b)
    assert result.kind == "none"
    assert result.comparisons == 1  # the last common checkpoint settles it


def test_bisect_finds_first_divergent_checkpoint_in_log_comparisons():
    n = 64
    for first_bad in (1, 7, 31, 63):
        clean = [f"d{i}" for i in range(n)]
        dirty = clean[:first_bad] + [f"x{i}" for i in range(first_bad, n)]
        result = bisect_checkpoints(
            _synthetic_run(clean), _synthetic_run(dirty)
        )
        assert result.kind == "checkpoint"
        assert result.first_divergent == (first_bad + 1) * 10
        assert result.last_common == first_bad * 10
        assert result.comparisons <= expected_comparisons(n)
        assert result.checkpoint_a["digest"] == f"d{first_bad}"
        assert result.checkpoint_b["digest"] == f"x{first_bad}"


def test_bisect_tail_divergence():
    run_a = _synthetic_run(["d1", "d2"])
    run_b = _synthetic_run(["d1", "d2", "d3"])
    result = bisect_checkpoints(run_a, run_b)
    assert result.kind == "tail"
    assert result.last_common == 20


def test_expected_comparisons_is_log2():
    assert expected_comparisons(1) == 1
    assert expected_comparisons(2) == 2
    assert expected_comparisons(64) == 1 + math.ceil(math.log2(64)) == 7


# ----------------------------------------------------------------------
# Run pairing
# ----------------------------------------------------------------------
class _Load:
    def __init__(self, runs):
        self.runs = runs


def test_pair_runs_matches_by_final_digest_across_order():
    a1 = _synthetic_run(["p", "q"])
    a2 = _synthetic_run(["r", "s"])
    b_load = _Load([_synthetic_run(["r", "s"]), _synthetic_run(["p", "q"])])
    pairs = pair_runs(_Load([a1, a2]), b_load)
    assert [(x is a1, y.final_digest) for x, y in pairs] == [
        (True, "q"),
        (False, "s"),
    ]


def test_pair_runs_pairs_divergent_by_longest_prefix():
    a = _synthetic_run(["p", "q", "z"])  # diverges from both b runs
    b_close = _synthetic_run(["p", "q", "y"])  # agrees through 2 ckpts
    b_far = _synthetic_run(["w", "x", "y2"])  # agrees through 0
    pairs = pair_runs(_Load([a]), _Load([b_far, b_close]))
    matched = next(pair for pair in pairs if pair[0] is a)
    assert matched[1] is b_close
    # The unmatched leftover pairs with None.
    assert (None, b_far) in pairs


# ----------------------------------------------------------------------
# Event-level localization over synthetic detail records
# ----------------------------------------------------------------------
def _event(i, t, digest, **over):
    rec = {
        "fp": "event",
        "i": i,
        "t": t,
        "prio": 0,
        "seq": i,
        "h": "mod.handler",
        "args": [],
        "digest": digest,
    }
    rec.update(over)
    return rec


def test_first_divergent_event_names_fields_and_context():
    events_a = [_event(i, 0.1 * i, f"d{i}") for i in range(1, 8)]
    events_b = [
        _event(i, 0.1 * i, f"d{i}") if i < 5 else _event(i, 9.9, f"x{i}")
        for i in range(1, 8)
    ]
    found = first_divergent_event(events_a, events_b, (1, 7), context=2)
    assert found is not None
    assert found.index == 5
    assert found.fields == ["t"]
    assert [rec["i"] for rec in found.context_a] == [3, 4]


def test_first_divergent_event_digest_catches_payload_only_changes():
    # Identity fields equal, payload (and hence chained digest) differs.
    events_a = [_event(1, 0.1, "d1"), _event(2, 0.2, "d2", args=["'x'"])]
    events_b = [_event(1, 0.1, "d1"), _event(2, 0.2, "e2", args=["'y'"])]
    found = first_divergent_event(events_a, events_b, (1, 2), context=1)
    assert found.index == 2
    assert found.fields == ["args"]


def test_first_divergent_event_none_when_equal():
    events = [_event(i, 0.1 * i, f"d{i}") for i in range(1, 5)]
    assert first_divergent_event(events, events, (1, 4), context=2) is None


# ----------------------------------------------------------------------
# End-to-end: clean parity and injected-draw localization
# ----------------------------------------------------------------------
_SMALL = ScenarioSpec(
    seeds=(1,), rows=4, cols=4, metadata_count=120, max_rounds=2,
    sim_cap_s=120.0,
)


def test_diverge_clean_when_sides_agree(tmp_path):
    report = diverge(
        SideSpec.parse("a", ""),
        SideSpec.parse("b", ""),
        scenario=_SMALL,
        checkpoint_every=256,
        workdir=str(tmp_path),
    )
    assert not report.diverged
    assert report.clean_pairs == 1
    assert "no divergence" in report.render()


def test_diverge_localizes_injected_draw_flip(tmp_path):
    report = diverge(
        SideSpec.parse("a", ""),
        SideSpec.parse("b", "perturb=session-jitter:0"),
        scenario=_SMALL,
        checkpoint_every=256,
        workdir=str(tmp_path),
    )
    assert report.diverged
    div = report.divergence
    # O(log) bound: never more than 1 + ceil(log2(#checkpoints)).  The
    # 4x4 scenario fires ~1.6k events, i.e. ~7 checkpoints at cadence 256.
    assert div.comparisons <= expected_comparisons(math.ceil(2000 / 256))
    # The flipped draw feeds the session-launch delay, so the first
    # divergent event is the launch callback with only its *time* skewed.
    event = report.event
    assert event is not None
    assert event.fields == ["t"]
    assert "launch" in event.event_a["h"]
    assert event.event_a["seq"] == event.event_b["seq"]
    assert event.event_a["t"] != event.event_b["t"]
    # The draw ledger names the culprit stream: counts match everywhere
    # (one flip, no consumption skew), values differ on session-jitter.
    assert report.ledger_skews == []
    assert report.stream_skews == ["session-jitter"]
    rendered = report.render()
    assert "first divergent event" in rendered
    assert "session-jitter" in rendered
    json_doc = report.to_json()
    assert json_doc["diverged"] is True
    assert json_doc["event"]["fields"] == ["t"]


def test_diverge_against_recorded_file(tmp_path):
    # Record side A once, then compare a perturbed execution against the
    # *file* — the "baseline from another git revision" workflow.
    baseline = diverge(
        SideSpec.parse("a", ""),
        SideSpec.parse("b", ""),
        scenario=_SMALL,
        checkpoint_every=256,
        workdir=str(tmp_path),
    )
    assert not baseline.diverged
    recorded = str(tmp_path / "side_a.jsonl")
    report = diverge(
        SideSpec.parse("a", f"file={recorded}"),
        SideSpec.parse("b", "perturb=session-jitter:0"),
        scenario=_SMALL,
        checkpoint_every=256,
        workdir=str(tmp_path / "vs_file"),
    )
    assert report.diverged
    assert report.divergence.kind == "checkpoint"


def test_suggest_command_is_ready_to_paste():
    command = suggest_command("scheduler=heap", "scheduler=calendar", _SMALL)
    assert command.startswith("python -m repro diverge")
    assert "--a 'scheduler=heap'" in command
    assert "--rows 4 --cols 4" in command


def test_diverge_cli_rejects_bad_spec():
    from repro.divergecli import main

    assert main(["--a", "bogus=1", "--b", ""]) == 2
