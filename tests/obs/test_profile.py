"""Unit tests for the run profiler."""

from repro.obs.profile import RunProfiler, RunRecord, active_profiler
from repro.sim.simulator import Simulator


def test_no_profiler_active_by_default():
    assert active_profiler() is None


def test_activate_scopes_and_restores():
    outer = RunProfiler()
    inner = RunProfiler()
    with outer.activate():
        assert active_profiler() is outer
        with inner.activate():
            assert active_profiler() is inner
        assert active_profiler() is outer
    assert active_profiler() is None


def test_simulator_run_records_profile():
    profiler = RunProfiler()
    with profiler.activate():
        sim = Simulator()
        for delay in (0.1, 0.2, 0.3):
            sim.schedule(delay, lambda: None)
        with profiler.label("trial"):
            sim.run()
    assert len(profiler.records) == 1
    record = profiler.records[0]
    assert record.label == "trial"
    assert record.events == 3
    assert record.sim_time_s == 0.3
    assert record.peak_queue_depth >= 1
    assert record.wall_s >= 0.0


def test_labels_nest():
    profiler = RunProfiler()
    with profiler.activate(), profiler.label("fig4"), profiler.label("seed 1"):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run()
    assert profiler.records[0].label == "fig4 / seed 1"


def test_summary_and_render():
    profiler = RunProfiler()
    assert "no simulator runs" in profiler.render()
    profiler.record_run(wall_s=2.0, events=100, sim_time_s=5.0, peak_queue_depth=7)
    profiler.record_run(wall_s=1.0, events=50, sim_time_s=3.0, peak_queue_depth=9)
    totals = profiler.summary()
    assert totals["runs"] == 2
    assert totals["wall_s"] == 3.0
    assert totals["events"] == 150
    assert totals["events_per_s"] == 50.0
    assert totals["peak_queue_depth"] == 9
    text = profiler.render()
    assert "TOTAL" in text
    assert "ev/s" in text


def test_events_per_s_handles_zero_wall():
    record = RunRecord(
        label="x", wall_s=0.0, events=10, sim_time_s=1.0, peak_queue_depth=0
    )
    assert record.events_per_s == 0.0


def test_extend_folds_foreign_records():
    """Worker processes return their records by value; the parent folds
    them into its own profiler with extend()."""
    worker = RunProfiler()
    with worker.activate():
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        with worker.label("worker trial"):
            sim.run()
    parent = RunProfiler()
    with parent.activate():
        pass
    parent.extend(worker.records)
    assert [r.label for r in parent.records] == ["worker trial"]
    assert parent.records[0].events == 1
