"""Event-stream fingerprinting: canonical encoding, chaining, sharding.

The acceptance-critical properties live here: (1) the canonical encoding
never leaks object identity, so two processes fingerprinting the same
logical run agree; (2) fingerprinting is zero-perturbation — event order
and results are untouched; (3) a ``jobs=2`` campaign's merged shard
streams reconstruct the same combined digest as the serial campaign,
including when a killed worker leaves a truncated final line.
"""

import json
import multiprocessing
import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import TrialMetrics
from repro.experiments.runner import run_trials
from repro.obs import fingerprint as fp_mod
from repro.obs.fingerprint import (
    DEFAULT_CHECKPOINT_EVERY,
    FingerprintConfig,
    canon_value,
    configured_fingerprint,
    fingerprinting,
    handler_key,
    load_fingerprints,
)
from repro.sim.simulator import Simulator


# ----------------------------------------------------------------------
# Canonical encoding
# ----------------------------------------------------------------------
def test_canon_value_scalars_are_reprs():
    assert canon_value(None) == "None"
    assert canon_value(True) == "True"
    assert canon_value(42) == "42"
    assert canon_value(0.25) == "0.25"
    assert canon_value("hi") == "'hi'"


def test_canon_value_containers_recurse_deterministically():
    assert canon_value([1, "a"]) == "[1,'a']"
    assert canon_value((1, "a")) == "[1,'a']"
    assert canon_value({"b": 2, "a": 1}) == "{'a':1,'b':2}"
    assert canon_value(frozenset({3, 1, 2})) == "{1,2,3}"


def test_canon_value_bytes_by_length_and_crc():
    one = canon_value(b"abc")
    assert one.startswith("bytes[3]#")
    assert canon_value(b"abd") != one


def test_canon_value_objects_contribute_class_not_identity():
    class Payload:
        pass

    # Two distinct instances (different memory addresses) encode equal,
    # by class qualname only.
    encoded = canon_value(Payload())
    assert encoded == canon_value(Payload())
    assert encoded.endswith(".Payload>")
    assert hex(id(Payload())) not in encoded


def test_canon_value_honors_fingerprint_method():
    class Keyed:
        def __init__(self, key):
            self.key = key

        def fingerprint(self):
            return self.key

    assert canon_value(Keyed(9)).endswith(".Keyed:9>")
    assert canon_value(Keyed(9)) != canon_value(Keyed(10))


def test_handler_key_unwraps_bound_methods():
    class Widget:
        def poke(self):
            pass

    key = handler_key(Widget().poke)
    assert key.endswith("Widget.poke")
    # Two instances' bound methods share one handler identity.
    assert key == handler_key(Widget().poke)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_config_validates_knobs():
    with pytest.raises(ConfigurationError):
        FingerprintConfig(checkpoint_every=0)
    with pytest.raises(ConfigurationError):
        FingerprintConfig(detail=(0, 5))
    with pytest.raises(ConfigurationError):
        FingerprintConfig(detail=(7, 3))


def test_fingerprinting_context_scopes_config():
    assert configured_fingerprint() is None
    with fingerprinting(checkpoint_every=32) as config:
        assert configured_fingerprint() is config
    assert configured_fingerprint() is None


def test_env_fingerprint_parses_and_caches(monkeypatch, tmp_path):
    monkeypatch.setattr(fp_mod, "_ENV_FINGERPRINT", None)
    monkeypatch.setenv("REPRO_FINGERPRINT", str(tmp_path / "fp.jsonl"))
    monkeypatch.setenv("REPRO_FINGERPRINT_EVERY", "64")
    monkeypatch.setenv("REPRO_FINGERPRINT_DETAIL", "10:20")
    config = configured_fingerprint()
    assert config is not None
    assert config.checkpoint_every == 64
    assert config.detail == (10, 20)
    assert configured_fingerprint() is config  # same env -> cached object


@pytest.mark.parametrize(
    "var, value",
    [
        ("REPRO_FINGERPRINT_EVERY", "0"),
        ("REPRO_FINGERPRINT_EVERY", "dense"),
        ("REPRO_FINGERPRINT_DETAIL", "5"),
        ("REPRO_FINGERPRINT_DETAIL", "9:2"),
    ],
)
def test_env_fingerprint_rejects_bad_knobs(monkeypatch, tmp_path, var, value):
    monkeypatch.setattr(fp_mod, "_ENV_FINGERPRINT", None)
    monkeypatch.setenv("REPRO_FINGERPRINT", str(tmp_path / "fp.jsonl"))
    monkeypatch.setenv(var, value)
    with pytest.raises(ConfigurationError):
        configured_fingerprint()


def test_reshard_renames_path(tmp_path):
    config = FingerprintConfig(path=str(tmp_path / "fp.jsonl"))
    config.reshard(2)
    assert config.path == str(tmp_path / "fp.2.jsonl")


# ----------------------------------------------------------------------
# Simulator integration (memory mode)
# ----------------------------------------------------------------------
def _tiny_sim_run(seed, events=40):
    """A deterministic toy workload: a chain of rng-timed hops."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []

    def hop(depth):
        fired.append((sim.now, depth))
        if depth < events - 1:
            sim.schedule(sim.now + rng.random(), hop, depth + 1)

    sim.schedule(0.0, hop, 0)
    sim.run()
    return fired


def _fingerprint_digest(seed, every=16):
    with fingerprinting(checkpoint_every=every) as config:
        _tiny_sim_run(seed)
        stream = config.streams[-1]
        return stream.digest, list(stream.records)


def test_same_run_same_digest_across_invocations():
    digest_a, _ = _fingerprint_digest(1)
    digest_b, _ = _fingerprint_digest(1)
    assert digest_a == digest_b


def test_different_runs_different_digests():
    assert _fingerprint_digest(1)[0] != _fingerprint_digest(2)[0]


def test_checkpoint_cadence_and_closing_checkpoint():
    _, records = _fingerprint_digest(1, every=16)
    assert records[0]["fp"] == "meta"
    assert records[0]["every"] == 16
    checkpoints = [rec for rec in records if rec["fp"] == "ckpt"]
    # 40 events at cadence 16: checkpoints at 16, 32, closing at 40.
    assert [rec["i"] for rec in checkpoints] == [16, 32, 40]
    for rec in checkpoints:
        assert set(rec) >= {"run", "i", "digest", "t", "seq", "h"}
    # Chained digests: successive checkpoints must differ.
    digests = [rec["digest"] for rec in checkpoints]
    assert len(set(digests)) == len(digests)


def test_detail_window_emits_per_event_records():
    with fingerprinting(checkpoint_every=16, detail=(3, 5)) as config:
        _tiny_sim_run(1)
        records = config.streams[-1].records
    events = [rec for rec in records if rec["fp"] == "event"]
    assert [rec["i"] for rec in events] == [3, 4, 5]
    for rec in events:
        assert set(rec) >= {"t", "prio", "seq", "h", "args", "digest"}
        assert "hop" in rec["h"]


def test_fingerprinting_does_not_perturb_the_run():
    plain = _tiny_sim_run(3)
    with fingerprinting(checkpoint_every=8):
        fingerprinted = _tiny_sim_run(3)
    assert fingerprinted == plain


def test_disabled_fingerprint_keeps_simulator_clean():
    sim = Simulator()
    sim.schedule(0.0, lambda: None)
    sim.run()
    assert sim._fingerprint is None


# ----------------------------------------------------------------------
# File mode + loading
# ----------------------------------------------------------------------
def test_file_mode_streams_and_loads(tmp_path):
    path = tmp_path / "fp.jsonl"
    with fingerprinting(path=str(path), checkpoint_every=16):
        _tiny_sim_run(1)
    first = json.loads(path.read_text().splitlines()[0])
    assert "provenance" in first and "repro_version" in first
    # Fingerprint files record their own configuration in the header.
    assert first["fingerprint"]["checkpoint_every"] == 16
    load = load_fingerprints(str(path))
    assert len(load.runs) == 1
    run = load.runs[0]
    assert run.meta["every"] == 16
    assert run.total_events == 40
    assert run.final_digest == run.checkpoints[-1]["digest"]
    assert load.skipped_lines == 0


def test_loader_skips_truncated_tail_line(tmp_path):
    path = tmp_path / "fp.jsonl"
    with fingerprinting(path=str(path), checkpoint_every=16):
        _tiny_sim_run(1)
    reference = load_fingerprints(str(path))
    # A killed worker leaves a half-written final line.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"fp":"ckpt","run":1,"i":999,"dig')
    damaged = load_fingerprints(str(path))
    assert damaged.skipped_lines == 1
    assert damaged.combined_digest() == reference.combined_digest()


# ----------------------------------------------------------------------
# Parallel parity (satellite: jobs=2 shards reconstruct the serial digest)
# ----------------------------------------------------------------------
def _fp_trial(seed):
    _tiny_sim_run(seed, events=40)
    return TrialMetrics(recall=1.0, latency_s=float(seed), overhead_bytes=seed)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fingerprint shards need fork",
)
def test_parallel_shards_reconstruct_serial_combined_digest(
    monkeypatch, tmp_path
):
    serial_path = tmp_path / "serial.jsonl"
    with fingerprinting(path=str(serial_path), checkpoint_every=16):
        for seed in (1, 2, 3, 4):
            _fp_trial(seed)
    serial = load_fingerprints(str(serial_path))
    assert len(serial.runs) == 4

    parallel_path = tmp_path / "parallel.jsonl"
    monkeypatch.setattr(fp_mod, "_ENV_FINGERPRINT", None)
    monkeypatch.setenv("REPRO_FINGERPRINT", str(parallel_path))
    monkeypatch.setenv("REPRO_FINGERPRINT_EVERY", "16")
    run_trials(_fp_trial, seeds=[1, 2, 3, 4], jobs=2)
    monkeypatch.delenv("REPRO_FINGERPRINT")
    fp_mod._clear_fingerprint()

    merged = load_fingerprints(str(parallel_path))
    assert len(merged.paths) >= 2  # per-worker shards
    assert len(merged.runs) == 4
    # Which shard each run landed in is scheduler-dependent; the *set* of
    # per-run chained digests is not.
    assert merged.combined_digest() == serial.combined_digest()

    # A truncated tail on one shard (killed worker) must not break the
    # reconstruction: the half-written record is skipped, the closing
    # checkpoints of completed runs still carry their digests.
    with open(merged.paths[0], "a", encoding="utf-8") as handle:
        handle.write('{"fp":"ckpt","run":9')
    damaged = load_fingerprints(str(parallel_path))
    assert damaged.skipped_lines == 1
    assert damaged.combined_digest() == serial.combined_digest()


def test_memory_config_cannot_cross_process_boundary(monkeypatch):
    from repro.experiments import runner as runner_mod

    with fingerprinting(path=None):
        context = multiprocessing.get_context("fork")
        with pytest.raises(ConfigurationError):
            runner_mod._plan_fingerprint_shards(context)
