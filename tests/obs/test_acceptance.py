"""Acceptance: the trace reconciles with `NetworkStats` exactly, and the
causal tooling reconstructs and audits it.

Two acceptance criteria meet here: in a traced discovery run the sum of
``frame_sent`` event sizes equals ``NetworkStats.bytes_sent`` (the trace
is a complete, non-duplicated record of the on-air traffic), and the
span/audit tooling reconstructs at least one span tree per issued query
with zero invariant violations on the default seed config.
"""

from repro.experiments.figures.common import (
    experiment_device_config,
    pdd_experiment,
)
from repro.experiments.scenario import build_grid_scenario
from repro.obs.audit import audit_events, render_report
from repro.obs.inspect import summarize
from repro.obs.spans import build_spans
from repro.obs.trace import ListSink


def _traced_discovery_run():
    scenario = build_grid_scenario(
        rows=3,
        cols=3,
        seed=1,
        device_config=experiment_device_config(),
        n_consumers=1,
    )
    sink = scenario.sim.trace.subscribe(ListSink())
    pdd_experiment(1, metadata_count=200, scenario=scenario, sim_cap_s=60.0)
    return scenario, sink


def test_frame_sent_sizes_sum_to_bytes_sent():
    scenario, sink = _traced_discovery_run()
    stats = scenario.stats
    sent = [e for e in sink.events if e.kind == "frame_sent"]
    assert sent, "a discovery run must put frames on the air"
    assert sum(e.fields["size"] for e in sent) == stats.bytes_sent
    assert len(sent) == stats.frames_sent


def test_trace_frame_kinds_match_stats_breakdown():
    scenario, sink = _traced_discovery_run()
    stats = scenario.stats
    summary = summarize([e.to_json_dict() for e in sink.events])
    trace_bytes = {k: v["bytes"] for k, v in summary["frames"].items()}
    trace_frames = {k: v["frames"] for k, v in summary["frames"].items()}
    snapshot = stats.snapshot()
    assert trace_bytes == snapshot["bytes_by_kind"]
    assert trace_frames == snapshot["frames_by_kind"]


def test_delivery_and_loss_events_reconcile():
    scenario, sink = _traced_discovery_run()
    stats = scenario.stats
    delivered = sum(1 for e in sink.events if e.kind == "frame_delivered")
    lost = sum(1 for e in sink.events if e.kind == "frame_lost")
    assert delivered == stats.frames_delivered
    assert lost == (
        stats.frames_lost_collision
        + stats.frames_lost_random
        + stats.frames_lost_busy_receiver
    )


def test_every_issued_query_reconstructs_a_span_tree():
    _, sink = _traced_discovery_run()
    events = [e.to_json_dict() for e in sink.events]
    issued = {
        (e["run"], e["query_id"])
        for e in events
        if e["kind"] == "query_issued"
    }
    assert issued, "a discovery run must issue queries"
    forest = build_spans(events)
    spans = {(s.scope[1], s.query_id) for s in forest.queries}
    assert issued <= spans
    # every reconstructed query span saw actual protocol activity
    for span in forest.queries:
        assert span.events
        assert span.issued_at is not None


def test_traced_discovery_run_audits_clean():
    _, sink = _traced_discovery_run()
    events = [e.to_json_dict() for e in sink.events]
    report = audit_events(events)
    assert report.queries_checked > 0
    assert report.responses_checked > 0
    assert report.ok, render_report(report)


def test_registry_sees_network_counters():
    scenario, _ = _traced_discovery_run()
    snap = scenario.sim.metrics.snapshot()
    assert snap["counters"]["net.bytes_sent"] == scenario.stats.bytes_sent
    assert snap["histograms"]["net.frame_size_bytes"]["count"] == (
        scenario.stats.frames_sent
    )
    assert snap["histograms"]["net.per_hop_latency_s"]["count"] > 0
