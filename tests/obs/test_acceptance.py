"""Acceptance: the trace reconciles with `NetworkStats` exactly.

The ISSUE's acceptance criterion: in a traced discovery run, the sum of
``frame_sent`` event sizes equals ``NetworkStats.bytes_sent`` — i.e. the
trace is a complete, non-duplicated record of the on-air traffic.
"""

from repro.experiments.figures.common import (
    experiment_device_config,
    pdd_experiment,
)
from repro.experiments.scenario import build_grid_scenario
from repro.obs.inspect import summarize
from repro.obs.trace import ListSink


def _traced_discovery_run():
    scenario = build_grid_scenario(
        rows=3,
        cols=3,
        seed=1,
        device_config=experiment_device_config(),
        n_consumers=1,
    )
    sink = scenario.sim.trace.subscribe(ListSink())
    pdd_experiment(1, metadata_count=200, scenario=scenario, sim_cap_s=60.0)
    return scenario, sink


def test_frame_sent_sizes_sum_to_bytes_sent():
    scenario, sink = _traced_discovery_run()
    stats = scenario.stats
    sent = [e for e in sink.events if e.kind == "frame_sent"]
    assert sent, "a discovery run must put frames on the air"
    assert sum(e.fields["size"] for e in sent) == stats.bytes_sent
    assert len(sent) == stats.frames_sent


def test_trace_frame_kinds_match_stats_breakdown():
    scenario, sink = _traced_discovery_run()
    stats = scenario.stats
    summary = summarize([e.to_json_dict() for e in sink.events])
    trace_bytes = {k: v["bytes"] for k, v in summary["frames"].items()}
    trace_frames = {k: v["frames"] for k, v in summary["frames"].items()}
    snapshot = stats.snapshot()
    assert trace_bytes == snapshot["bytes_by_kind"]
    assert trace_frames == snapshot["frames_by_kind"]


def test_delivery_and_loss_events_reconcile():
    scenario, sink = _traced_discovery_run()
    stats = scenario.stats
    delivered = sum(1 for e in sink.events if e.kind == "frame_delivered")
    lost = sum(1 for e in sink.events if e.kind == "frame_lost")
    assert delivered == stats.frames_delivered
    assert lost == (
        stats.frames_lost_collision
        + stats.frames_lost_random
        + stats.frames_lost_busy_receiver
    )


def test_registry_sees_network_counters():
    scenario, _ = _traced_discovery_run()
    snap = scenario.sim.metrics.snapshot()
    assert snap["counters"]["net.bytes_sent"] == scenario.stats.bytes_sent
    assert snap["histograms"]["net.frame_size_bytes"]["count"] == (
        scenario.stats.frames_sent
    )
    assert snap["histograms"]["net.per_hop_latency_s"]["count"] > 0
