"""Kernel profiler: attribution, merging, flamegraph export, determinism."""

import os

import pytest

from repro.obs.kernelprof import (
    FLAME_ROOT,
    SCHEDULER_SUBSYSTEM,
    KernelProfiler,
    _clear_active,
    active_kernel_profiler,
    configured_profiling,
    request_profiling,
)
from repro.sim.simulator import Simulator


class _Device:
    """Stand-in handler owner; module resolves to this test file."""

    def __init__(self):
        self.fired = 0

    def on_tick(self):
        self.fired += 1


def _free_function():
    pass


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------
def test_bound_methods_collapse_onto_one_accumulator():
    profiler = KernelProfiler()
    devices = [_Device() for _ in range(5)]
    for device in devices:
        profiler.note(device.on_tick, 1000)
    stats = profiler.stats()
    assert len(stats) == 1
    ((subsystem, handler),) = stats.keys()
    assert handler == "_Device.on_tick"
    (count, ns) = stats[(subsystem, handler)]
    assert count == 5
    assert ns == 5000


def test_plain_functions_keyed_directly():
    profiler = KernelProfiler()
    profiler.note(_free_function, 10)
    profiler.note(_free_function, 20)
    stats = profiler.stats()
    assert len(stats) == 1
    (count, ns) = next(iter(stats.values()))
    assert (count, ns) == (2, 30)


def test_subsystem_derived_from_repro_module():
    from repro.net.medium import BroadcastMedium

    profiler = KernelProfiler()
    profiler.note(BroadcastMedium._deliver_all, 100)
    ((subsystem, handler),) = profiler.stats().keys()
    assert subsystem == "net.medium"
    assert handler == "BroadcastMedium._deliver_all"


def test_events_and_kernel_ns_totals():
    profiler = KernelProfiler()
    profiler.note(_free_function, 10)
    device = _Device()
    profiler.note(device.on_tick, 30)
    assert profiler.events == 2
    assert profiler.kernel_ns == 40


# ----------------------------------------------------------------------
# Simulator hook
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheduler, dispatch_handler",
    [("heap", "HeapScheduler.dispatch"), ("calendar", "CalendarScheduler.dispatch")],
)
def test_simulator_attributes_events_while_active(scheduler, dispatch_handler):
    sim = Simulator(scheduler=scheduler)
    device = _Device()
    for i in range(7):
        sim.schedule(float(i), device.on_tick)
    profiler = KernelProfiler()
    with profiler.activate():
        sim.run()
    assert device.fired == 7
    # Scheduler dispatch time is attributed as its own subsystem but
    # excluded from the fired-event total (it would double-count).
    assert profiler.events == 7
    assert profiler.kernel_ns > 0
    stats = profiler.stats()
    assert {handler for _, handler in stats.keys()} == {
        "_Device.on_tick",
        dispatch_handler,
    }
    dispatch_count, dispatch_ns = stats[(SCHEDULER_SUBSYSTEM, dispatch_handler)]
    assert dispatch_count == 7  # one dispatch per fired event
    assert dispatch_ns > 0


def test_simulator_untouched_when_inactive():
    sim = Simulator()
    device = _Device()
    sim.schedule(0.0, device.on_tick)
    assert active_kernel_profiler() is None
    sim.run()
    assert device.fired == 1


def test_profiled_run_output_identical_to_unprofiled():
    # The determinism contract: profiling must not change event order,
    # virtual time, or any observable output of the simulation.
    def drive():
        from repro.experiments.figures.common import pdd_experiment

        outcome = pdd_experiment(seed=3, rows=4, cols=4, metadata_count=30)
        first = outcome.first
        return (
            first.recall,
            first.result.latency,
            first.result.rounds,
            outcome.total_overhead_bytes,
            outcome.scenario.sim.events_processed,
            outcome.scenario.sim.peak_queue_depth,
            outcome.scenario.sim.now,
        )

    plain = drive()
    with KernelProfiler().activate():
        profiled = drive()
    assert profiled == plain


# ----------------------------------------------------------------------
# Activation and merging
# ----------------------------------------------------------------------
def test_activate_nests_and_restores():
    outer = KernelProfiler()
    inner = KernelProfiler()
    with outer.activate():
        assert active_kernel_profiler() is outer
        with inner.activate():
            assert active_kernel_profiler() is inner
        assert active_kernel_profiler() is outer
    assert active_kernel_profiler() is None
    assert outer.wall_ns > 0
    assert inner.wall_ns > 0


def test_merge_folds_handler_stats_not_wall():
    outer = KernelProfiler()
    inner = KernelProfiler()
    inner.note(_free_function, 500)
    with outer.activate():
        pass
    wall_before = outer.wall_ns
    outer.merge(inner)
    assert outer.wall_ns == wall_before
    assert outer.kernel_ns == 500
    assert outer.events == 1


def test_snapshot_merge_roundtrip():
    source = KernelProfiler()
    source.note(_free_function, 100)
    device = _Device()
    source.note(device.on_tick, 200)
    snapshot = source.snapshot()
    # Snapshots must be JSON-able (they cross process boundaries).
    import json

    json.dumps(snapshot)
    target = KernelProfiler()
    target.merge_snapshot(snapshot)
    target.merge_snapshot(snapshot)
    assert target.stats() == {
        key: (count * 2, ns * 2) for key, (count, ns) in source.stats().items()
    }


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_summary_and_trial_summary_fields():
    profiler = KernelProfiler()
    with profiler.activate():
        profiler.note(_free_function, 1000)
    summary = profiler.summary()
    assert summary["events"] == 1
    assert summary["kernel_s"] == pytest.approx(1e-6)
    assert 0.0 < summary["kernel_share"] <= 1.0
    assert summary["hot_subsystem"]
    trial = profiler.trial_summary()
    assert trial["subsystem_ns"] == {summary["hot_subsystem"]: 1000}


def test_render_lists_subsystems_and_handlers():
    profiler = KernelProfiler()
    device = _Device()
    profiler.note(device.on_tick, 3000)
    profiler.note(_free_function, 1000)
    text = profiler.render(top=10)
    assert "by subsystem:" in text
    assert "_Device.on_tick" in text
    assert "_free_function" in text
    assert KernelProfiler().render() == "kernel profile: no events attributed"


def test_collapsed_stacks_format():
    profiler = KernelProfiler()
    profiler.note(_free_function, 5_000_000)
    profiler.wall_ns = 8_000_000  # 3ms of profiled wall outside handlers
    stacks = profiler.collapsed_stacks()
    lines = stacks.strip().splitlines()
    handler_lines = [l for l in lines if "_free_function" in l]
    assert len(handler_lines) == 1
    frames, value = handler_lines[0].rsplit(" ", 1)
    assert frames.startswith(f"{FLAME_ROOT};")
    assert frames.count(";") == 2  # root;subsystem;handler
    assert int(value) == 5000  # microseconds
    # Idle time outside handlers gets its own frame so widths sum to wall.
    assert any("(outside-handlers)" in l for l in lines)


def test_write_flamegraph(tmp_path):
    profiler = KernelProfiler()
    profiler.note(_free_function, 2000)
    out = tmp_path / "flame.txt"
    profiler.write_flamegraph(str(out))
    assert "_free_function" in out.read_text()


# ----------------------------------------------------------------------
# Process-wide configuration
# ----------------------------------------------------------------------
def test_configured_profiling_env_and_request(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    _clear_active()
    request_profiling(False)
    assert not configured_profiling()
    monkeypatch.setenv("REPRO_PROFILE", "1")
    assert configured_profiling()
    monkeypatch.delenv("REPRO_PROFILE")
    request_profiling(True)
    assert configured_profiling()
    request_profiling(False)
    assert not configured_profiling()
    with KernelProfiler().activate():
        assert configured_profiling()
    assert not configured_profiling()
