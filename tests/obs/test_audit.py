"""The protocol anomaly analyzer: every invariant fires exactly when it should.

Each invariant gets a quiet case (clean stream) and a firing case (a
crafted stream with the violation injected).  The Bloom-redundancy check
is additionally exercised end-to-end: a real two-round discovery run with
an injected pruning bug (membership tests forced to miss) must trip
``redundant_metadata``, and the same run without the bug must not.
"""

import random

from repro.bloom.bloom_filter import BloomFilter
from repro.core.consumer import DiscoverySession
from repro.core.rounds import RoundConfig
from repro.data.descriptor import make_descriptor
from repro.obs.audit import (
    INVARIANTS,
    audit_events,
    audit_extras,
    render_report,
)
from repro.obs.trace import ListSink
from tests.helpers import clique_positions, make_net


def _ev(kind, t, run=1, shard="t.jsonl", **fields):
    event = {"t": t, "kind": kind, "run": run, "shard": shard}
    event.update(fields)
    return event


def _issued(t=1.0, query_id=10, proto="pdd", bloom=None, **fields):
    event = _ev("query_issued", t, query_id=query_id, proto=proto,
                consumer=1, round=1, expires_at=t + 30.0, **fields)
    if bloom is not None:
        event.update(bloom.trace_fields())
    return event


# ----------------------------------------------------------------------
# Clean stream
# ----------------------------------------------------------------------
def test_clean_stream_audits_ok():
    bloom = BloomFilter(256, 3, seed=1)
    bloom.insert(b"already-known")
    events = [
        _issued(bloom=bloom),
        _ev("query_forwarded", 1.2, query_id=10, node=3, expires_at=31.0),
        _ev("bloom_prune", 1.3, query_id=10, node=4, hits=1, misses=2),
        _ev("response_sent", 1.4, query_id=10, node=4, proto="pdd",
            keys=[b"fresh-key".hex()]),
        _ev("round_end", 4.0, node=1, round=1, duration=3.0, window=3.0),
        _ev("retransmit", 2.0, frame_id=7, node=3, retx=1),
    ]
    report = audit_events(events)
    assert report.ok
    assert report.counts() == {}
    assert report.queries_checked == 1
    assert report.responses_checked == 1
    assert report.rounds_checked == 1


# ----------------------------------------------------------------------
# unanswered_query
# ----------------------------------------------------------------------
def test_unanswered_query_fires_when_matches_never_answered():
    events = [
        _issued(),
        _ev("bloom_prune", 1.3, query_id=10, node=4, hits=0, misses=2),
    ]
    report = audit_events(events)
    assert report.counts() == {"unanswered_query": 1}
    violation = report.violations[0]
    assert violation.node == 4
    assert violation.query_id == 10


def test_unanswered_query_quiet_when_response_sent():
    events = [
        _issued(),
        _ev("bloom_prune", 1.3, query_id=10, node=4, hits=0, misses=2),
        _ev("response_sent", 1.4, query_id=10, node=4, proto="pdd", keys=[]),
    ]
    assert audit_events(events).ok


def test_unanswered_query_quiet_when_all_matches_covered():
    # hits only (misses == 0): pruning suppressed everything, by design.
    events = [
        _issued(),
        _ev("bloom_prune", 1.3, query_id=10, node=4, hits=3, misses=0),
    ]
    assert audit_events(events).ok


def test_unanswered_query_is_per_node():
    events = [
        _issued(),
        _ev("bloom_prune", 1.3, query_id=10, node=4, hits=0, misses=2),
        _ev("bloom_prune", 1.4, query_id=10, node=5, hits=0, misses=1),
        _ev("response_sent", 1.5, query_id=10, node=4, proto="pdd", keys=[]),
    ]
    report = audit_events(events)
    assert report.counts() == {"unanswered_query": 1}
    assert report.violations[0].node == 5


# ----------------------------------------------------------------------
# redundant_metadata
# ----------------------------------------------------------------------
def test_redundant_metadata_fires_for_covered_key():
    bloom = BloomFilter(256, 3, seed=2)
    bloom.insert(b"covered-key")
    events = [
        _issued(bloom=bloom),
        _ev("response_sent", 1.4, query_id=10, node=4, proto="pdd",
            keys=[b"covered-key".hex()]),
    ]
    report = audit_events(events)
    assert report.counts() == {"redundant_metadata": 1}
    assert "covered" in report.violations[0].detail


def test_redundant_metadata_quiet_for_fresh_keys():
    bloom = BloomFilter(256, 3, seed=2)
    bloom.insert(b"covered-key")
    events = [
        _issued(bloom=bloom),
        _ev("response_sent", 1.4, query_id=10, node=4, proto="pdd",
            keys=[b"some-other-key".hex()]),
    ]
    assert audit_events(events).ok


def test_redundant_metadata_scoped_per_shard():
    # The issued filter in shard A must not judge a response in shard B
    # that reuses the same (run, query_id) after a worker fork.
    bloom = BloomFilter(256, 3, seed=2)
    bloom.insert(b"covered-key")
    events = [
        _issued(bloom=bloom, shard="t.0.jsonl"),
        _ev("response_sent", 1.4, shard="t.1.jsonl", query_id=10, node=4,
            proto="pdd", keys=[b"covered-key".hex()]),
    ]
    assert audit_events(events).ok


def test_redundant_metadata_ignores_non_pdd_responses():
    bloom = BloomFilter(256, 3, seed=2)
    bloom.insert(b"covered-key")
    events = [
        _issued(bloom=bloom, proto="cdi"),
        _ev("response_sent", 1.4, query_id=10, node=4, proto="cdi",
            keys=[b"covered-key".hex()]),
    ]
    assert audit_events(events).ok


# ----------------------------------------------------------------------
# farther_copy
# ----------------------------------------------------------------------
_OPTIONS = {"0": [[1, 1], [2, 3]], "1": [[1, 1], [2, 3]]}


def test_farther_copy_fires_when_assignment_beats_nothing():
    # Both chunks from the 3-hop copy: max load 6 vs greedy baseline 2.
    events = [
        _ev("chunk_assignment", 2.0, node=1, query_id=20,
            options=_OPTIONS, assignment={"2": [0, 1]}),
    ]
    report = audit_events(events)
    assert report.counts() == {"farther_copy": 1}
    assert "baseline 2" in report.violations[0].detail


def test_farther_copy_quiet_for_greedy_optimal_assignment():
    events = [
        _ev("chunk_assignment", 2.0, node=1, query_id=20,
            options=_OPTIONS, assignment={"1": [0, 1]}),
    ]
    report = audit_events(events)
    assert report.ok
    assert report.assignments_checked == 1


def test_farther_copy_skips_unscorable_assignment():
    # A neighbor absent from the recorded options means the options were
    # truncated — the checker must refuse to guess rather than misfire.
    events = [
        _ev("chunk_assignment", 2.0, node=1, query_id=20,
            options={"0": [[1, 1]]}, assignment={"9": [0]}),
    ]
    report = audit_events(events)
    assert report.ok


# ----------------------------------------------------------------------
# lingering_past_expiry
# ----------------------------------------------------------------------
def test_lingering_past_expiry_fires_on_late_forward():
    events = [
        _issued(),
        _ev("query_forwarded", 31.5, query_id=10, node=3, expires_at=31.0),
    ]
    report = audit_events(events)
    assert report.counts() == {"lingering_past_expiry": 1}
    assert "past expiry" in report.violations[0].detail


def test_lingering_past_expiry_quiet_before_expiry():
    events = [
        _issued(),
        _ev("query_forwarded", 30.9, query_id=10, node=3, expires_at=31.0),
    ]
    assert audit_events(events).ok


# ----------------------------------------------------------------------
# retransmission_storm
# ----------------------------------------------------------------------
def test_retransmission_storm_fires_past_max():
    events = [
        _ev("retransmit", 1.0 + i, frame_id=7, node=3, retx=i + 1)
        for i in range(5)
    ]
    report = audit_events(events, max_retransmissions=4)
    assert report.counts() == {"retransmission_storm": 1}
    assert "5 times" in report.violations[0].detail


def test_retransmission_storm_quiet_at_max():
    events = [
        _ev("retransmit", 1.0 + i, frame_id=7, node=3, retx=i + 1)
        for i in range(4)
    ]
    assert audit_events(events, max_retransmissions=4).ok


def test_retransmission_storm_counts_per_frame():
    events = [
        _ev("retransmit", 1.0 + i, frame_id=i, node=3, retx=1)
        for i in range(10)
    ]
    assert audit_events(events, max_retransmissions=4).ok


# ----------------------------------------------------------------------
# early_round_stop
# ----------------------------------------------------------------------
def test_early_round_stop_fires_on_short_round():
    events = [
        _ev("round_end", 2.0, node=1, round=1, duration=1.9, window=3.0),
    ]
    report = audit_events(events)
    assert report.counts() == {"early_round_stop": 1}
    assert "stopped after" in report.violations[0].detail


def test_early_round_stop_quiet_for_full_window():
    events = [
        _ev("round_end", 4.0, node=1, round=1, duration=3.0, window=3.0),
        _ev("round_end", 9.0, node=1, round=2, duration=4.5, window=3.0),
    ]
    report = audit_events(events)
    assert report.ok
    assert report.rounds_checked == 2


# ----------------------------------------------------------------------
# Reporting surfaces
# ----------------------------------------------------------------------
def test_report_json_dict_and_extras():
    events = [
        _issued(),
        _ev("bloom_prune", 1.3, query_id=10, node=4, hits=0, misses=2),
    ]
    report = audit_events(events)
    doc = report.to_json_dict()
    assert doc["ok"] is False
    assert doc["counts"] == {"unanswered_query": 1}
    assert doc["violations"][0]["invariant"] == "unanswered_query"
    assert doc["violations"][0]["node"] == 4
    assert audit_extras(events) == {"unanswered_query": 1}


def test_render_report_marks_failures():
    events = [
        _ev("round_end", 2.0, node=1, round=1, duration=1.0, window=3.0),
    ]
    text = render_report(audit_events(events))
    assert "1 violation(s)" in text
    assert "early_round_stop" in text
    for invariant in INVARIANTS:
        assert invariant in text
    assert "FAIL" in text
    assert "ok" in text


def test_render_report_caps_violation_lines():
    events = [
        _ev("round_end", 2.0 + i, node=1, round=i, duration=1.0, window=3.0)
        for i in range(30)
    ]
    text = render_report(audit_events(events), max_violations=5)
    assert "... 25 more violation(s)" in text


# ----------------------------------------------------------------------
# End-to-end: an injected Bloom-pruning bug is caught
# ----------------------------------------------------------------------
def _two_round_discovery(monkeypatch, break_pruning):
    """Run a real two-round discovery; optionally disable responder pruning.

    The injected bug makes every responder-side membership test miss, so
    round 2's responses re-send entries the consumer's issued filter
    already covers — exactly the redundancy §III-B-2 pruning suppresses.
    """
    net = make_net(clique_positions(3), seed=5)
    producer = net.devices[1]
    for i in range(4):
        producer.add_metadata(
            make_descriptor("env", "nox", time=float(i), sensor=f"s{i}")
        )
    if break_pruning:
        monkeypatch.setattr(BloomFilter, "__contains__", lambda self, key: False)
    sink = net.sim.trace.subscribe(ListSink())
    session = DiscoverySession(
        net.devices[0],
        round_config=RoundConfig(window_s=3.0, max_rounds=2, continue_ratio=0.0),
    )
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=30.0)
    monkeypatch.undo()  # the offline audit needs real membership tests
    assert session.done
    return [e.to_json_dict() for e in sink.events]


def test_injected_bloom_pruning_bug_trips_redundant_metadata(monkeypatch):
    events = _two_round_discovery(monkeypatch, break_pruning=True)
    report = audit_events(events)
    assert report.responses_checked > 0
    assert "redundant_metadata" in report.counts()
    violation = next(
        v for v in report.violations if v.invariant == "redundant_metadata"
    )
    assert violation.node == 1


def test_healthy_discovery_run_audits_clean(monkeypatch):
    events = _two_round_discovery(monkeypatch, break_pruning=False)
    report = audit_events(events)
    assert report.responses_checked > 0
    assert report.ok, render_report(report)
