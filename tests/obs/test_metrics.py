"""Unit tests for counters, gauges, histograms and the registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_inc_and_direct_assignment():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.value = 42
    assert counter.value == 42


def test_gauge_tracks_extremes():
    gauge = Gauge("g")
    for value in (5.0, -2.0, 3.0):
        gauge.set(value)
    assert gauge.value == 3.0
    assert gauge.max_value == 5.0
    assert gauge.min_value == -2.0
    assert gauge.samples == 3


def test_histogram_buckets_and_stats():
    hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.total == 556.5
    assert hist.min == 0.5
    assert hist.max == 500.0
    # inclusive upper bounds: 0.5 and 1.0 land in the first bucket
    assert hist.bucket_counts() == {
        "le_1": 2,
        "le_10": 1,
        "le_100": 1,
        "overflow": 1,
    }
    assert hist.quantile(0.5) == 10.0
    assert hist.quantile(1.0) == 500.0


def test_histogram_rejects_bad_buckets_and_quantiles():
    with pytest.raises(ConfigurationError):
        Histogram("h", buckets=())
    with pytest.raises(ConfigurationError):
        Histogram("h", buckets=(1.0, 1.0))
    hist = Histogram("h", buckets=(1.0,))
    with pytest.raises(ConfigurationError):
        hist.quantile(1.5)


def test_histogram_sorts_buckets():
    hist = Histogram("h", buckets=(10.0, 1.0))
    assert hist.buckets == (1.0, 10.0)


def test_registry_getters_are_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("y") is registry.gauge("y")
    assert registry.histogram("z") is registry.histogram("z", buckets=(99.0,))


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("frames").inc(3)
    registry.gauge("queue").set(7.0)
    registry.histogram("sizes", buckets=(10.0, 100.0)).observe(42.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"frames": 3}
    assert snap["gauges"]["queue"]["max"] == 7.0
    hist = snap["histograms"]["sizes"]
    assert hist["count"] == 1
    assert hist["sum"] == 42.0
    assert hist["buckets"] == {"le_10": 0, "le_100": 1, "overflow": 0}


def test_registry_render_mentions_instruments():
    registry = MetricsRegistry()
    assert registry.render() == "(no metrics recorded)"
    registry.counter("frames").inc()
    registry.gauge("queue").set(1.0)
    registry.histogram("sizes").observe(2.0)
    text = registry.render()
    for token in ("counters:", "gauges:", "histograms:", "frames", "queue", "sizes"):
        assert token in text
