"""Unit tests for counters, gauges, histograms and the registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_inc_and_direct_assignment():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.value = 42
    assert counter.value == 42


def test_gauge_tracks_extremes():
    gauge = Gauge("g")
    for value in (5.0, -2.0, 3.0):
        gauge.set(value)
    assert gauge.value == 3.0
    assert gauge.max_value == 5.0
    assert gauge.min_value == -2.0
    assert gauge.samples == 3


def test_histogram_buckets_and_stats():
    hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.total == 556.5
    assert hist.min == 0.5
    assert hist.max == 500.0
    # inclusive upper bounds: 0.5 and 1.0 land in the first bucket
    assert hist.bucket_counts() == {
        "le_1": 2,
        "le_10": 1,
        "le_100": 1,
        "overflow": 1,
    }
    assert hist.quantile(0.5) == 10.0
    assert hist.quantile(1.0) == 500.0


def test_histogram_rejects_bad_buckets_and_quantiles():
    with pytest.raises(ConfigurationError):
        Histogram("h", buckets=())
    with pytest.raises(ConfigurationError):
        Histogram("h", buckets=(1.0, 1.0))
    hist = Histogram("h", buckets=(1.0,))
    with pytest.raises(ConfigurationError):
        hist.quantile(1.5)


def test_histogram_sorts_buckets():
    hist = Histogram("h", buckets=(10.0, 1.0))
    assert hist.buckets == (1.0, 10.0)


def test_registry_getters_are_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("y") is registry.gauge("y")
    assert registry.histogram("z") is registry.histogram("z", buckets=(99.0,))


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("frames").inc(3)
    registry.gauge("queue").set(7.0)
    registry.histogram("sizes", buckets=(10.0, 100.0)).observe(42.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"frames": 3}
    assert snap["gauges"]["queue"]["max"] == 7.0
    hist = snap["histograms"]["sizes"]
    assert hist["count"] == 1
    assert hist["sum"] == 42.0
    assert hist["buckets"] == {"le_10": 0, "le_100": 1, "overflow": 0}


def test_registry_render_mentions_instruments():
    registry = MetricsRegistry()
    assert registry.render() == "(no metrics recorded)"
    registry.counter("frames").inc()
    registry.gauge("queue").set(1.0)
    registry.histogram("sizes").observe(2.0)
    text = registry.render()
    for token in ("counters:", "gauges:", "histograms:", "frames", "queue", "sizes"):
        assert token in text


def test_instruments_reset_in_place():
    counter = Counter("c")
    counter.inc(5)
    counter.reset()
    assert counter.value == 0

    gauge = Gauge("g")
    gauge.set(3.0)
    gauge.reset()
    assert gauge.samples == 0
    gauge.set(-1.0)
    assert gauge.max_value == -1.0  # extremes restart from scratch

    hist = Histogram("h", buckets=(1.0, 10.0))
    hist.observe(5.0)
    hist.reset()
    assert hist.count == 0
    assert hist.total == 0.0
    assert hist.bucket_counts() == {"le_1": 0, "le_10": 0, "overflow": 0}


def test_registry_reset_keeps_cached_references_valid():
    """Regression: Simulator.reset() used to leave stale counts behind;
    the fix zeroes instruments in place so holders keep recording."""
    registry = MetricsRegistry()
    counter = registry.counter("net.bytes")
    counter.inc(100)
    registry.reset()
    assert counter.value == 0
    counter.inc(7)  # the pre-reset reference still feeds the registry
    assert registry.counter("net.bytes").value == 7


def test_merge_snapshot_counters_gauges_histograms():
    a = MetricsRegistry()
    a.counter("c").inc(3)
    a.gauge("g").set(1.0)
    a.gauge("g").set(5.0)
    a.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
    a.histogram("h", buckets=(1.0, 10.0)).observe(50.0)

    b = MetricsRegistry()
    b.counter("c").inc(4)
    b.gauge("g").set(-2.0)
    b.histogram("h", buckets=(1.0, 10.0)).observe(5.0)

    b.merge_snapshot(a.snapshot())
    assert b.counter("c").value == 7
    assert b.gauge("g").max_value == 5.0
    assert b.gauge("g").min_value == -2.0
    assert b.gauge("g").samples == 3
    hist = b.histogram("h", buckets=(1.0, 10.0))
    assert hist.count == 3
    assert hist.bucket_counts() == {"le_1": 1, "le_10": 1, "overflow": 1}
    assert hist.min == 0.5
    assert hist.max == 50.0


def test_merge_snapshot_empty_into_fresh_registry():
    target = MetricsRegistry()
    source = MetricsRegistry()
    source.counter("c")
    source.gauge("g")
    source.histogram("h", buckets=(1.0,))
    target.merge_snapshot(source.snapshot())
    # untouched instruments do not pollute extremes or samples
    assert target.counter("c").value == 0
    assert target.gauge("g").samples == 0
    assert target.histogram("h", buckets=(1.0,)).count == 0


def test_merge_snapshot_rejects_bucket_mismatch():
    a = MetricsRegistry()
    a.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
    b = MetricsRegistry()
    b.histogram("h", buckets=(1.0, 3.0)).observe(1.5)
    with pytest.raises(ConfigurationError):
        b.merge_snapshot(a.snapshot())


def test_merge_snapshot_exact_bounds_roundtrip():
    """Regression: bounds used to be recovered from 'le_<bound:g>' keys,
    which are rounded to 6 significant digits — 1048576 came back as
    1048580 and every merge of byte-sized buckets mismatched."""
    a = MetricsRegistry()
    a.histogram("h", buckets=(1048576.0, 2097152.0)).observe(1.0)
    b = MetricsRegistry()
    b.merge_snapshot(a.snapshot())
    merged = b.histogram("h", buckets=(1048576.0, 2097152.0))
    assert merged.count == 1


def test_collect_registries_scopes_creation():
    from repro.obs.metrics import collect_registries

    before = MetricsRegistry()  # outside: not collected
    with collect_registries() as collected:
        inside = MetricsRegistry()
    after = MetricsRegistry()  # after: not collected
    assert collected == [inside]
    assert before not in collected and after not in collected


def test_collect_registries_nests():
    from repro.obs.metrics import collect_registries

    with collect_registries() as outer:
        first = MetricsRegistry()
        with collect_registries() as inner:
            second = MetricsRegistry()
    assert outer == [first, second]  # outer sees everything in its scope
    assert inner == [second]


# ----------------------------------------------------------------------
# Gauge time-weighted mean
# ----------------------------------------------------------------------
def test_gauge_time_weighted_mean_integrates_previous_value():
    gauge = Gauge("g")
    gauge.set(10.0, now=0.0)  # no span yet: first timed set
    gauge.set(0.0, now=2.0)   # 10 held for 2s
    gauge.set(4.0, now=4.0)   # 0 held for 2s
    # area = 10*2 + 0*2 = 20 over 4s
    assert gauge.area == 20.0
    assert gauge.elapsed == 4.0
    assert gauge.time_weighted_mean() == 5.0


def test_gauge_untimed_sets_leave_twm_zero():
    gauge = Gauge("g")
    gauge.set(7.0)
    gauge.set(3.0)
    assert gauge.time_weighted_mean() == 0.0
    assert gauge.elapsed == 0.0


def test_gauge_reset_clears_time_accumulators():
    gauge = Gauge("g")
    gauge.set(5.0, now=0.0)
    gauge.set(5.0, now=3.0)
    gauge.reset()
    assert gauge.area == 0.0
    assert gauge.elapsed == 0.0
    assert gauge.time_weighted_mean() == 0.0
    # A fresh timed series starts a new integral, uncontaminated.
    gauge.set(2.0, now=10.0)
    gauge.set(2.0, now=11.0)
    assert gauge.time_weighted_mean() == 2.0


def test_gauge_snapshot_carries_twm_fields():
    registry = MetricsRegistry()
    gauge = registry.gauge("queue")
    gauge.set(6.0, now=0.0)
    gauge.set(0.0, now=3.0)
    snap = registry.snapshot()["gauges"]["queue"]
    assert snap["twm"] == 6.0
    assert snap["area"] == 18.0
    assert snap["elapsed"] == 3.0


def test_merge_snapshot_adds_time_accumulators():
    worker_a = MetricsRegistry()
    worker_a.gauge("queue").set(4.0, now=0.0)
    worker_a.gauge("queue").set(4.0, now=1.0)  # area 4, elapsed 1
    worker_b = MetricsRegistry()
    worker_b.gauge("queue").set(1.0, now=0.0)
    worker_b.gauge("queue").set(1.0, now=3.0)  # area 3, elapsed 3
    parent = MetricsRegistry()
    parent.merge_snapshot(worker_a.snapshot())
    parent.merge_snapshot(worker_b.snapshot())
    merged = parent.gauge("queue")
    assert merged.area == 7.0
    assert merged.elapsed == 4.0
    assert merged.time_weighted_mean() == pytest.approx(7.0 / 4.0)


def test_merge_snapshot_tolerates_legacy_gauges_without_twm():
    parent = MetricsRegistry()
    parent.merge_snapshot(
        {"gauges": {"queue": {"value": 2.0, "max": 5.0, "min": 0.0, "samples": 3}}}
    )
    gauge = parent.gauge("queue")
    assert gauge.samples == 3
    assert gauge.time_weighted_mean() == 0.0


def test_render_mentions_twm_only_when_timed():
    registry = MetricsRegistry()
    registry.gauge("untimed").set(1.0)
    timed = registry.gauge("timed")
    timed.set(2.0, now=0.0)
    timed.set(2.0, now=1.0)
    lines = registry.render().splitlines()
    timed_line = next(line for line in lines if "timed" in line and "untimed" not in line)
    untimed_line = next(line for line in lines if "untimed" in line)
    assert "twm 2" in timed_line
    assert "twm" not in untimed_line


def test_merge_timed_snapshot_into_untimed_gauge_suppresses_twm():
    # The merge edge case: a live gauge sampled WITHOUT timestamps absorbs
    # a worker snapshot whose samples were all timed.  The merged elapsed
    # is positive, but the integral says nothing about the local samples,
    # so the render must not present a time-weighted mean.
    parent = MetricsRegistry()
    parent.gauge("queue").set(100.0)  # untimed local sample
    worker = MetricsRegistry()
    worker.gauge("queue").set(1.0, now=0.0)
    worker.gauge("queue").set(1.0, now=4.0)
    parent.merge_snapshot(worker.snapshot())
    gauge = parent.gauge("queue")
    assert gauge.elapsed == 4.0
    assert gauge.samples == 3
    assert gauge.timed_samples == 2
    assert not gauge.twm_valid
    queue_line = next(
        line for line in parent.render().splitlines() if "queue" in line
    )
    assert "twm" not in queue_line


def test_merge_timed_snapshots_all_timed_keeps_twm():
    # All-timed merges stay valid: twm covers every sample on both sides.
    parent = MetricsRegistry()
    parent.gauge("queue").set(2.0, now=0.0)
    parent.gauge("queue").set(2.0, now=2.0)
    worker = MetricsRegistry()
    worker.gauge("queue").set(4.0, now=0.0)
    worker.gauge("queue").set(4.0, now=2.0)
    parent.merge_snapshot(worker.snapshot())
    gauge = parent.gauge("queue")
    assert gauge.twm_valid
    assert gauge.time_weighted_mean() == pytest.approx(3.0)
    queue_line = next(
        line for line in parent.render().splitlines() if "queue" in line
    )
    assert "twm 3" in queue_line


def test_merge_legacy_timed_snapshot_counts_samples_as_timed():
    # Legacy snapshots (no timed_samples key) with a positive integral
    # could only have come from all-timed sets.
    parent = MetricsRegistry()
    parent.merge_snapshot(
        {
            "gauges": {
                "queue": {
                    "value": 3.0,
                    "max": 3.0,
                    "min": 1.0,
                    "samples": 2,
                    "area": 4.0,
                    "elapsed": 2.0,
                }
            }
        }
    )
    gauge = parent.gauge("queue")
    assert gauge.timed_samples == 2
    assert gauge.twm_valid
    assert gauge.time_weighted_mean() == 2.0


def test_gauge_reset_clears_timed_samples():
    gauge = Gauge("g")
    gauge.set(5.0, now=0.0)
    gauge.reset()
    assert gauge.timed_samples == 0
    assert not gauge.twm_valid
