"""Flight recorder: codec, sampling, exactness, and zero perturbation.

The heart of this file is the exactness property test: during a real
discovery run a spy captures the live network state immediately after
every recorded sample, and each one must be reproducible bit-for-bit
from the timeline file alone — at keyframe positions and at delta
positions.  The other acceptance criterion covered here is
non-perturbation: a recorded run's experiment outcome equals the
unrecorded run's outcome on the same seed.
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures.common import (
    experiment_device_config,
    pdd_experiment,
)
from repro.experiments.scenario import build_grid_scenario
from repro.obs import recorder as rec_mod
from repro.obs.recorder import (
    SEP,
    FlightRecorder,
    RecordingConfig,
    TimelineWriter,
    capture_network_state,
    configured_recording,
    flatten_state,
    merge_summaries,
    recording,
    unflatten_state,
)
from repro.obs.timeline import load_timeline, reconstruct_at


# ----------------------------------------------------------------------
# Flat-state codec
# ----------------------------------------------------------------------
def test_flatten_unflatten_round_trip():
    nested = {
        "nodes": {"3": {"lqt": {"disc": {"q1": 1.5}}, "cdi": {"size": 2}}},
        "net": {"airtime_s": 0.25},
    }
    flat = flatten_state(nested)
    assert flat[f"nodes{SEP}3{SEP}lqt{SEP}disc{SEP}q1"] == 1.5
    assert flat[f"net{SEP}airtime_s"] == 0.25
    assert unflatten_state(flat) == nested


def test_flatten_drops_empty_subdicts():
    # The flat form is canonical: empty branches carry no leaves, so
    # reconstruction equality is defined without them.
    flat = flatten_state({"a": {}, "b": {"c": {}, "d": 1}})
    assert flat == {f"b{SEP}d": 1}
    assert unflatten_state(flat) == {"b": {"d": 1}}


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_recording_config_validates():
    with pytest.raises(ConfigurationError):
        RecordingConfig(interval_s=0)
    with pytest.raises(ConfigurationError):
        RecordingConfig(keyframe_every=0)


def test_recording_context_scopes_config():
    assert configured_recording() is None
    with recording(path=None, interval_s=0.5, keyframe_every=3) as config:
        assert configured_recording() is config
        assert config.interval_s == 0.5
        assert config.keyframe_every == 3
    assert configured_recording() is None


def test_env_recording_parses_knobs(monkeypatch, tmp_path):
    monkeypatch.setattr(rec_mod, "_ENV_RECORDING", None)
    monkeypatch.setenv("REPRO_TIMELINE", str(tmp_path / "tl.jsonl"))
    monkeypatch.setenv("REPRO_TIMELINE_INTERVAL", "0.25")
    monkeypatch.setenv("REPRO_TIMELINE_KEYFRAME", "5")
    config = configured_recording()
    assert config is not None
    assert config.path == str(tmp_path / "tl.jsonl")
    assert config.interval_s == 0.25
    assert config.keyframe_every == 5
    # Same env -> cached config object.
    assert configured_recording() is config


@pytest.mark.parametrize(
    "var, value",
    [
        ("REPRO_TIMELINE_INTERVAL", "fast"),
        ("REPRO_TIMELINE_INTERVAL", "-1"),
        ("REPRO_TIMELINE_KEYFRAME", "0"),
        ("REPRO_TIMELINE_KEYFRAME", "often"),
    ],
)
def test_env_recording_rejects_bad_knobs(monkeypatch, tmp_path, var, value):
    monkeypatch.setattr(rec_mod, "_ENV_RECORDING", None)
    monkeypatch.setenv("REPRO_TIMELINE", str(tmp_path / "tl.jsonl"))
    monkeypatch.setenv(var, value)
    with pytest.raises(ConfigurationError):
        configured_recording()


def test_installed_recording_wins_over_env(monkeypatch, tmp_path):
    monkeypatch.setattr(rec_mod, "_ENV_RECORDING", None)
    monkeypatch.setenv("REPRO_TIMELINE", str(tmp_path / "env.jsonl"))
    with recording(path=None) as config:
        assert configured_recording() is config


def test_reshard_renames_path(tmp_path):
    config = RecordingConfig(path=str(tmp_path / "tl.jsonl"))
    config.reshard(3)
    assert config.path == str(tmp_path / "tl.3.jsonl")


# ----------------------------------------------------------------------
# TimelineWriter durability
# ----------------------------------------------------------------------
def test_writer_close_flushes_and_is_idempotent(tmp_path):
    path = tmp_path / "tl.jsonl"
    writer = TimelineWriter(str(path))
    writer.write({"rec": "meta", "run": 1})
    writer.close()
    writer.close()  # safe to call twice
    header, record = path.read_text().splitlines()
    assert "provenance" in json.loads(header)
    assert json.loads(record) == {"rec": "meta", "run": 1}
    writer.write({"rec": "key"})  # post-close writes are dropped, not errors
    assert path.read_text().count("\n") == 2  # provenance header + record


def test_writer_context_manager(tmp_path):
    path = tmp_path / "tl.jsonl"
    with TimelineWriter(str(path)) as writer:
        writer.write({"rec": "meta"})
    lines = path.read_text().splitlines()
    assert "provenance" in json.loads(lines[0])
    assert lines[1].startswith('{"rec":"meta"}')


def test_writer_close_in_foreign_pid_keeps_file(tmp_path):
    # A writer inherited across fork must never flush the parent's buffer:
    # close() in a "different" process is a no-op that keeps the handle.
    writer = TimelineWriter(str(tmp_path / "tl.jsonl"))
    writer._pid = os.getpid() + 1
    writer.close()
    assert writer._file is not None
    writer._pid = os.getpid()
    writer.close()


# ----------------------------------------------------------------------
# Sampling mechanics (memory-backed, synthetic scenario)
# ----------------------------------------------------------------------
def _memory_recorded_run(**kwargs):
    with recording(path=None, **kwargs):
        scenario = build_grid_scenario(
            rows=3, cols=3, seed=1, device_config=experiment_device_config()
        )
        recorder = scenario.extras["recorder"]
        pdd_experiment(1, metadata_count=150, scenario=scenario, sim_cap_s=40.0)
    return scenario, recorder


def test_keyframe_cadence_and_delta_shape():
    _, recorder = _memory_recorded_run(interval_s=0.5, keyframe_every=4)
    records = recorder.records
    assert records[0]["rec"] == "meta"
    samples = records[1:]
    assert samples, "a recorded run must produce samples"
    for sample in samples:
        if sample["seq"] % 4 == 0:
            assert sample["rec"] == "key"
            assert "state" in sample
        else:
            assert sample["rec"] == "delta"
            assert "set" in sample and "del" in sample
    # Everything written must survive a JSON round trip (JSONL contract).
    assert json.loads(json.dumps(records)) == records


def test_round_boundaries_force_samples():
    _, recorder = _memory_recorded_run(interval_s=5.0)
    reasons = {record["by"] for record in recorder.records[1:]}
    assert "round_begin" in reasons
    assert "round_end" in reasons
    rounds = [
        record["round"]
        for record in recorder.records[1:]
        if record["by"] == "round_begin"
    ]
    assert rounds == sorted(rounds) and rounds[0] == 1


def test_summary_reports_series_statistics():
    _, recorder = _memory_recorded_run(interval_s=0.5)
    summary = recorder.summary()
    assert summary["runs"] == 1
    assert summary["samples"] == len(recorder.records) - 1
    assert summary["peak_lqt"] >= 1  # the consumer's query lingered
    assert summary["elapsed_s"] > 0
    assert 0.0 <= summary["airtime_util"] <= 1.0


def test_merge_summaries_weights_airtime_by_elapsed():
    merged = merge_summaries(
        [
            {"runs": 1, "samples": 3, "elapsed_s": 10.0, "peak_lqt": 2,
             "cdi_conv_s": 4.0, "airtime_util": 0.5, "final_t": 10.0},
            {"runs": 1, "samples": 5, "elapsed_s": 30.0, "peak_lqt": 7,
             "cdi_conv_s": 1.0, "airtime_util": 0.1, "final_t": 30.0},
        ]
    )
    assert merged["runs"] == 2
    assert merged["samples"] == 8
    assert merged["peak_lqt"] == 7
    assert merged["cdi_conv_s"] == 4.0
    assert merged["final_t"] == 30.0
    assert merged["airtime_util"] == pytest.approx((0.5 * 10 + 0.1 * 30) / 40)


def test_stop_cancels_sampling():
    with recording(path=None, interval_s=0.5):
        scenario = build_grid_scenario(
            rows=3, cols=3, seed=1, device_config=experiment_device_config()
        )
        recorder = scenario.extras["recorder"]
        recorder.stop()
        assert scenario.sim.recorder is None
        before = len(recorder.records)
        scenario.sim.run(until=5.0)
        assert len(recorder.records) == before


# ----------------------------------------------------------------------
# Zero-cost / zero-perturbation contract
# ----------------------------------------------------------------------
def test_unrecorded_scenarios_carry_no_recorder():
    scenario = build_grid_scenario(
        rows=3, cols=3, seed=1, device_config=experiment_device_config()
    )
    assert "recorder" not in scenario.extras
    assert scenario.sim.recorder is None


def test_observe_state_is_read_only():
    scenario = build_grid_scenario(
        rows=3, cols=3, seed=2, device_config=experiment_device_config()
    )
    pdd_experiment(2, metadata_count=150, scenario=scenario, sim_cap_s=40.0)
    first = capture_network_state(
        scenario.topology, scenario.medium, scenario.devices
    )
    second = capture_network_state(
        scenario.topology, scenario.medium, scenario.devices
    )
    assert flatten_state(first) == flatten_state(second)


def test_recorded_run_results_are_bit_identical():
    def run(record):
        if record:
            with recording(path=None, interval_s=0.5):
                outcome = pdd_experiment(3, rows=3, cols=3, metadata_count=150)
        else:
            outcome = pdd_experiment(3, rows=3, cols=3, metadata_count=150)
        result = outcome.first
        return (
            result.recall,
            result.result.latency,
            outcome.total_overhead_bytes,
            result.result.rounds,
        )

    assert run(record=False) == run(record=True)


# ----------------------------------------------------------------------
# Exactness: reconstruction == live capture, at every sample
# ----------------------------------------------------------------------
def test_reconstruction_matches_live_state_at_every_sample(tmp_path):
    path = tmp_path / "tl.jsonl"
    live = []
    with recording(path=str(path), interval_s=0.5, keyframe_every=4):
        scenario = build_grid_scenario(
            rows=3, cols=3, seed=1, device_config=experiment_device_config()
        )
        recorder = scenario.extras["recorder"]
        original = recorder.sample

        def spy(by="manual", round_index=None):
            doc = original(by=by, round_index=round_index)
            live.append(
                (
                    scenario.sim.now,
                    doc["seq"],
                    flatten_state(
                        capture_network_state(
                            scenario.topology, scenario.medium, scenario.devices
                        )
                    ),
                )
            )
            return doc

        recorder.sample = spy
        pdd_experiment(1, metadata_count=150, scenario=scenario, sim_cap_s=40.0)

    load = load_timeline(str(path))
    assert len(load.runs) == 1
    run = load.runs[0]

    # Several samples can share one sim time (round edges + interval);
    # reconstruct_at returns the *last* sample at <= t, so compare the
    # last live capture per distinct time.
    last_at_time = {}
    for t, seq, flat in live:
        last_at_time[t] = (seq, flat)
    assert len(last_at_time) >= 8, "need a spread of sample times"
    keyframe_hits = delta_hits = 0
    for t, (seq, flat) in last_at_time.items():
        sample_t, sample_seq, reconstructed = reconstruct_at(run, t)
        assert sample_t == t
        assert sample_seq == seq
        assert reconstructed == flat, f"mismatch at t={t} seq={seq}"
        if seq % 4 == 0:
            keyframe_hits += 1
        else:
            delta_hits += 1
    # The property must have been exercised on both record kinds.
    assert keyframe_hits > 0
    assert delta_hits > 0
