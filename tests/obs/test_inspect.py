"""Unit tests for trace inspection (`repro inspect`)."""

from repro.obs.inspect import inspect_file, render, summarize
from repro.obs.trace import JsonlSink, TraceBus


def _sample_events():
    return [
        {"t": 0.0, "kind": "frame_sent", "run": 1, "node": 1,
         "frame_kind": "query", "size": 100},
        {"t": 0.1, "kind": "frame_sent", "run": 1, "node": 2,
         "frame_kind": "response", "size": 900},
        {"t": 0.2, "kind": "frame_lost", "run": 1, "node": 3,
         "reason": "collision"},
        {"t": 0.3, "kind": "retransmit", "run": 1, "node": 2},
        {"t": 0.4, "kind": "abandon", "run": 2, "node": 2},
        {"t": 0.5, "kind": "sim_run_end", "run": 2, "processed": 5},
    ]


def test_summarize_aggregates():
    summary = summarize(_sample_events())
    assert summary["total"] == 6
    assert summary["by_kind"]["frame_sent"] == 2
    assert summary["by_node"] == {1: 1, 2: 3, 3: 1}
    assert summary["frames"] == {
        "query": {"frames": 1, "bytes": 100},
        "response": {"frames": 1, "bytes": 900},
    }
    assert summary["losses"] == {"collision": 1}
    assert summary["retransmits"] == 1
    assert summary["abandons"] == 1
    assert summary["runs"][1]["events"] == 4
    assert summary["runs"][2]["t_min"] == 0.4
    assert summary["runs"][2]["t_max"] == 0.5


def test_render_report_sections():
    text = render(_sample_events(), top_nodes=2)
    assert "6 events across 2 simulation run(s)" in text
    assert "events by kind:" in text
    assert "on-air frames by message kind:" in text
    assert "1000 bytes" in text  # TOTAL row: 100 + 900
    assert "lost (collision): 1" in text
    assert "busiest nodes (top 2):" in text
    # top-2 cut: node 1 (1 event) ties node 3 but only two rows print
    assert text.count("node ") == 2


def test_render_empty_trace():
    assert render([]) == "trace: empty (no events)"


def test_inspect_file_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    bus = TraceBus(clock=lambda: 1.0, run_id=3)
    with JsonlSink(str(path)) as sink:
        bus.subscribe(sink)
        bus.emit("frame_sent", node=5, frame_kind="ack", size=48)
    report = inspect_file(str(path))
    assert "1 events across 1 simulation run(s)" in report
    assert "ack" in report
    assert "48 bytes" in report
