"""Memory telemetry: phase snapshots, subsystem attribution, hooks."""

import tracemalloc

from repro.obs.memprof import (
    MemoryTelemetry,
    _subsystem_of_filename,
    active_memory_telemetry,
    memory_phase,
)


def test_subsystem_of_filename_mapping():
    assert (
        _subsystem_of_filename("/repo/src/repro/net/medium.py") == "net.medium"
    )
    assert _subsystem_of_filename("/repo/src/repro/bench.py") == "bench"
    assert (
        _subsystem_of_filename("/repo/src/repro/obs/__init__.py") == "obs"
    )
    assert _subsystem_of_filename("/usr/lib/python3/json/decoder.py") == (
        "(stdlib/other)"
    )


def test_memory_phase_is_noop_when_inactive():
    assert active_memory_telemetry() is None
    memory_phase("setup")  # must not raise, must not start tracemalloc


def test_activate_records_phases_and_stops_tracing():
    was_tracing = tracemalloc.is_tracing()
    telemetry = MemoryTelemetry(top=3)
    with telemetry.activate():
        assert tracemalloc.is_tracing()
        assert active_memory_telemetry() is telemetry
        ballast = [object() for _ in range(1000)]
        memory_phase("alloc")
        del ballast
        memory_phase("free")
    assert active_memory_telemetry() is None
    assert tracemalloc.is_tracing() == was_tracing
    assert [record.name for record in telemetry.phases] == ["alloc", "free"]
    alloc = telemetry.phases[0]
    assert alloc.current_kb > 0
    assert alloc.peak_kb >= alloc.current_kb
    assert len(alloc.growth) <= 3


def test_render_and_summary():
    telemetry = MemoryTelemetry()
    assert "no phase boundaries" in telemetry.render()
    with telemetry.activate():
        data = list(range(5000))
        memory_phase("grow")
        del data
    text = telemetry.render()
    assert "grow" in text
    assert "KiB" in text
    summary = telemetry.summary()
    assert summary["phases"] == 1
    assert summary["peak_traced_kb"] > 0


def test_experiment_crosses_phase_boundaries():
    # setup (scenario build) + discovery + per-round boundaries all fire.
    from repro.experiments.figures.common import pdd_experiment

    telemetry = MemoryTelemetry()
    with telemetry.activate():
        pdd_experiment(seed=1, rows=3, cols=3, metadata_count=10)
    names = [record.name for record in telemetry.phases]
    assert "setup" in names
    assert "discovery" in names
    assert any(name.startswith("round_") for name in names)
