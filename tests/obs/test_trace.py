"""Unit tests for the trace bus and its sinks."""

import pytest

from repro.obs.trace import (
    JsonlSink,
    ListSink,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    global_sink,
    global_sinks,
    read_jsonl,
)
from repro.sim.simulator import Simulator


def test_events_carry_virtual_time_in_order():
    sim = Simulator()
    sink = sim.trace.subscribe(ListSink())
    for delay in (0.5, 0.1, 0.9):
        sim.schedule(delay, lambda d=delay: sim.trace.emit("tick", delay=d))
    sim.run()
    ticks = [e for e in sink.events if e.kind == "tick"]
    assert [e.time for e in ticks] == [0.1, 0.5, 0.9]
    assert [e.fields["delay"] for e in ticks] == [0.1, 0.5, 0.9]
    # every event is stamped with this bus's run id
    assert {e.run for e in sink.events} == {sim.trace.run_id}


def test_disabled_bus_emits_nothing():
    sim = Simulator()
    assert sim.trace.enabled is False
    sim.schedule(0.1, lambda: sim.trace.emit("tick"))
    sim.run()
    # emit() without sinks builds no event but still tallies the kind, so
    # unguarded emission sites stay countable at near-zero cost.
    assert sim.trace.emit("tick") is None
    assert sim.trace.counts["tick"] == 2
    # guarded sites never called emit(), so run() itself tallied nothing
    assert "sim_run_end" not in sim.trace.counts


def test_unsubscribe_disables_bus():
    bus = TraceBus()
    sink = bus.subscribe(ListSink())
    assert bus.enabled is True
    bus.unsubscribe(sink)
    assert bus.enabled is False
    assert bus.emit("tick") is None
    assert bus.counts["tick"] == 1
    assert not sink.events


def test_sim_run_end_event_reports_processed_count():
    sim = Simulator()
    sink = sim.trace.subscribe(ListSink())
    for delay in (0.1, 0.2, 0.3):
        sim.schedule(delay, lambda: None)
    sim.run()
    ends = [e for e in sink.events if e.kind == "sim_run_end"]
    assert len(ends) == 1
    assert ends[0].fields["processed"] == 3
    assert ends[0].fields["pending"] == 0


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    clock_value = [0.0]
    bus = TraceBus(clock=lambda: clock_value[0], run_id=7)
    with JsonlSink(str(path)) as sink:
        bus.subscribe(sink)
        bus.emit("frame_sent", node=3, size=100, frame_kind="query")
        clock_value[0] = 1.5
        bus.emit("frame_lost", node=4, reason="collision")
    events = read_jsonl(str(path))
    assert events == [
        {"t": 0.0, "kind": "frame_sent", "run": 7, "node": 3, "size": 100,
         "frame_kind": "query"},
        {"t": 1.5, "kind": "frame_lost", "run": 7, "node": 4,
         "reason": "collision"},
    ]


def test_jsonl_sink_creates_file_even_without_events(tmp_path):
    path = tmp_path / "empty.jsonl"
    JsonlSink(str(path)).close()
    assert path.exists()
    assert read_jsonl(str(path)) == []


def test_ring_buffer_keeps_most_recent():
    bus = TraceBus(clock=lambda: 0.0)
    sink = bus.subscribe(RingBufferSink(capacity=3))
    for i in range(10):
        bus.emit("tick", i=i)
    assert sink.seen == 10
    assert sink.dropped == 7
    assert [e.fields["i"] for e in sink.events] == [7, 8, 9]


def test_global_sink_attaches_to_new_simulators():
    captured = ListSink()
    with global_sink(captured):
        assert captured in global_sinks()
        sim = Simulator()
        assert sim.trace.enabled is True
        sim.schedule(0.1, lambda: sim.trace.emit("tick"))
        sim.run()
    assert captured not in global_sinks()
    assert any(e.kind == "tick" for e in captured.events)
    # simulators created after the scope closes are not attached
    assert Simulator().trace.enabled is False


def test_run_ids_distinguish_buses():
    assert Simulator().trace.run_id != Simulator().trace.run_id


def test_sinkless_emit_never_builds_an_event():
    # The short-circuit must not even read the clock: a bus whose clock
    # raises proves emit() returns before any event construction.
    def exploding_clock():
        raise AssertionError("sink-less emit must not read the clock")

    bus = TraceBus(clock=exploding_clock)
    assert bus.emit("tick", payload="x" * 64) is None
    assert bus.counts["tick"] == 1
    bus.subscribe(ListSink())
    with pytest.raises(AssertionError):
        bus.emit("tick")


def test_sinkless_emit_micro_benchmark():
    """Guard the satellite perf claim: the sink-less fast path must not be
    slower than full event construction + sink fan-out (best of 3 each,
    so scheduler noise cannot flake the comparison)."""
    import timeit

    iterations = 20_000
    quiet = TraceBus(clock=lambda: 0.0)
    busy = TraceBus(clock=lambda: 0.0)
    busy.subscribe(ListSink())

    def run(bus):
        return min(
            timeit.repeat(
                lambda: bus.emit("tick", node=1, size=100),
                repeat=3,
                number=iterations,
            )
        )

    fast = run(quiet)
    slow = run(busy)
    assert fast <= slow, (
        f"sink-less emit ({fast:.4f}s/{iterations}) must not be slower "
        f"than sink fan-out ({slow:.4f}s/{iterations})"
    )


def test_emission_counts_tally_per_kind():
    bus = TraceBus()
    bus.subscribe(ListSink())
    bus.emit("a")
    bus.emit("a")
    bus.emit("b")
    assert bus.counts == {"a": 2, "b": 1}


# ----------------------------------------------------------------------
# JsonlSink durability (flush + fsync on exit, fork safety)
# ----------------------------------------------------------------------
def test_jsonl_sink_close_flushes_and_is_idempotent(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(str(path))
    sink.handle(TraceEvent(1.0, "x", None, 1, {}))
    sink.close()
    sink.close()  # second close is a no-op
    assert read_jsonl(str(path)) == [{"t": 1.0, "kind": "x", "run": 1}]
    # Post-close events are dropped silently, not errors.
    sink.handle(TraceEvent(2.0, "y", None, 1, {}))
    assert read_jsonl(str(path)) == [{"t": 1.0, "kind": "x", "run": 1}]


def test_jsonl_sink_context_manager_closes(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlSink(str(path)) as sink:
        sink.handle(TraceEvent(1.0, "x", None, 1, {}))
    assert sink._file is None
    assert read_jsonl(str(path))


def test_jsonl_sink_close_in_foreign_pid_keeps_file(tmp_path):
    # A sink inherited across fork shares its buffer with the parent:
    # closing in the child must neither flush nor drop the reference
    # (dropping it would let GC close — and flush — the parent's bytes).
    import os as _os

    sink = JsonlSink(str(tmp_path / "t.jsonl"))
    sink._pid = _os.getpid() + 1
    sink.close()
    assert sink._file is not None
    sink.flush()  # pid-guarded too: must not touch the file
    sink._pid = _os.getpid()
    sink.close()


def test_jsonl_sink_registers_atexit_close(tmp_path):
    import atexit

    unregistered = []
    original = atexit.unregister

    def spy(func):
        unregistered.append(func)
        return original(func)

    atexit.unregister = spy
    try:
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
    finally:
        atexit.unregister = original
    # close() tears down its own atexit hook (no leak across many runs).
    assert sink.close in unregistered
