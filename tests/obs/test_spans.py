"""Span reconstruction from crafted (and deliberately damaged) streams.

Covers the sharding realities the loader must absorb: out-of-order shard
interleaving, truncated JSONL tails from killed workers, duplicate events
from retry-once crash isolation, and id collisions across forked-worker
shards — none of which may corrupt the reconstructed span trees.
"""

import json

import pytest

from repro.obs.spans import (
    build_spans,
    load_trace,
    render_spans,
    render_waterfall,
    resolve_trace_paths,
    scope_of,
)


def _ev(kind, t, run=1, shard="trace.jsonl", **fields):
    event = {"t": t, "kind": kind, "run": run, "shard": shard}
    event.update(fields)
    return event


def _write(path, events):
    path.write_text(
        "".join(json.dumps(e) + "\n" for e in events), encoding="utf-8"
    )


# ----------------------------------------------------------------------
# Path resolution
# ----------------------------------------------------------------------
def test_resolve_plain_file(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("")
    assert resolve_trace_paths(str(path)) == [str(path)]


def test_resolve_base_file_picks_up_worker_shards(tmp_path):
    # After a --jobs N run the parent's file exists but is empty; the
    # workers wrote t.0.jsonl / t.1.jsonl next to it.
    base = tmp_path / "t.jsonl"
    base.write_text("")
    shard0 = tmp_path / "t.0.jsonl"
    shard1 = tmp_path / "t.1.jsonl"
    shard0.write_text("")
    shard1.write_text("")
    assert resolve_trace_paths(str(base)) == [str(base), str(shard0), str(shard1)]


def test_resolve_shards_without_base_file(tmp_path):
    shard = tmp_path / "t.0.jsonl"
    shard.write_text("")
    assert resolve_trace_paths(str(tmp_path / "t.jsonl")) == [str(shard)]


def test_resolve_shards_sort_numerically_not_lexically(tmp_path):
    base = tmp_path / "t.jsonl"
    base.write_text("")
    names = ["t.10.jsonl", "t.2.jsonl", "t.0.jsonl"]
    for name in names:
        (tmp_path / name).write_text("")
    resolved = resolve_trace_paths(str(base))
    assert [p.rsplit("/", 1)[-1] for p in resolved] == [
        "t.jsonl", "t.0.jsonl", "t.2.jsonl", "t.10.jsonl"]


def test_resolve_directory(tmp_path):
    (tmp_path / "b.jsonl").write_text("")
    (tmp_path / "a.jsonl").write_text("")
    (tmp_path / "notes.txt").write_text("")
    resolved = resolve_trace_paths(str(tmp_path))
    assert [p.rsplit("/", 1)[-1] for p in resolved] == ["a.jsonl", "b.jsonl"]


def test_resolve_glob(tmp_path):
    (tmp_path / "t.0.jsonl").write_text("")
    (tmp_path / "t.1.jsonl").write_text("")
    resolved = resolve_trace_paths(str(tmp_path / "t.*.jsonl"))
    assert len(resolved) == 2


def test_resolve_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="no such trace file"):
        resolve_trace_paths(str(tmp_path / "nope.jsonl"))


def test_resolve_empty_glob_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="no trace files match"):
        resolve_trace_paths(str(tmp_path / "*.jsonl"))


def test_resolve_empty_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="jsonl trace files in"):
        resolve_trace_paths(str(tmp_path))


# ----------------------------------------------------------------------
# Loading: damage tolerance
# ----------------------------------------------------------------------
def test_truncated_tail_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "t.jsonl"
    good = {"t": 1.0, "kind": "tick", "run": 1}
    path.write_text(
        json.dumps(good) + "\n" + '{"t": 2.0, "kind": "tru', encoding="utf-8"
    )
    load = load_trace(str(path))
    assert load.skipped_lines == 1
    assert len(load.events) == 1
    assert load.events[0]["kind"] == "tick"


def test_non_dict_lines_are_skipped(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('[1, 2]\n"text"\n' + json.dumps({"t": 0.0, "kind": "x"}) + "\n")
    load = load_trace(str(path))
    assert load.skipped_lines == 2
    assert len(load.events) == 1


def test_duplicate_lines_within_a_shard_are_dropped(tmp_path):
    # Retry-once crash isolation can replay a trial into the same shard.
    path = tmp_path / "t.jsonl"
    line = json.dumps({"t": 1.0, "kind": "tick", "run": 1})
    path.write_text(line + "\n" + line + "\n")
    load = load_trace(str(path))
    assert load.duplicates_dropped == 1
    assert len(load.events) == 1


def test_identical_lines_in_different_shards_both_kept(tmp_path):
    # Two workers can legitimately log identical-looking events (their id
    # counters collide after fork) — dedup is per shard only.
    base = tmp_path / "t.jsonl"
    base.write_text("")
    line = json.dumps({"t": 1.0, "kind": "tick", "run": 1})
    (tmp_path / "t.0.jsonl").write_text(line + "\n")
    (tmp_path / "t.1.jsonl").write_text(line + "\n")
    load = load_trace(str(base))
    assert load.duplicates_dropped == 0
    assert len(load.events) == 2
    assert {e["shard"] for e in load.events} == {"t.0.jsonl", "t.1.jsonl"}


def test_shard_merge_orders_by_timestamp(tmp_path):
    base = tmp_path / "t.jsonl"
    base.write_text("")
    _write(tmp_path / "t.0.jsonl", [
        {"t": 0.5, "kind": "a", "run": 1},
        {"t": 2.0, "kind": "b", "run": 1},
    ])
    _write(tmp_path / "t.1.jsonl", [
        {"t": 0.1, "kind": "c", "run": 2},
        {"t": 1.0, "kind": "d", "run": 2},
    ])
    load = load_trace(str(base))
    assert [e["kind"] for e in load.events] == ["c", "a", "d", "b"]
    assert load.events[0]["shard"] == "t.1.jsonl"


def test_scope_of_uses_shard_and_run():
    assert scope_of({"shard": "t.0.jsonl", "run": 3}) == ("t.0.jsonl", 3)
    assert scope_of({}) == ("", 0)


# ----------------------------------------------------------------------
# Span reconstruction
# ----------------------------------------------------------------------
def test_query_span_collects_correlated_events():
    events = [
        _ev("query_issued", 1.0, query_id=10, proto="pdd", round=1,
            consumer=5, item="env", expires_at=31.0),
        _ev("query_forwarded", 1.2, query_id=10, node=3, hop=1),
        _ev("bloom_prune", 1.3, query_id=10, node=4, hits=0, misses=2),
        _ev("response_sent", 1.4, query_id=10, node=4, proto="pdd", entries=2),
        _ev("response_sent", 1.5, query_ids=[10], node=6, proto="pdd", entries=1),
    ]
    forest = build_spans(events)
    assert len(forest.queries) == 1
    span = forest.queries[0]
    assert span.query_id == 10
    assert span.proto == "pdd"
    assert span.round == 1
    assert span.consumer == 5
    assert span.issued_at == 1.0
    assert span.expires_at == 31.0
    assert len(span.events) == 5
    assert span.count("response_sent") == 2
    assert span.start == 1.0
    assert span.end == 1.5
    assert not forest.orphans


def test_out_of_order_interleaving_cannot_orphan_events():
    # After a timestamp merge across shards, a query's forward can land in
    # the stream *before* its issue record (clock skew between runs in one
    # shard file).  The two-pass builder must still attach it.
    events = [
        _ev("query_forwarded", 0.5, query_id=10, node=3),
        _ev("query_issued", 1.0, query_id=10, proto="pdd"),
    ]
    forest = build_spans(events)
    assert len(forest.queries) == 1
    assert not forest.orphans
    span = forest.queries[0]
    assert span.count("query_forwarded") == 1
    # attached events come back in time order regardless of stream order
    assert [e["kind"] for e in span.events] == ["query_forwarded", "query_issued"]


def test_colliding_ids_across_shards_stay_separate():
    # Forked workers inherit the per-process id counters, so run ids AND
    # query ids collide across shards; spans must never merge across that
    # boundary.
    events = [
        _ev("query_issued", 1.0, shard="t.0.jsonl", query_id=10, proto="pdd",
            consumer=1),
        _ev("query_issued", 1.1, shard="t.1.jsonl", query_id=10, proto="pdd",
            consumer=2),
        _ev("response_sent", 1.2, shard="t.0.jsonl", query_id=10, node=4,
            proto="pdd"),
        _ev("response_sent", 1.3, shard="t.1.jsonl", query_id=10, node=9,
            proto="pdd"),
    ]
    forest = build_spans(events)
    assert len(forest.queries) == 2
    by_shard = {s.scope[0]: s for s in forest.queries}
    assert by_shard["t.0.jsonl"].consumer == 1
    assert by_shard["t.0.jsonl"].events[-1]["node"] == 4
    assert by_shard["t.1.jsonl"].consumer == 2
    assert by_shard["t.1.jsonl"].events[-1]["node"] == 9


def test_duplicate_events_do_not_duplicate_spans():
    # The loader drops exact duplicate *lines*; a replayed trial that got
    # slightly different timestamps still yields one span per query id.
    events = [
        _ev("query_issued", 1.0, query_id=10, proto="pdd"),
        _ev("query_issued", 1.0, query_id=10, proto="pdd", item="env"),
    ]
    forest = build_spans(events)
    assert len(forest.queries) == 1
    assert forest.queries[0].item == "env"  # later record refines the span


def test_chunk_division_tree_links_children():
    events = [
        _ev("chunk_request", 1.0, query_id=100, root=100, parent=None,
            consumer=1, item="clip", neighbor=2, chunks=8),
        _ev("chunk_request", 2.0, query_id=101, root=100, parent=100,
            consumer=1, neighbor=3, chunks=4),
        _ev("chunk_request", 2.1, query_id=102, root=100, parent=100,
            consumer=1, neighbor=4, chunks=4),
        _ev("chunk_request", 3.0, query_id=103, root=100, parent=101,
            consumer=1, neighbor=5, chunks=2),
    ]
    forest = build_spans(events)
    assert len(forest.queries) == 4
    roots = forest.roots()
    assert len(roots) == 1
    root = roots[0]
    assert root.query_id == 100
    assert root.proto == "chunk"
    assert root.tree_size() == 4
    assert [s.query_id for s in root.walk()] == [100, 101, 103, 102]
    assert [c.query_id for c in root.children] == [101, 102]
    assert root.children[0].children[0].query_id == 103


def test_lost_parent_shard_promotes_child_to_root():
    # If the parent's shard was truncated away, the child's parent id
    # resolves to nothing — it must surface as a root, not vanish.
    events = [
        _ev("chunk_request", 2.0, query_id=101, root=100, parent=100),
    ]
    forest = build_spans(events)
    assert len(forest.roots()) == 1
    assert forest.roots()[0].query_id == 101
    assert forest.roots()[0].parent_id is None


def test_uncorrelated_events_become_orphans():
    events = [
        _ev("query_issued", 1.0, query_id=10, proto="pdd"),
        _ev("frame_sent", 1.1, node=2, size=80),          # no query_id at all
        _ev("response_sent", 1.2, query_id=99, node=4),   # unknown query
    ]
    forest = build_spans(events)
    assert len(forest.queries) == 1
    assert len(forest.orphans) == 2


def test_by_proto_filters_spans():
    events = [
        _ev("query_issued", 1.0, query_id=10, proto="pdd"),
        _ev("query_issued", 2.0, query_id=11, proto="cdi"),
        _ev("chunk_request", 3.0, query_id=12, root=12, parent=None),
    ]
    forest = build_spans(events)
    assert [s.query_id for s in forest.by_proto("pdd")] == [10]
    assert [s.query_id for s in forest.by_proto("chunk")] == [12]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_spans_lists_roots_and_waterfalls():
    events = [
        _ev("query_issued", 1.0, query_id=10, proto="pdd", round=1,
            consumer=5, expires_at=31.0),
        _ev("response_sent", 1.4, query_id=10, node=4, proto="pdd", entries=2),
    ]
    text = render_spans(build_spans(events))
    assert "spans: 1 across 1 root(s)" in text
    assert "pdd" in text
    assert "response_sent" in text  # the waterfall section


def test_render_empty_forest():
    assert "spans: none" in render_spans(build_spans([]))


def test_render_waterfall_truncates():
    events = [_ev("query_issued", 1.0, query_id=10, proto="pdd")]
    events += [
        _ev("query_forwarded", 1.0 + i * 0.01, query_id=10, node=i)
        for i in range(50)
    ]
    span = build_spans(events).queries[0]
    lines = render_waterfall(span, max_events=5)
    assert any("truncated" in line for line in lines)


# ----------------------------------------------------------------------
# End-to-end: damaged sharded trace still yields intact trees
# ----------------------------------------------------------------------
def test_damaged_sharded_trace_reconstructs_clean_trees(tmp_path):
    base = tmp_path / "t.jsonl"
    base.write_text("")
    shard0 = [
        {"t": 1.0, "kind": "query_issued", "run": 1, "query_id": 10,
         "proto": "pdd", "consumer": 1},
        {"t": 1.5, "kind": "response_sent", "run": 1, "query_id": 10,
         "node": 4, "proto": "pdd"},
    ]
    dup = {"t": 0.9, "kind": "chunk_request", "run": 2, "query_id": 10,
           "root": 10, "parent": None, "consumer": 2}
    lines1 = [json.dumps(dup), json.dumps(dup),          # replayed trial
              json.dumps({"t": 1.2, "kind": "chunk_request", "run": 2,
                          "query_id": 11, "root": 10, "parent": 10}),
              '{"t": 9.9, "kind": "trunc']               # killed mid-write
    _write(tmp_path / "t.0.jsonl", shard0)
    (tmp_path / "t.1.jsonl").write_text("\n".join(lines1) + "\n")

    load = load_trace(str(base))
    assert load.skipped_lines == 1
    assert load.duplicates_dropped == 1
    forest = build_spans(load.events)
    # Two independent trees: the pdd query in shard 0 (query_id 10) and
    # the chunk tree in shard 1 (same query_id 10, different scope).
    assert len(forest.roots()) == 2
    chunk_root = next(s for s in forest.roots() if s.proto == "chunk")
    assert chunk_root.tree_size() == 2
    pdd_root = next(s for s in forest.roots() if s.proto == "pdd")
    assert pdd_root.count("response_sent") == 1
    assert not forest.orphans
