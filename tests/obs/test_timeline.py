"""Timeline loading, reconstruction, diffing, series and rendering."""

import json

import pytest

from repro.obs.recorder import SEP
from repro.obs.timeline import (
    DEFAULT_SERIES,
    TimelineError,
    diff_between,
    inspect_timeline,
    load_timeline,
    net_series,
    node_series,
    reconstruct_at,
    render_at,
    render_diff,
    render_timeline,
    sparkline,
    state_at,
)


def _key(node, *parts):
    return SEP.join(["nodes", str(node), *parts])


def _write(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def _synthetic(path):
    """Two keyframes with deltas in between; one run, one node joining."""
    records = [
        {"rec": "meta", "run": 1, "t": 0.0, "interval": 1.0, "keyframe_every": 3},
        {
            "rec": "key",
            "run": 1,
            "seq": 0,
            "t": 0.0,
            "by": "start",
            "state": {
                _key(0, "lqt", "disc", "q1"): 5.0,
                _key(0, "cdi", "size"): 0,
                _key(0, "store", "metadata"): 10,
                f"net{SEP}airtime_s": 0.0,
                f"net{SEP}active_tx": 0,
                f"net{SEP}degree{SEP}2": 1,
            },
        },
        {
            "rec": "delta",
            "run": 1,
            "seq": 1,
            "t": 1.0,
            "by": "interval",
            "set": {
                _key(0, "cdi", "size"): 3,
                _key(1, "store", "metadata"): 4,
                f"net{SEP}airtime_s": 0.5,
            },
            "del": [],
        },
        {
            "rec": "delta",
            "run": 1,
            "seq": 2,
            "t": 2.0,
            "by": "interval",
            "set": {f"net{SEP}airtime_s": 0.6},
            "del": [_key(0, "lqt", "disc", "q1")],
        },
        {
            "rec": "key",
            "run": 1,
            "seq": 3,
            "t": 3.0,
            "by": "interval",
            "state": {
                _key(0, "cdi", "size"): 3,
                _key(0, "store", "metadata"): 10,
                _key(1, "store", "metadata"): 4,
                f"net{SEP}airtime_s": 0.6,
                f"net{SEP}active_tx": 0,
                f"net{SEP}degree{SEP}2": 1,
            },
        },
    ]
    _write(path, records)
    return records


def test_load_scopes_and_skips_foreign_lines(tmp_path):
    path = tmp_path / "tl.jsonl"
    records = _synthetic(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "frame_sent", "t": 1.0}\n')  # trace event
        handle.write("not json at all\n")
    load = load_timeline(str(path))
    assert load.skipped_lines == 2
    assert len(load.runs) == 1
    run = load.runs[0]
    assert run.scope == ("tl.jsonl", 1)
    assert run.meta["interval"] == 1.0
    assert len(run.records) == len(records) - 1
    assert run.t_min == 0.0 and run.t_max == 3.0


def test_reconstruct_at_keyframe_and_delta_positions(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    run = load_timeline(str(path)).runs[0]

    t, seq, flat = reconstruct_at(run, 0.0)
    assert (t, seq) == (0.0, 0)
    assert flat[_key(0, "lqt", "disc", "q1")] == 5.0

    # Delta position: keyframe + delta replay.
    t, seq, flat = reconstruct_at(run, 1.5)  # between samples -> t=1 wins
    assert (t, seq) == (1.0, 1)
    assert flat[_key(0, "cdi", "size")] == 3
    assert flat[_key(1, "store", "metadata")] == 4
    assert flat[_key(0, "lqt", "disc", "q1")] == 5.0  # deleted only at t=2

    t, seq, flat = reconstruct_at(run, 2.0)
    assert _key(0, "lqt", "disc", "q1") not in flat

    # Past the end -> final sample.
    t, seq, flat = reconstruct_at(run, 99.0)
    assert (t, seq) == (3.0, 3)


def test_reconstruct_before_first_sample_raises(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    run = load_timeline(str(path)).runs[0]
    with pytest.raises(TimelineError):
        reconstruct_at(run, -1.0)


def test_reconstruct_without_keyframe_raises(tmp_path):
    path = tmp_path / "tl.jsonl"
    _write(
        path,
        [
            {"rec": "delta", "run": 1, "seq": 1, "t": 1.0, "set": {}, "del": []},
        ],
    )
    run = load_timeline(str(path)).runs[0]
    with pytest.raises(TimelineError):
        reconstruct_at(run, 1.0)


def test_state_at_unflattens(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    run = load_timeline(str(path)).runs[0]
    nested = state_at(run, 3.0)
    assert nested["nodes"]["1"]["store"]["metadata"] == 4
    assert nested["net"]["airtime_s"] == 0.6


def test_diff_between(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    run = load_timeline(str(path)).runs[0]
    diff = diff_between(run, 0.0, 3.0)
    assert diff["added"] == {_key(1, "store", "metadata"): 4}
    assert diff["removed"] == {_key(0, "lqt", "disc", "q1"): 5.0}
    assert diff["changed"][_key(0, "cdi", "size")] == (0, 3)
    assert diff["changed"][f"net{SEP}airtime_s"] == (0.0, 0.6)


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"
    ramp = sparkline([0, 1, 2, 3])
    assert ramp[0] == "▁" and ramp[-1] == "█"
    # Downsampling takes each bucket's max: a single spike must survive.
    values = [0.0] * 300
    values[150] = 10.0
    assert "█" in sparkline(values, width=60)
    assert len(sparkline(values, width=60)) == 60


def test_node_series_count_and_value_modes(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    run = load_timeline(str(path)).runs[0]
    lqt = node_series(run, "lqt")  # count mode
    assert lqt["0"] == [1.0, 1.0, 0.0, 0.0]
    meta = node_series(run, "meta")  # value mode
    assert meta["0"] == [10.0, 10.0, 10.0, 10.0]
    # Node 1 joined at sample 1: zero-filled before it appeared.
    assert meta["1"] == [0.0, 4.0, 4.0, 4.0]


def test_node_series_rejects_unknown_name(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    run = load_timeline(str(path)).runs[0]
    with pytest.raises(TimelineError):
        node_series(run, "nope")


def test_net_series_differentiates_airtime(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    run = load_timeline(str(path)).runs[0]
    series = net_series(run)
    assert series["active_tx"] == [0.0, 0.0, 0.0, 0.0]
    # utilization = d(airtime)/dt between consecutive samples
    assert series["airtime_util"] == pytest.approx([0.0, 0.5, 0.1, 0.0])
    assert series["degree_mean"] == [2.0, 2.0, 2.0, 2.0]


def test_render_timeline_mentions_series_and_nodes(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    text = render_timeline(load_timeline(str(path)), series=DEFAULT_SERIES)
    assert "timeline run tl.jsonl:1" in text
    assert "airtime_util" in text
    assert "series lqt" in text
    assert "node 0" in text


def test_render_at_tabulates_nodes(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    text = render_at(load_timeline(str(path)), 3.0)
    assert "state at t=3" in text
    assert "node" in text and "lqt" in text and "chunks" in text


def test_render_diff_lists_changes(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    text = render_diff(load_timeline(str(path)), 0.0, 3.0)
    assert "1 added, 1 removed, 2 rewritten" in text
    assert "+ nodes.1.store.metadata = 4" in text
    assert "- nodes.0.lqt.disc.q1" in text
    assert "~ nodes.0.cdi.size: 0 -> 3" in text


def test_inspect_timeline_exit_codes(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    code, text = inspect_timeline(str(path), timeline=True)
    assert code == 0 and "series lqt" in text
    code, text = inspect_timeline(str(path), at=2.0)
    assert code == 0 and "state at t=2" in text
    # Reconstruction failure gates with exit 2 (the CI contract).
    code, text = inspect_timeline(str(path), at=-5.0)
    assert code == 2 and "timeline error" in text


def test_inspect_timeline_json_mode(tmp_path):
    path = tmp_path / "tl.jsonl"
    _synthetic(path)
    code, text = inspect_timeline(
        str(path), timeline=True, at=3.0, diff=(0.0, 3.0), as_json=True
    )
    assert code == 0
    doc = json.loads(text)
    assert doc["runs"][0]["samples"] == 4
    assert doc["at"]["tl.jsonl:1"]["nodes"]["1"]["store"]["metadata"] == 4
    assert doc["diff"]["tl.jsonl:1"]["changed"]["nodes.0.cdi.size"] == [0, 3]
    assert "lqt" in doc["series"]["tl.jsonl:1"]


def test_inspect_timeline_merges_shards(tmp_path):
    _synthetic(tmp_path / "tl.0.jsonl")
    records = _synthetic(tmp_path / "tl.1.jsonl")
    for record in records:
        record["run"] = 7
    _write(tmp_path / "tl.1.jsonl", records)
    # The base path expands to its per-worker shards, even when the base
    # file itself was never written (workers own all the records).
    load = load_timeline(str(tmp_path / "tl.jsonl"))
    assert [run.scope for run in load.runs] == [
        ("tl.0.jsonl", 1),
        ("tl.1.jsonl", 7),
    ]


# ----------------------------------------------------------------------
# --series downsampling edge cases
# ----------------------------------------------------------------------
def test_inspect_series_empty_timeline(tmp_path):
    path = tmp_path / "tl.jsonl"
    path.write_text("")
    code, text = inspect_timeline(str(path), timeline=True, series=["lqt"])
    assert code == 0
    assert "empty" in text


def test_inspect_series_single_sample(tmp_path):
    path = tmp_path / "tl.jsonl"
    _write(
        path,
        [
            {"rec": "meta", "run": 1, "t": 0.0, "interval": 1.0, "keyframe_every": 3},
            {
                "rec": "key",
                "run": 1,
                "seq": 0,
                "t": 0.0,
                "by": "start",
                "state": {
                    _key(0, "lqt", "disc", "q1"): 2.0,
                    f"net{SEP}airtime_s": 0.0,
                    f"net{SEP}active_tx": 0,
                },
            },
        ],
    )
    code, text = inspect_timeline(str(path), timeline=True, series=["lqt"])
    assert code == 0
    assert "series lqt" in text
    run = load_timeline(str(path)).runs[0]
    for values in node_series(run, "lqt").values():
        assert len(values) == 1
        assert len(sparkline(values)) == 1


def test_sparkline_single_flat_value():
    assert sparkline([5.0]) == "▁"


def test_sparkline_at_exact_downsample_threshold_keeps_every_sample():
    # len(values) == width: no bucketing, each sample keeps its own cell.
    values = [0.0] * 59 + [9.0]
    line = sparkline(values, width=60)
    assert len(line) == 60
    assert line[:59] == "▁" * 59
    assert line[-1] == "█"


def test_sparkline_one_past_threshold_buckets_by_max():
    # len(values) == width + 1: the last bucket covers two samples and a
    # spike in either of them must survive the downsampling.
    values = [0.0] * 60 + [9.0]
    line = sparkline(values, width=60)
    assert len(line) == 60
    assert line.count("█") == 1
    assert line[-1] == "█"
