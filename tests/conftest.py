"""Shared pytest fixtures and Hypothesis settings profiles."""

from __future__ import annotations

import os
import random

import pytest

from repro.sim.simulator import Simulator

try:
    from hypothesis import settings
except ImportError:  # property tests skip themselves without hypothesis
    settings = None

if settings is not None:
    # CI pins HYPOTHESIS_PROFILE=derandomize so property tests draw their
    # examples from a fixed seed: a red build reproduces locally from the
    # failing example alone, and the determinism gates never flake on an
    # unlucky draw.  The deadline is lifted because shared CI runners
    # stall unpredictably, which is load, not a bug.
    settings.register_profile("derandomize", derandomize=True, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(1234)
