"""Shared pytest fixtures."""

from __future__ import annotations

import random

import pytest

from repro.sim.simulator import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(1234)
