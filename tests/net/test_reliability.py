"""Unit tests for per-hop ack/retransmission (§V-1)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.message import AckMessage, Frame, make_ack_frame
from repro.net.reliability import (
    ReliabilityConfig,
    ReliabilityReceiver,
    ReliabilitySender,
)


def frame(receivers=frozenset({2}), size=500):
    return Frame(
        sender=1, payload="p", payload_size=size, receivers=receivers
    )


def make_sender(sim, config=None, submit_log=None):
    log = submit_log if submit_log is not None else []
    sender = ReliabilitySender(sim, lambda f: log.append(f) or True, config)
    return sender, log


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(retr_timeout_s=0)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(max_retransmissions=-1)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(backoff_factor=0.5)


def test_send_submits_frame(sim):
    sender, log = make_sender(sim)
    f = frame()
    sender.send(f, frozenset({2}))
    assert log == [f]
    assert f.needs_ack


def test_no_ack_expected_when_disabled(sim):
    sender, log = make_sender(sim, ReliabilityConfig(enabled=False))
    f = frame()
    sender.send(f, frozenset({2}))
    assert not f.needs_ack
    assert sender.outstanding == 0


def test_no_ack_for_empty_receiver_set(sim):
    sender, _ = make_sender(sim)
    f = frame()
    sender.send(f, frozenset())
    assert not f.needs_ack


def test_retransmits_until_acked(sim):
    sender, log = make_sender(sim)
    f = frame()
    sender.send(f, frozenset({2}))
    sender.frame_transmitted(f)
    # Without radio confirmations, retries pace at the 5x fallback
    # deadline: 0.2, then 5*0.4, 5*0.8, 5*1.6, abandoned at +5*3.2.
    sim.run(until=60.0)
    # 1 original + 4 retries (MaxRetrTime default).
    assert len(log) == 5
    assert sender.abandoned_frames == 1
    assert sender.outstanding == 0


def test_retransmission_targets_unacked_subset(sim):
    sender, log = make_sender(sim)
    f = frame(receivers=frozenset({2, 3}))
    sender.send(f, frozenset({2, 3}))
    sender.frame_transmitted(f)
    sender.ack_received(AckMessage(frame_id=f.frame_id, acker=2))
    sim.run(until=1.0)
    retry = log[1]
    assert retry.receivers == frozenset({3})
    assert retry.retransmission == 1
    assert retry.frame_id == f.frame_id


def test_all_acks_stop_retransmission(sim):
    sender, log = make_sender(sim)
    f = frame(receivers=frozenset({2, 3}))
    sender.send(f, frozenset({2, 3}))
    sender.frame_transmitted(f)
    sender.ack_received(AckMessage(frame_id=f.frame_id, acker=2))
    sender.ack_received(AckMessage(frame_id=f.frame_id, acker=3))
    sim.run(until=10.0)
    assert len(log) == 1
    assert sender.outstanding == 0


def test_ack_for_unknown_frame_ignored(sim):
    sender, _ = make_sender(sim)
    sender.ack_received(AckMessage(frame_id=999, acker=2))  # no crash


def test_timeout_scales_with_airtime(sim):
    """Large frames get a larger ack allowance (timeout = base + 8×airtime)."""
    log = []
    sender = ReliabilitySender(
        sim,
        lambda f: log.append((sim.now, f)) or True,
        ReliabilityConfig(retr_timeout_s=0.2),
        airtime=lambda size: 0.5,
    )
    f = frame()
    sender.send(f, frozenset({2}))
    sender.frame_transmitted(f)
    sim.run(until=4.0)
    assert len(log) == 1  # timeout is 0.2 + 8*0.5 = 4.2s; no retry yet
    sim.run(until=4.5)
    assert len(log) == 2  # first retry fired after 4.2s


def test_exponential_backoff_spacing(sim):
    """When each retry is confirmed on the air, deadlines follow the
    exponential backoff of the config exactly."""
    times = []

    def submit(f):
        times.append(sim.now)
        # The radio reports the (re)transmission immediately, re-arming
        # the accurate (non-fallback) deadline.
        sim.schedule(0.0, sender.frame_transmitted, f)
        return True

    sender = ReliabilitySender(
        sim,
        submit,
        ReliabilityConfig(retr_timeout_s=1.0, backoff_factor=2.0),
    )
    f = frame()
    sender.send(f, frozenset({2}))
    sim.run(until=40.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps == pytest.approx([1.0, 2.0, 4.0, 8.0])


def test_unconfirmed_retry_uses_generous_fallback(sim):
    """A retry stuck in queues (never confirmed) retries at 5x spacing —
    late enough not to snowball, but the chain never stalls."""
    times = []
    sender = ReliabilitySender(
        sim,
        lambda f: times.append(sim.now) or True,
        ReliabilityConfig(retr_timeout_s=1.0, backoff_factor=2.0),
    )
    f = frame()
    sender.send(f, frozenset({2}))
    sender.frame_transmitted(f)
    sim.run(until=200.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps == pytest.approx([1.0, 10.0, 20.0, 40.0])


def test_frame_dropped_arms_timer(sim):
    """An OS-dropped frame must still be retransmitted."""
    sender, log = make_sender(sim)
    f = frame()
    sender.send(f, frozenset({2}))
    # No frame_transmitted upcall: the OS silently dropped it.
    sender.frame_dropped(f)
    sim.run(until=1.0)
    assert len(log) >= 2


def test_cancel_queued_hook_on_late_ack(sim):
    cancelled = []
    sender = ReliabilitySender(
        sim,
        lambda f: True,
        ReliabilityConfig(retr_timeout_s=0.1),
        cancel_queued=cancelled.append,
    )
    f = frame()
    sender.send(f, frozenset({2}))
    sender.frame_transmitted(f)
    sim.run(until=0.15)  # one retry submitted
    sender.ack_received(AckMessage(frame_id=f.frame_id, acker=2))
    assert len(cancelled) == 1
    assert cancelled[0].retransmission == 1


def test_cancel_all(sim):
    sender, log = make_sender(sim)
    f = frame()
    sender.send(f, frozenset({2}))
    sender.frame_transmitted(f)
    sender.cancel_all()
    sim.run(until=10.0)
    assert len(log) == 1
    assert sender.outstanding == 0


def test_retransmitted_counter(sim):
    sender, _ = make_sender(sim)
    f = frame()
    sender.send(f, frozenset({2}))
    sender.frame_transmitted(f)
    sim.run(until=60.0)
    assert sender.retransmitted_frames == 4


def test_cancel_frame_clears_pending(sim):
    sender, log = make_sender(sim)
    f = frame()
    sender.send(f, frozenset({2}))
    sender.frame_transmitted(f)
    sender.cancel_frame(f.frame_id)
    sim.run(until=60.0)
    assert len(log) == 1  # no retries after cancellation
    assert sender.outstanding == 0


# ----------------------------------------------------------------------
# Receiver side
# ----------------------------------------------------------------------
def test_receiver_acks_addressed_frames():
    acks = []
    receiver = ReliabilityReceiver(2, acks.append)
    f = frame(receivers=frozenset({2}))
    f.needs_ack = True
    assert receiver.accept(f) is True
    assert len(acks) == 1
    ack = acks[0].payload
    assert isinstance(ack, AckMessage)
    assert ack.frame_id == f.frame_id
    assert ack.acker == 2


def test_receiver_does_not_ack_overheard_frames():
    acks = []
    receiver = ReliabilityReceiver(9, acks.append)
    f = frame(receivers=frozenset({2}))
    f.needs_ack = True
    assert receiver.accept(f) is True  # still delivered (overhearing)
    assert acks == []


def test_receiver_does_not_ack_unack_frames():
    acks = []
    receiver = ReliabilityReceiver(2, acks.append)
    f = frame(receivers=frozenset({2}))
    f.needs_ack = False
    receiver.accept(f)
    assert acks == []


def test_duplicate_frames_suppressed_but_reacked():
    acks = []
    receiver = ReliabilityReceiver(2, acks.append)
    f = frame(receivers=frozenset({2}))
    f.needs_ack = True
    assert receiver.accept(f) is True
    retry = f.copy_for_retransmission(frozenset({2}))
    assert receiver.accept(retry) is False  # duplicate payload
    assert len(acks) == 2  # but re-acked (first ack may have been lost)


def test_receiver_history_bounded():
    receiver = ReliabilityReceiver(2, lambda f: None, history_limit=10)
    for _ in range(50):
        receiver.accept(frame(receivers=None))
    assert len(receiver._seen) <= 11


def test_make_ack_frame_addressed_to_sender():
    f = frame()
    ack = make_ack_frame(5, f)
    assert ack.receivers == frozenset({1})
    assert ack.kind == "ack"
    assert not ack.needs_ack
