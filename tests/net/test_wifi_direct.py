"""Tests for the Wi-Fi Direct multi-group topology generator."""

import random

import pytest

from repro.errors import TopologyError
from repro.net.wifi_direct import build_wifi_direct_topology


def layout_2x2(clients=3, seed=1):
    return build_wifi_direct_topology(
        2, 2, clients_per_group=clients, rng=random.Random(seed)
    )


def test_counts():
    layout = layout_2x2(clients=3)
    assert len(layout.group_owners) == 4
    assert sum(len(v) for v in layout.clients.values()) == 12
    # 2x2 grid of groups: 2 horizontal + 2 vertical bridges.
    assert len(layout.bridges) == 4
    assert len(layout.topology) == 4 + 12 + 4


def test_owners_not_mutually_in_range():
    layout = layout_2x2()
    topo = layout.topology
    owners = layout.group_owners
    for a in owners:
        for b in owners:
            if a != b:
                assert not topo.in_range(a, b)


def test_clients_hear_their_owner():
    layout = layout_2x2()
    for owner, members in layout.clients.items():
        for client in members:
            assert layout.topology.in_range(owner, client)


def test_bridges_hear_two_owners():
    layout = layout_2x2()
    topo = layout.topology
    for bridge in layout.bridges:
        reachable_owners = [
            o for o in layout.group_owners if topo.in_range(bridge, o)
        ]
        assert len(reachable_owners) == 2


def test_network_connected_via_bridges():
    layout = layout_2x2()
    assert layout.topology.is_connected()


def test_group_of():
    layout = layout_2x2()
    owner = layout.group_owners[0]
    client = layout.clients[owner][0]
    assert layout.group_of(client) == owner
    assert layout.group_of(owner) == owner
    with pytest.raises(TopologyError):
        layout.group_of(layout.bridges[0])


def test_invalid_spacing_rejected():
    rng = random.Random(1)
    with pytest.raises(TopologyError):
        build_wifi_direct_topology(2, 2, 2, rng, radio_range=40, owner_spacing=30)
    with pytest.raises(TopologyError):
        build_wifi_direct_topology(2, 2, 2, rng, radio_range=40, owner_spacing=90)
    with pytest.raises(TopologyError):
        build_wifi_direct_topology(0, 2, 2, rng)


def test_pds_discovery_works_across_groups():
    """PDD runs unchanged over the group topology: a consumer in one
    group discovers data produced in another (via owner → bridge → owner)."""
    from repro.core.consumer import DiscoverySession
    from repro.data.descriptor import make_descriptor
    from repro.net.medium import BroadcastMedium
    from repro.node.device import Device
    from repro.sim.simulator import Simulator

    layout = build_wifi_direct_topology(2, 1, 3, random.Random(4))
    sim = Simulator()
    medium = BroadcastMedium(sim, layout.topology, random.Random(2), base_loss=0.0)
    devices = {
        node: Device(sim, medium, node, random.Random(700 + node))
        for node in layout.all_nodes()
    }
    left_owner, right_owner = layout.group_owners
    producer = devices[layout.clients[right_owner][0]]
    entries = [make_descriptor("env", "nox", time=float(i)) for i in range(30)]
    for entry in entries:
        producer.add_metadata(entry)
    consumer = devices[layout.clients[left_owner][0]]
    session = DiscoverySession(consumer)
    sim.schedule(0.0, session.start)
    sim.run(until=60.0)
    assert len(session.received) == 30
    # The bridge carried the traffic: it cached the relayed entries.
    bridge = layout.bridges[0]
    assert devices[bridge].store.metadata_count() > 0
