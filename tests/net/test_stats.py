"""Unit tests for network statistics."""

from repro.net.stats import NetworkStats


def test_record_transmission_accumulates():
    stats = NetworkStats()
    stats.record_transmission("query", 100)
    stats.record_transmission("query", 50)
    stats.record_transmission("ack", 10)
    assert stats.frames_sent == 3
    assert stats.bytes_sent == 160
    assert stats.bytes_by_kind["query"] == 150
    assert stats.frames_by_kind["ack"] == 1


def test_overhead_bytes_with_and_without_acks():
    stats = NetworkStats()
    stats.record_transmission("response", 1000)
    stats.record_transmission("ack", 48)
    assert stats.overhead_bytes() == 1048
    assert stats.overhead_bytes(include_acks=False) == 1000


def test_loss_ratio_zero_when_no_traffic():
    assert NetworkStats().loss_ratio() == 0.0


def test_loss_ratio():
    stats = NetworkStats()
    stats.frames_delivered = 90
    stats.frames_lost_collision = 5
    stats.frames_lost_random = 5
    assert stats.loss_ratio() == 0.1


def test_snapshot_contains_counters():
    stats = NetworkStats()
    stats.record_transmission("x", 10)
    snap = stats.snapshot()
    assert snap["frames_sent"] == 1
    assert snap["bytes_sent"] == 10
    assert "loss_ratio" in snap


def test_snapshot_breaks_down_by_kind():
    stats = NetworkStats()
    stats.record_transmission("query", 100)
    stats.record_transmission("query", 50)
    stats.record_transmission("response", 900)
    snap = stats.snapshot()
    assert snap["bytes_by_kind"] == {"query": 150, "response": 900}
    assert snap["frames_by_kind"] == {"query": 2, "response": 1}
