"""Unit tests for topology and grid construction."""

import math

import pytest

from repro.errors import TopologyError
from repro.net.topology import (
    Topology,
    build_grid,
    center_node,
    center_subgrid,
    grid_spacing_for_8_neighbors,
)


def test_add_and_remove_node():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    assert 1 in topo
    topo.remove_node(1)
    assert 1 not in topo


def test_duplicate_add_rejected():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    with pytest.raises(TopologyError):
        topo.add_node(1, (1, 1))


def test_remove_unknown_rejected():
    with pytest.raises(TopologyError):
        Topology(10.0).remove_node(7)


def test_move_updates_connectivity():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    topo.add_node(2, (50, 0))
    assert not topo.in_range(1, 2)
    topo.move(2, (5, 0))
    assert topo.in_range(1, 2)


def test_distance():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    topo.add_node(2, (3, 4))
    assert topo.distance(1, 2) == 5.0


def test_node_not_in_range_of_itself():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    assert not topo.in_range(1, 1)


def test_neighbors_cache_invalidated_on_move():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    topo.add_node(2, (5, 0))
    assert topo.neighbors(1) == [2]
    topo.move(2, (100, 0))
    assert topo.neighbors(1) == []


def test_neighbors_cache_invalidated_on_add_remove():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    assert topo.neighbors(1) == []
    topo.add_node(2, (5, 0))
    assert topo.neighbors(1) == [2]
    topo.remove_node(2)
    assert topo.neighbors(1) == []


def test_nodes_within_radius():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    topo.add_node(2, (15, 0))
    topo.add_node(3, (25, 0))
    assert set(topo.nodes_within(1, 20.0)) == {2}
    assert set(topo.nodes_within(1, 30.0)) == {2, 3}


def test_invalid_range_rejected():
    with pytest.raises(TopologyError):
        Topology(0.0)


def test_hop_distance_line():
    topo = Topology(10.0)
    for i in range(4):
        topo.add_node(i, (i * 8.0, 0))
    assert topo.hop_distance(0, 0) == 0
    assert topo.hop_distance(0, 1) == 1
    assert topo.hop_distance(0, 3) == 3


def test_hop_distance_disconnected_is_none():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    topo.add_node(2, (100, 0))
    assert topo.hop_distance(1, 2) is None


def test_is_connected():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    assert topo.is_connected()
    topo.add_node(2, (5, 0))
    assert topo.is_connected()
    topo.add_node(3, (100, 0))
    assert not topo.is_connected()


# ----------------------------------------------------------------------
# Grid construction (§VI-A)
# ----------------------------------------------------------------------
def test_grid_node_count_and_ids():
    topo, ids = build_grid(3, 4, radio_range=40.0)
    assert len(topo) == 12
    assert ids == list(range(12))


def test_grid_has_exactly_8_neighbors_in_interior():
    """§VI-A: each node communicates with its 8 surrounding neighbors."""
    topo, ids = build_grid(5, 5, radio_range=40.0)
    center = center_node(5, 5, ids)
    assert len(topo.neighbors(center)) == 8


def test_grid_corner_has_3_neighbors():
    topo, ids = build_grid(5, 5, radio_range=40.0)
    assert len(topo.neighbors(ids[0])) == 3


def test_grid_max_hops_from_center():
    topo, ids = build_grid(11, 11, radio_range=40.0)
    center = center_node(11, 11, ids)
    hops = [topo.hop_distance(center, node) for node in ids]
    assert max(hops) == 5


def test_grid_spacing_constraints_enforced():
    with pytest.raises(TopologyError):
        build_grid(3, 3, radio_range=40.0, spacing=35.0)  # diagonal too far
    with pytest.raises(TopologyError):
        build_grid(3, 3, radio_range=40.0, spacing=15.0)  # 2-away in range


def test_grid_empty_rejected():
    with pytest.raises(TopologyError):
        build_grid(0, 5)


def test_default_spacing_valid():
    spacing = grid_spacing_for_8_neighbors(40.0)
    assert spacing * math.sqrt(2) <= 40.0
    assert 2 * spacing > 40.0


def test_center_node_of_10x10():
    _, ids = build_grid(10, 10, radio_range=40.0)
    assert center_node(10, 10, ids) == 55


def test_center_subgrid_5x5():
    _, ids = build_grid(10, 10, radio_range=40.0)
    sub = center_subgrid(10, 10, ids, sub=5)
    assert len(sub) == 25
    assert center_node(10, 10, ids) in sub


def test_center_subgrid_clamped_to_grid():
    _, ids = build_grid(3, 3, radio_range=40.0)
    assert len(center_subgrid(3, 3, ids, sub=5)) == 9
