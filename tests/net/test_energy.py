"""Unit tests for the energy accounting extension."""

import pytest

from repro.net.energy import EnergyModel, energy_report
from repro.net.stats import NetworkStats


def test_model_components():
    model = EnergyModel(tx_j_per_byte=2.0, rx_j_per_byte=1.0, idle_w=0.5)
    energy = model.node_energy_j(tx_bytes=10, rx_bytes=4, duration_s=8.0)
    assert energy == pytest.approx(10 * 2.0 + 4 * 1.0 + 8.0 * 0.5)


def test_stats_track_per_node_bytes():
    stats = NetworkStats()
    stats.record_transmission("data", 100, sender=1)
    stats.record_transmission("data", 50, sender=1)
    stats.record_reception(2, 100)
    assert stats.tx_bytes_by_node[1] == 150
    assert stats.rx_bytes_by_node[2] == 100


def test_report_covers_all_active_nodes():
    stats = NetworkStats()
    stats.record_transmission("data", 100, sender=1)
    stats.record_reception(2, 100)
    report = energy_report(stats, duration_s=10.0)
    assert set(report.per_node_j) == {1, 2}
    assert report.total_j > 0
    assert report.mean_j == pytest.approx(report.total_j / 2)


def test_relays_rank_as_top_consumers():
    stats = NetworkStats()
    stats.record_transmission("data", 10_000_000, sender=5)  # busy relay
    stats.record_transmission("data", 100, sender=6)
    stats.record_reception(6, 100)
    report = energy_report(stats, duration_s=1.0)
    assert report.top_consumers(1)[0][0] == 5


def test_overhearing_costs_energy_in_simulation():
    """Every in-range node pays rx energy for overheard frames."""
    from tests.helpers import clique_positions, make_net
    from repro.data import make_descriptor
    from repro.core.consumer import DiscoverySession

    net = make_net(clique_positions(4))
    net.devices[1].add_metadata(make_descriptor("env", "nox", time=1.0))
    session = DiscoverySession(net.devices[0])
    net.sim.schedule(0.0, session.start)
    net.sim.run(until=30.0)
    report = energy_report(net.medium.stats, duration_s=net.sim.now)
    # Nodes 2 and 3 never sourced data but overheard everything.
    assert net.medium.stats.rx_bytes_by_node[2] > 0
    assert net.medium.stats.rx_bytes_by_node[3] > 0
    assert report.per_node_j[2] > 0


def test_empty_report():
    report = energy_report(NetworkStats(), duration_s=5.0)
    assert report.total_j == 0.0
    assert report.mean_j == 0.0
    assert report.top_consumers() == []
