"""Unit tests for the leaky bucket pacer (§V-2)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.leaky_bucket import LeakyBucket, LeakyBucketConfig
from repro.net.message import Frame


def frame(size, tag="x"):
    # payload_size such that total frame size == size
    from repro.net.message import FRAME_HEADER_BYTES

    return Frame(sender=1, payload=tag, payload_size=size - FRAME_HEADER_BYTES)


def make_bucket(sim, capacity=10_000, rate=8_000.0, sink=None, on_drop=None):
    released = []
    if sink is None:
        sink = lambda f: released.append((sim.now, f)) or True
    bucket = LeakyBucket(
        sim,
        sink,
        LeakyBucketConfig(capacity_bytes=capacity, leak_rate_bps=rate),
        on_drop=on_drop,
    )
    return bucket, released


def test_config_validation():
    with pytest.raises(ConfigurationError):
        LeakyBucketConfig(capacity_bytes=0)
    with pytest.raises(ConfigurationError):
        LeakyBucketConfig(leak_rate_bps=0)


def test_first_frames_burst_through_full_bucket(sim):
    """A full bucket lets an initial burst up to its capacity through."""
    bucket, released = make_bucket(sim, capacity=5000, rate=8000)
    for _ in range(4):
        bucket.offer(frame(1000))
    sim.run(until=0.001)
    assert len(released) == 4  # 4 KB burst < 5 KB capacity


def test_sustained_rate_limited_to_leak_rate(sim):
    bucket, released = make_bucket(sim, capacity=2000, rate=8000)  # 1 KB/s
    for _ in range(10):
        bucket.offer(frame(1000))
    sim.run()
    # 2 KB burst, then one frame per second.
    span = released[-1][0] - released[0][0]
    assert span == pytest.approx(8.0, abs=0.5)


def test_offer_never_drops(sim):
    bucket, _ = make_bucket(sim, capacity=1000)
    for _ in range(100):
        assert bucket.offer(frame(1000)) is True
    assert bucket.queue_length >= 90


def test_queued_bytes_accounting(sim):
    bucket, _ = make_bucket(sim, capacity=1000, rate=80.0)
    bucket.offer(frame(1000))
    bucket.offer(frame(500))
    sim.run(until=0.0)
    # First released (capacity allows), second queued.
    assert bucket.queued_bytes == 500


def test_oversized_frame_released_at_full_bucket(sim):
    """Frames larger than the capacity must not deadlock."""
    bucket, released = make_bucket(sim, capacity=1000, rate=8000)
    bucket.offer(frame(5000))
    sim.run()
    assert len(released) == 1


def test_tokens_refill_up_to_capacity(sim):
    bucket, _ = make_bucket(sim, capacity=4000, rate=8000)
    bucket.offer(frame(4000))
    sim.run(until=0.0)
    assert bucket.tokens() == pytest.approx(0.0, abs=1.0)
    sim.run(until=10.0)
    assert bucket.tokens() == pytest.approx(4000.0)


def test_on_drop_called_when_sink_reports_failure(sim):
    dropped = []
    bucket = LeakyBucket(
        sim,
        lambda f: False,
        LeakyBucketConfig(capacity_bytes=10_000, leak_rate_bps=8000),
        on_drop=dropped.append,
    )
    bucket.offer(frame(1000))
    sim.run()
    assert len(dropped) == 1
    assert bucket.dropped_frames == 1


def test_remove_withdraws_queued_frame(sim):
    bucket, released = make_bucket(sim, capacity=1000, rate=800.0)
    first = frame(1000, "first")
    victim = frame(1000, "victim")
    bucket.offer(first)
    bucket.offer(victim)
    assert bucket.remove(victim) is True
    assert bucket.remove(victim) is False
    sim.run()
    assert all(f.payload != "victim" for _, f in released)


def test_flush_clears_queue(sim):
    bucket, _ = make_bucket(sim, capacity=1000, rate=80.0)
    for _ in range(5):
        bucket.offer(frame(1000))
    bucket.flush()
    assert bucket.queued_bytes == 0
    assert bucket.queue_length == 0


def test_fifo_order_preserved(sim):
    bucket, released = make_bucket(sim, capacity=1000, rate=80_000)
    for tag in ("a", "b", "c"):
        bucket.offer(frame(1000, tag))
    sim.run()
    assert [f.payload for _, f in released] == ["a", "b", "c"]
