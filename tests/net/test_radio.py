"""Unit tests for the radio: OS buffer, CSMA deferral, serial draining."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.medium import BroadcastMedium
from repro.net.message import Frame
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import Topology
from repro.sim.simulator import Simulator


def make_pair(os_buffer=10_000, base_loss=0.0):
    sim = Simulator()
    topo = Topology(40.0)
    topo.add_node(1, (0, 0))
    topo.add_node(2, (10, 0))
    medium = BroadcastMedium(sim, topo, random.Random(3), base_loss=base_loss)
    config = RadioConfig(os_buffer_bytes=os_buffer)
    tx = Radio(sim, medium, 1, random.Random(4), config)
    rx = Radio(sim, medium, 2, random.Random(5), config)
    return sim, medium, tx, rx


def frame(size=1000):
    return Frame(sender=1, payload="p", payload_size=size)


def test_send_and_receive():
    sim, _, tx, rx = make_pair()
    received = []
    rx.on_receive(received.append)
    assert tx.send(frame()) is True
    sim.run()
    assert len(received) == 1


def test_os_buffer_overflow_silently_drops():
    """The Android UDP behaviour (§V-2): full buffer → silent drop."""
    sim, medium, tx, _ = make_pair(os_buffer=3000)
    assert tx.send(frame(1000))  # in flight counts against buffer? queued
    assert tx.send(frame(1000))
    accepted_third = tx.send(frame(1000))
    # Each frame is ~1036B with headers; the third may or may not fit,
    # the fourth certainly does not.
    accepted_fourth = tx.send(frame(1000))
    assert not (accepted_third and accepted_fourth)
    assert medium.stats.frames_dropped_buffer >= 1


def test_buffer_drains_over_time():
    sim, _, tx, rx = make_pair(os_buffer=2500)
    received = []
    rx.on_receive(received.append)
    tx.send(frame(1000))
    tx.send(frame(1000))
    sim.run()
    # After draining, new sends are accepted again.
    assert tx.send(frame(1000))
    sim.run()
    assert len(received) == 3


def test_frames_transmit_in_fifo_order():
    sim, _, tx, rx = make_pair(os_buffer=100_000)
    received = []
    rx.on_receive(lambda f: received.append(f.payload))
    for tag in ("a", "b", "c"):
        tx.send(Frame(sender=1, payload=tag, payload_size=100))
    sim.run()
    assert received == ["a", "b", "c"]


def test_priority_send_jumps_queue():
    sim, _, tx, rx = make_pair(os_buffer=100_000)
    received = []
    rx.on_receive(lambda f: received.append(f.payload))
    tx.send(Frame(sender=1, payload="first", payload_size=5000))
    tx.send(Frame(sender=1, payload="second", payload_size=100))
    tx.send(Frame(sender=1, payload="urgent", payload_size=50), priority=True)
    sim.run()
    # "first" is already on the air when "urgent" arrives; "urgent" then
    # precedes "second".
    assert received.index("urgent") < received.index("second")


def test_on_sent_fires_after_airtime():
    sim, medium, tx, _ = make_pair()
    sent_at = []
    tx.on_sent(lambda f: sent_at.append(sim.now))
    f = frame(7200)
    tx.send(f)
    sim.run()
    assert sent_at[0] == pytest.approx(medium.airtime(f.size))


def test_csma_defers_while_channel_busy():
    sim, medium, tx, rx = make_pair(os_buffer=200_000)
    received = []
    rx.on_receive(lambda f: received.append(sim.now))
    # rx transmits a long frame; tx must defer.
    long_frame = Frame(sender=2, payload="long", payload_size=90_000)
    rx.send(long_frame)
    sim.schedule(0.001, lambda: tx.send(frame(1000)))
    sim.run()
    # tx's frame arrives only after the long frame finished.
    assert received
    assert received[0] > medium.airtime(long_frame.size)


def test_remove_withdraws_queued_frame():
    sim, _, tx, rx = make_pair(os_buffer=100_000)
    received = []
    rx.on_receive(lambda f: received.append(f.payload))
    tx.send(Frame(sender=1, payload="keep1", payload_size=5000))
    victim = Frame(sender=1, payload="victim", payload_size=5000)
    tx.send(victim)
    assert tx.remove(victim) is True
    assert tx.remove(victim) is False
    sim.run()
    assert "victim" not in received


def test_shutdown_clears_queue_and_detaches():
    sim, _, tx, rx = make_pair()
    received = []
    rx.on_receive(received.append)
    tx.send(frame())
    tx.shutdown()
    # The frame already on the air keeps going, but nothing new queues.
    assert tx.queue_length == 0


def test_queued_bytes_accounting():
    sim, _, tx, _ = make_pair(os_buffer=1_000_000)
    assert tx.queued_bytes == 0
    tx.send(frame(1000))
    tx.send(frame(1000))
    # The first frame starts transmitting immediately; the second waits.
    assert tx.queue_length == 1


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RadioConfig(os_buffer_bytes=0)
    with pytest.raises(ConfigurationError):
        RadioConfig(backoff_min_s=0.5, backoff_max_s=0.1)
