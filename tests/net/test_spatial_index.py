"""Regression tests for the spatial neighbor index and its range cache."""

import math

from repro.net import topology as topology_module
from repro.net.topology import Topology


def brute_force_within(topo, node_id, radius):
    """The pre-index semantics: scan positions in insertion order."""
    ox, oy = topo.position(node_id)
    return [
        other
        for other in topo.nodes()
        if other != node_id
        and math.hypot(topo.position(other)[0] - ox, topo.position(other)[1] - oy)
        <= radius
    ]


def make_cluster():
    topo = Topology(10.0)
    topo.add_node(1, (0, 0))
    topo.add_node(2, (5, 0))
    topo.add_node(3, (0, 8))
    topo.add_node(4, (50, 50))
    return topo


def test_neighbors_matches_brute_force():
    topo = make_cluster()
    for node in topo.nodes():
        assert topo.neighbors(node) == brute_force_within(topo, node, 10.0)


def test_cached_result_is_not_aliased():
    """Mutating a returned neighbor list must not poison the cache."""
    topo = make_cluster()
    first = topo.neighbors(1)
    first.append(999)
    first.sort()
    assert topo.neighbors(1) == brute_force_within(topo, 1, 10.0)
    assert 999 not in topo.neighbors(1)


def test_move_invalidates_stale_neighbors():
    """A cached neighbor list must not survive the neighbor moving away."""
    topo = make_cluster()
    assert 2 in topo.neighbors(1)
    topo.move(2, (100, 100))
    assert 2 not in topo.neighbors(1)
    assert topo.neighbors(1) == brute_force_within(topo, 1, 10.0)
    topo.move(2, (1, 1))
    assert 2 in topo.neighbors(1)


def test_mover_sees_new_neighborhood():
    topo = make_cluster()
    assert topo.neighbors(4) == []
    topo.move(4, (2, 2))
    assert topo.neighbors(4) == brute_force_within(topo, 4, 10.0)
    assert set(topo.neighbors(4)) == {1, 2, 3}


def test_remove_node_purges_it_from_answers():
    topo = make_cluster()
    assert 2 in topo.neighbors(1)
    topo.remove_node(2)
    assert 2 not in topo.neighbors(1)
    assert topo.neighbors(1) == brute_force_within(topo, 1, 10.0)


def test_nodes_within_custom_radius_tracks_mobility():
    topo = make_cluster()
    assert 4 in topo.nodes_within(1, 100.0)
    topo.move(4, (500, 500))
    assert 4 not in topo.nodes_within(1, 100.0)
    assert topo.nodes_within(1, 100.0) == brute_force_within(topo, 1, 100.0)


def test_readd_after_remove_appends_in_insertion_order():
    """Result ordering is node insertion order, as the brute-force scan had."""
    topo = make_cluster()
    topo.remove_node(2)
    topo.add_node(2, (5, 0))
    assert topo.neighbors(1) == brute_force_within(topo, 1, 10.0)
    assert topo.neighbors(1)[-1] == 2


def test_cache_memory_stays_bounded_under_churn():
    """Many distinct radii / movers must not grow the memo without bound."""
    topo = Topology(10.0)
    for node in range(30):
        topo.add_node(node, (node * 3.0, 0.0))
    for step in range(500):
        radius = 5.0 + (step % 40)
        topo.nodes_within(step % 30, radius)
        topo.move(step % 30, ((step * 7) % 90, (step * 3) % 90))
    assert len(topo._range_cache) <= topology_module._MAX_CACHED_RADII
    total = sum(len(per) for per in topo._range_cache.values())
    assert total <= topology_module._MAX_CACHED_ENTRIES


def test_within_predicate():
    topo = make_cluster()
    assert topo.within(1, 2, 5.0)
    assert not topo.within(1, 2, 4.9)
    assert not topo.within(1, 999, 1000.0)
    assert not topo.within(999, 1, 1000.0)
