"""Unit tests for the broadcast medium: airtime, carrier sense,
collisions, half-duplex, overhearing."""

import random

import pytest

from repro.net.medium import BroadcastMedium
from repro.net.message import Frame
from repro.net.topology import Topology
from repro.sim.simulator import Simulator


def make_medium(positions, radio_range=40.0, base_loss=0.0, cs_factor=2.0):
    sim = Simulator()
    topo = Topology(radio_range)
    for node, pos in positions.items():
        topo.add_node(node, pos)
    medium = BroadcastMedium(
        sim,
        topo,
        random.Random(1),
        base_loss=base_loss,
        carrier_sense_factor=cs_factor,
    )
    return sim, topo, medium


def frame(sender, size=1000, kind="data"):
    return Frame(sender=sender, payload="p", payload_size=size, kind=kind)


def attach_sink(medium, node):
    received = []
    medium.attach(node, received.append)
    return received


def test_airtime_scales_with_size():
    _, _, medium = make_medium({1: (0, 0)})
    assert medium.airtime(2000) > medium.airtime(1000) > 0


def test_airtime_includes_preamble():
    _, _, medium = make_medium({1: (0, 0)})
    assert medium.airtime(0) == pytest.approx(medium.preamble_s)


def test_delivery_to_all_in_range_nodes():
    """Overhearing: every in-range node hears the frame, addressed or not."""
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0), 3: (20, 0), 4: (200, 0)})
    r2 = attach_sink(medium, 2)
    r3 = attach_sink(medium, 3)
    r4 = attach_sink(medium, 4)
    medium.transmit(frame(1))
    sim.run()
    assert len(r2) == 1 and len(r3) == 1
    assert r4 == []  # out of range


def test_sender_does_not_receive_own_frame():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)})
    r1 = attach_sink(medium, 1)
    attach_sink(medium, 2)
    medium.transmit(frame(1))
    sim.run()
    assert r1 == []


def test_delivery_delayed_by_airtime():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)})
    times = []
    medium.attach(2, lambda f: times.append(sim.now))
    f = frame(1, size=7200)  # 7200B * 8 / 7.2Mbps = 8 ms + preamble
    expected = medium.airtime(f.size)
    medium.transmit(f)
    sim.run()
    assert times[0] == pytest.approx(expected)


def test_channel_busy_during_transmission():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)})
    assert not medium.channel_busy(2)
    medium.transmit(frame(1, size=100_000))
    assert medium.channel_busy(2)
    assert medium.node_transmitting(1)
    sim.run()
    assert not medium.channel_busy(2)


def test_carrier_sense_extends_beyond_radio_range():
    """Physical carrier sense reaches carrier_sense_factor × range."""
    sim, _, medium = make_medium({1: (0, 0), 2: (60, 0)}, radio_range=40.0)
    medium.transmit(frame(1, size=100_000))
    assert medium.channel_busy(2)  # 60 m > range but < 2x range
    sim.run()


def test_busy_until_reports_end_time():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)})
    duration = medium.transmit(frame(1, size=50_000))
    assert medium.busy_until(2) == pytest.approx(duration)


def test_hidden_terminal_collision():
    """Two senders out of mutual range collide at a middle receiver."""
    sim, _, medium = make_medium(
        {1: (0, 0), 2: (35, 0), 3: (70, 0)}, radio_range=40.0, cs_factor=1.0
    )
    received = attach_sink(medium, 2)
    medium.transmit(frame(1, size=10_000))
    medium.transmit(frame(3, size=10_000))
    sim.run()
    assert received == []
    assert medium.stats.frames_lost_collision == 2


def test_no_collision_when_transmissions_disjoint_in_time():
    sim, _, medium = make_medium(
        {1: (0, 0), 2: (35, 0), 3: (70, 0)}, radio_range=40.0, cs_factor=1.0
    )
    received = attach_sink(medium, 2)
    medium.transmit(frame(1, size=1000))
    gap = medium.airtime(1036) + 0.001
    sim.schedule(gap, lambda: medium.transmit(frame(3, size=1000)))
    sim.run()
    assert len(received) == 2


def test_half_duplex_receiver_misses_frame_while_transmitting():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)}, cs_factor=1.0)
    received = attach_sink(medium, 2)
    medium.transmit(frame(1, size=50_000))
    # Node 2 starts transmitting while 1's frame is in the air.
    sim.schedule(0.001, lambda: medium.transmit(frame(2, size=1000)))
    sim.run()
    assert received == []
    assert medium.stats.frames_lost_busy_receiver == 1


def test_base_loss_drops_frames():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)}, base_loss=1.0)
    received = attach_sink(medium, 2)
    medium.transmit(frame(1))
    sim.run()
    assert received == []
    assert medium.stats.frames_lost_random == 1


def test_receiver_moving_out_of_range_misses_delivery():
    sim, topo, medium = make_medium({1: (0, 0), 2: (10, 0)})
    received = attach_sink(medium, 2)
    medium.transmit(frame(1, size=100_000))
    topo.move(2, (500, 0))
    sim.run()
    assert received == []


def test_detached_receiver_not_delivered():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)})
    received = attach_sink(medium, 2)
    medium.detach(2)
    medium.transmit(frame(1))
    sim.run()
    assert received == []


def test_stats_record_transmissions():
    sim, _, medium = make_medium({1: (0, 0), 2: (10, 0)})
    attach_sink(medium, 2)
    f = frame(1, size=500, kind="query")
    medium.transmit(f)
    sim.run()
    assert medium.stats.frames_sent == 1
    assert medium.stats.bytes_sent == f.size
    assert medium.stats.frames_by_kind["query"] == 1
    assert medium.stats.frames_delivered == 1
