"""Unit tests for the broadcast face (full send/receive path)."""

import random

from repro.net.faces import BroadcastFace
from repro.net.leaky_bucket import LeakyBucketConfig
from repro.net.medium import BroadcastMedium
from repro.net.reliability import ReliabilityConfig
from repro.net.topology import Topology
from repro.sim.simulator import Simulator


def make_faces(n=2, base_loss=0.0, reliability=None, use_bucket=True):
    sim = Simulator()
    topo = Topology(40.0)
    for i in range(n):
        topo.add_node(i, (i * 10.0, 0.0))
    medium = BroadcastMedium(sim, topo, random.Random(2), base_loss=base_loss)
    faces = [
        BroadcastFace(
            sim,
            medium,
            i,
            random.Random(50 + i),
            reliability_config=reliability,
            use_leaky_bucket=use_bucket,
        )
        for i in range(n)
    ]
    return sim, medium, faces


def test_payload_delivered_with_addressing_flag():
    sim, _, (a, b) = make_faces(2)
    seen = []
    b.on_receive(lambda frame, addressed: seen.append((frame.payload, addressed)))
    a.send("hello", 100, receivers=frozenset({1}), kind="data")
    sim.run(until=5.0)
    assert seen == [("hello", True)]


def test_overheard_payload_flagged_not_addressed():
    sim, _, (a, b, c) = make_faces(3)
    seen = []
    c.on_receive(lambda frame, addressed: seen.append((frame.payload, addressed)))
    a.send("hello", 100, receivers=frozenset({1}), kind="data")
    sim.run(until=5.0)
    assert seen == [("hello", False)]


def test_flood_addresses_everyone():
    sim, _, (a, b, c) = make_faces(3)
    seen = []
    b.on_receive(lambda frame, addressed: seen.append(("b", addressed)))
    c.on_receive(lambda frame, addressed: seen.append(("c", addressed)))
    a.send("flood", 100, receivers=None)
    sim.run(until=5.0)
    assert ("b", True) in seen
    assert ("c", True) in seen


def test_acks_are_not_delivered_as_payloads():
    sim, _, (a, b) = make_faces(2)
    a_seen, b_seen = [], []
    a.on_receive(lambda f, ad: a_seen.append(f.payload))
    b.on_receive(lambda f, ad: b_seen.append(f.payload))
    a.send("ping", 100, receivers=frozenset({1}), reliable=True)
    sim.run(until=5.0)
    assert b_seen == ["ping"]
    assert a_seen == []  # the ack frame is consumed by the sender machinery


def test_reliable_delivery_over_lossy_link():
    sim, _, faces = make_faces(2, base_loss=0.4)
    _, b = faces
    seen = []
    b.on_receive(lambda f, ad: seen.append(f.payload))
    for i in range(20):
        faces[0].send(("msg", i), 200, receivers=frozenset({1}), reliable=True)
    sim.run(until=60.0)
    distinct = {p for p in seen}
    assert len(distinct) >= 18  # retransmission recovers most losses


def test_unreliable_send_not_retransmitted():
    sim, medium, (a, b) = make_faces(2, base_loss=1.0)
    a.send("lost", 100, receivers=frozenset({1}), reliable=False)
    sim.run(until=5.0)
    assert medium.stats.frames_sent == 1  # no retries


def test_retransmission_delivers_once_to_application():
    sim, _, faces = make_faces(
        2, base_loss=0.0, reliability=ReliabilityConfig(retr_timeout_s=0.05)
    )
    a, b = faces
    seen = []
    b.on_receive(lambda f, ad: seen.append(f.payload))

    # Swallow b's acks so a retransmits: detach b's ack path by making a
    # deaf to acks is hard; instead use loss on the reverse direction via
    # medium monkeypatching. Simpler: drop the first ack by intercepting.
    original = a.sender.ack_received
    dropped = []

    def drop_first(ack):
        if not dropped:
            dropped.append(ack)
            return
        original(ack)

    a.sender.ack_received = drop_first
    a.send("dup?", 100, receivers=frozenset({1}), reliable=True)
    sim.run(until=5.0)
    assert seen == ["dup?"]  # duplicate suppressed at the receiver


def test_neighbors_reflect_topology():
    sim, medium, (a, b) = make_faces(2)
    assert a.neighbors() == [1]
    medium.topology.move(1, (500.0, 0.0))
    assert a.neighbors() == []


def test_shutdown_stops_traffic():
    sim, medium, (a, b) = make_faces(2)
    seen = []
    b.on_receive(lambda f, ad: seen.append(f.payload))
    a.send("before", 100, receivers=frozenset({1}))
    a.shutdown()
    sim.run(until=5.0)
    # The face detached before the bucket could release to the radio, or
    # at worst the single frame made it; no retransmissions occur after.
    assert a.sender.outstanding == 0


def test_bucket_paces_throughput():
    sim, medium, (a, b) = make_faces(
        2, use_bucket=True
    )
    arrivals = []
    b.on_receive(lambda f, ad: arrivals.append(sim.now))
    a.bucket.config = LeakyBucketConfig(capacity_bytes=2000, leak_rate_bps=8000)
    a.bucket._tokens = 2000.0
    for i in range(6):
        a.send(("m", i), 964, receivers=frozenset({1}), reliable=False)
    sim.run(until=60.0)
    assert len(arrivals) == 6
    # 1 KB/s leak: ~1 s between late frames.
    assert arrivals[-1] - arrivals[-2] > 0.5
