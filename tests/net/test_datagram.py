"""Tests for datagram framing, including over a real localhost socket."""

import socket

import pytest

from repro.bloom.bloom_filter import BloomFilter
from repro.core.messages import DiscoveryQuery, DiscoveryResponse
from repro.data.descriptor import make_descriptor
from repro.data.predicate import QuerySpec, eq
from repro.errors import ProtocolError
from repro.net.datagram import (
    MAGIC,
    MAX_DATAGRAM_PAYLOAD,
    pack_datagram,
    try_unpack,
    unpack_datagram,
)


def query():
    return DiscoveryQuery(
        message_id=77,
        sender_id=1,
        receiver_ids=frozenset({2}),
        spec=QuerySpec([eq("data_type", "nox")]),
        origin_id=1,
        expires_at=30.0,
        bloom=BloomFilter.for_capacity(10),
    )


def test_pack_unpack_round_trip():
    datagram = pack_datagram(query())
    assert datagram.startswith(MAGIC)
    decoded = unpack_datagram(datagram)
    assert decoded.message_id == 77
    assert decoded.spec == query().spec


def test_bad_magic_rejected():
    datagram = b"XXXX" + pack_datagram(query())[4:]
    with pytest.raises(ProtocolError):
        unpack_datagram(datagram)


def test_truncated_rejected():
    datagram = pack_datagram(query())
    with pytest.raises(ProtocolError):
        unpack_datagram(datagram[:-3])
    with pytest.raises(ProtocolError):
        unpack_datagram(b"PD")


def test_oversized_message_rejected():
    entries = tuple(
        make_descriptor("env", "nox", time=float(i), note="x" * 200)
        for i in range(MAX_DATAGRAM_PAYLOAD // 200)
    )
    response = DiscoveryResponse(
        message_id=1, sender_id=1, receiver_ids=frozenset({2}), entries=entries
    )
    with pytest.raises(ProtocolError):
        pack_datagram(response)


def test_try_unpack_swallows_noise():
    assert try_unpack(b"random noise") is None
    assert try_unpack(pack_datagram(query())) is not None


def test_round_trip_over_real_udp_socket():
    """The §V deployment path: PDS frames over an actual UDP socket."""
    receiver = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    receiver.bind(("127.0.0.1", 0))
    receiver.settimeout(5.0)
    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sender.sendto(pack_datagram(query()), receiver.getsockname())
        data, _ = receiver.recvfrom(65535)
        decoded = unpack_datagram(data)
        assert decoded.message_id == 77
        assert decoded.receiver_ids == frozenset({2})
    finally:
        sender.close()
        receiver.close()
