"""Unit tests for the binary data codec."""

import pytest

from repro.data import attributes as attr
from repro.data.codec import (
    DEFAULT_DICTIONARY,
    AttributeDictionary,
    decode_bloom,
    decode_descriptor,
    decode_predicate,
    decode_query_spec,
    decode_value,
    decode_varint,
    decode_zigzag,
    encode_bloom,
    encode_descriptor,
    encode_predicate,
    encode_query_spec,
    encode_value,
    encode_varint,
    encode_zigzag,
)
from repro.data.descriptor import make_descriptor
from repro.data.predicate import QuerySpec, between, eq, exists, is_in, lt, prefix
from repro.errors import DataModelError


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def test_varint_round_trip_edges():
    for value in (0, 1, 127, 128, 255, 300, 2**14, 2**32, 2**63 - 1):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)


def test_varint_single_byte_below_128():
    assert len(encode_varint(127)) == 1
    assert len(encode_varint(128)) == 2


def test_varint_rejects_negative():
    with pytest.raises(DataModelError):
        encode_varint(-1)


def test_varint_truncated():
    with pytest.raises(DataModelError):
        decode_varint(b"\x80")  # continuation bit set, nothing follows


def test_zigzag_round_trip():
    for value in (0, -1, 1, -64, 63, -(2**31), 2**31, 123456789):
        decoded, _ = decode_zigzag(encode_zigzag(value))
        assert decoded == value


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------
def test_value_round_trips():
    for value in (True, False, 0, -5, 10**12, 1.5, -2.25, "héllo", ""):
        decoded, offset = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)


def test_float_needing_64_bits_round_trips_exactly():
    value = 0.1  # not representable in binary32
    decoded, _ = decode_value(encode_value(value))
    assert decoded == value


def test_float32_representable_uses_short_form():
    short = encode_value(1.5)
    long = encode_value(0.1)
    assert len(short) < len(long)


def test_unknown_value_type_rejected():
    with pytest.raises(DataModelError):
        encode_value([1, 2])  # type: ignore[arg-type]


def test_unknown_tag_rejected():
    with pytest.raises(DataModelError):
        decode_value(b"\xff")


# ----------------------------------------------------------------------
# Dictionary
# ----------------------------------------------------------------------
def test_default_dictionary_has_wellknown_names():
    for name in (attr.NAMESPACE, attr.DATA_TYPE, attr.TIME, attr.CHUNK_ID):
        assert DEFAULT_DICTIONARY.id_of(name) > 0


def test_dictionary_register_idempotent():
    dictionary = AttributeDictionary()
    first = dictionary.register("foo")
    assert dictionary.register("foo") == first
    assert dictionary.name_of(first) == "foo"


def test_dictionary_unknown_id_rejected():
    with pytest.raises(DataModelError):
        AttributeDictionary().name_of(42)


# ----------------------------------------------------------------------
# Descriptors
# ----------------------------------------------------------------------
def test_descriptor_round_trip():
    descriptor = make_descriptor(
        "env", "nox", time=12.5, location_x=3.0, location_y=4.0
    )
    decoded, offset = decode_descriptor(encode_descriptor(descriptor))
    assert decoded == descriptor


def test_descriptor_with_unregistered_names():
    descriptor = make_descriptor("env", "nox", custom_field="value", zzz=1)
    decoded, _ = decode_descriptor(encode_descriptor(descriptor))
    assert decoded == descriptor


def test_registered_names_encode_smaller():
    registered = make_descriptor("env", "nox", time=1.0)
    unregistered = make_descriptor(
        "env", "nox", this_is_a_long_custom_name=1.0
    )
    assert len(encode_descriptor(registered)) < len(
        encode_descriptor(unregistered)
    )


def test_descriptor_wire_size_estimate_close_to_actual():
    """The fast wire_size estimate tracks the real encoding within 40%."""
    descriptor = make_descriptor(
        "env", "nox", time=1.0, location_x=2.0, location_y=3.0
    )
    actual = len(encode_descriptor(descriptor))
    estimate = descriptor.wire_size()
    assert abs(actual - estimate) / actual < 0.4


# ----------------------------------------------------------------------
# Predicates and specs
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "predicate",
    [
        eq("data_type", "nox"),
        lt("time", 100.0),
        between("location_x", 1.0, 2.0),
        is_in("data_type", ("a", "b", "c")),
        prefix("name", "video/"),
        exists("time"),
    ],
)
def test_predicate_round_trips(predicate):
    decoded, offset = decode_predicate(encode_predicate(predicate))
    assert decoded == predicate


def test_query_spec_round_trip():
    spec = QuerySpec([eq("data_type", "nox"), between("time", 0.0, 10.0)])
    decoded, _ = decode_query_spec(encode_query_spec(spec))
    assert decoded == spec


def test_empty_spec_round_trip():
    decoded, _ = decode_query_spec(encode_query_spec(QuerySpec()))
    assert decoded == QuerySpec()


# ----------------------------------------------------------------------
# Bloom filters
# ----------------------------------------------------------------------
def test_bloom_round_trip_preserves_membership():
    from repro.bloom.bloom_filter import BloomFilter

    bloom = BloomFilter(512, 4, seed=7)
    keys = [f"key-{i}".encode() for i in range(50)]
    bloom.insert_all(keys)
    decoded, _ = decode_bloom(encode_bloom(bloom))
    assert decoded.m_bits == 512
    assert decoded.k_hashes == 4
    assert decoded.seed == 7
    assert all(key in decoded for key in keys)


def test_null_filter_round_trip():
    from repro.bloom.bloom_filter import NullFilter

    decoded, offset = decode_bloom(encode_bloom(NullFilter()))
    assert isinstance(decoded, NullFilter)
    assert offset == 1
