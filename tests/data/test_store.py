"""Unit tests for the data store (metadata + chunks + expiration)."""

from repro.data.descriptor import make_descriptor
from repro.data.item import make_item
from repro.data.predicate import QuerySpec, eq
from repro.data.store import DataStore


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_store(ttl=None):
    clock = FakeClock()
    return DataStore(clock, metadata_ttl=ttl), clock


def sample(i=0):
    return make_descriptor("env", "nox", time=float(i))


def test_insert_metadata_reports_novelty():
    store, _ = make_store()
    d = sample()
    assert store.insert_metadata(d) is True
    assert store.insert_metadata(d) is False


def test_has_metadata():
    store, _ = make_store()
    assert not store.has_metadata(sample())
    store.insert_metadata(sample())
    assert store.has_metadata(sample())


def test_match_metadata_by_spec():
    store, _ = make_store()
    store.insert_metadata(make_descriptor("env", "nox"))
    store.insert_metadata(make_descriptor("env", "pm25"))
    matches = store.match_metadata(QuerySpec([eq("data_type", "nox")]))
    assert len(matches) == 1
    assert matches[0].get("data_type") == "nox"


def test_cached_entry_expires_without_payload():
    store, clock = make_store(ttl=10.0)
    store.insert_metadata(sample(), has_payload=False)
    clock.now = 9.9
    assert store.has_metadata(sample())
    clock.now = 10.0
    assert not store.has_metadata(sample())
    assert store.metadata_count() == 0


def test_entry_with_payload_never_expires():
    store, clock = make_store(ttl=10.0)
    store.insert_metadata(sample(), has_payload=True)
    clock.now = 1000.0
    assert store.has_metadata(sample())


def test_payload_arrival_upgrades_entry():
    """§II-C: the node removes the entry only if payload never arrived."""
    store, clock = make_store(ttl=10.0)
    store.insert_metadata(sample(), has_payload=False)
    clock.now = 5.0
    store.insert_metadata(sample(), has_payload=True)
    clock.now = 1000.0
    assert store.has_metadata(sample())


def test_reinsert_without_payload_refreshes_ttl():
    store, clock = make_store(ttl=10.0)
    store.insert_metadata(sample())
    clock.now = 8.0
    store.insert_metadata(sample())
    clock.now = 15.0
    assert store.has_metadata(sample())
    clock.now = 18.0
    assert not store.has_metadata(sample())


def test_expired_entry_reinserted_counts_as_new():
    store, clock = make_store(ttl=10.0)
    store.insert_metadata(sample())
    clock.now = 20.0
    assert store.insert_metadata(sample()) is True


def test_remove_metadata():
    store, _ = make_store()
    store.insert_metadata(sample())
    store.remove_metadata(sample())
    assert not store.has_metadata(sample())


def test_insert_chunk_creates_metadata_for_item_and_chunk():
    store, _ = make_store()
    item = make_item("media", "video", "v", size=600_000)
    chunk = item.chunks()[0]
    assert store.insert_chunk(chunk) is True
    assert store.has_chunk(chunk.descriptor)
    assert store.has_metadata(item.descriptor)
    assert store.has_metadata(chunk.descriptor)


def test_insert_chunk_idempotent():
    store, _ = make_store()
    chunk = make_item("m", "v", "x", size=100).chunks()[0]
    assert store.insert_chunk(chunk) is True
    assert store.insert_chunk(chunk) is False


def test_chunks_of_sorted_by_chunk_id():
    store, _ = make_store()
    item = make_item("m", "v", "x", size=3 * 256 * 1024)
    for chunk in reversed(item.chunks()):
        store.insert_chunk(chunk)
    assert store.chunk_ids_of(item.descriptor) == [0, 1, 2]


def test_chunks_of_accepts_chunk_descriptor():
    store, _ = make_store()
    item = make_item("m", "v", "x", size=2 * 256 * 1024)
    for chunk in item.chunks():
        store.insert_chunk(chunk)
    via_chunk = store.chunks_of(item.descriptor.chunk_descriptor(0))
    assert len(via_chunk) == 2


def test_chunk_metadata_survives_because_payload_present():
    """'A metadata entry exists as long as ... any chunk ... exists.'"""
    store, clock = make_store(ttl=5.0)
    item = make_item("m", "v", "x", size=100)
    store.insert_chunk(item.chunks()[0])
    clock.now = 100.0
    assert store.has_metadata(item.descriptor)


def test_remove_chunk():
    store, _ = make_store()
    chunk = make_item("m", "v", "x", size=100).chunks()[0]
    store.insert_chunk(chunk)
    store.remove_chunk(chunk.descriptor)
    assert not store.has_chunk(chunk.descriptor)


def test_match_chunks_by_spec():
    store, _ = make_store()
    store.insert_chunk(make_item("m", "nox", "a", size=10).chunks()[0])
    store.insert_chunk(make_item("m", "pm", "b", size=10).chunks()[0])
    matches = store.match_chunks(QuerySpec([eq("data_type", "nox")]))
    assert len(matches) == 1


def test_stored_bytes():
    store, _ = make_store()
    store.insert_chunk(make_item("m", "v", "a", size=100).chunks()[0])
    store.insert_chunk(make_item("m", "v", "b", size=250).chunks()[0])
    assert store.stored_bytes() == 350


def test_all_metadata_and_count():
    store, _ = make_store()
    for i in range(5):
        store.insert_metadata(sample(i))
    assert store.metadata_count() == 5
    assert len(store.all_metadata()) == 5
