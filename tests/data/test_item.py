"""Unit tests for data items and chunking."""

import pytest

from repro.data import attributes as attr
from repro.data.descriptor import make_descriptor
from repro.data.item import DEFAULT_CHUNK_SIZE, Chunk, DataItem, make_item
from repro.errors import DataModelError


def test_default_chunk_size_is_256kb():
    assert DEFAULT_CHUNK_SIZE == 256 * 1024


def test_small_item_is_single_chunk():
    item = make_item("media", "photo", "p1", size=100_000)
    assert item.total_chunks == 1
    chunks = item.chunks()
    assert len(chunks) == 1
    assert chunks[0].size == 100_000


def test_exact_multiple_chunking():
    item = make_item("media", "video", "v", size=4 * DEFAULT_CHUNK_SIZE)
    assert item.total_chunks == 4
    assert all(c.size == DEFAULT_CHUNK_SIZE for c in item.chunks())


def test_last_chunk_carries_remainder():
    item = make_item("media", "video", "v", size=DEFAULT_CHUNK_SIZE + 1000)
    chunks = item.chunks()
    assert [c.size for c in chunks] == [DEFAULT_CHUNK_SIZE, 1000]


def test_chunk_sizes_sum_to_item_size():
    item = make_item("media", "video", "v", size=20 * 1024 * 1024 + 17)
    assert sum(c.size for c in item.chunks()) == item.size


def test_chunk_ids_sequential():
    item = make_item("media", "video", "v", size=3 * DEFAULT_CHUNK_SIZE)
    assert [c.chunk_id for c in item.chunks()] == [0, 1, 2]


def test_descriptor_carries_total_chunks():
    item = make_item("media", "video", "v", size=5 * DEFAULT_CHUNK_SIZE)
    assert item.descriptor.get(attr.TOTAL_CHUNKS) == 5


def test_single_chunk_accessor_matches_chunks_list():
    item = make_item("media", "video", "v", size=2 * DEFAULT_CHUNK_SIZE + 5)
    for chunk in item.chunks():
        assert item.chunk(chunk.chunk_id) == chunk


def test_chunk_out_of_range_rejected():
    item = make_item("media", "video", "v", size=DEFAULT_CHUNK_SIZE)
    with pytest.raises(DataModelError):
        item.chunk(1)
    with pytest.raises(DataModelError):
        item.chunk(-1)


def test_chunk_item_descriptor_strips_chunk_id():
    item = make_item("media", "video", "v", size=2 * DEFAULT_CHUNK_SIZE)
    chunk = item.chunks()[1]
    assert chunk.item_descriptor == item.descriptor


def test_nonpositive_size_rejected():
    with pytest.raises(DataModelError):
        make_item("m", "v", "x", size=0)


def test_custom_chunk_size():
    item = make_item("m", "v", "x", size=1000, chunk_size=300)
    assert item.total_chunks == 4
    assert [c.size for c in item.chunks()] == [300, 300, 300, 100]


def test_chunk_requires_chunk_descriptor():
    plain = make_descriptor("m", "v")
    with pytest.raises(DataModelError):
        Chunk(plain, 10)


def test_chunk_negative_size_rejected():
    d = make_descriptor("m", "v").chunk_descriptor(0)
    with pytest.raises(DataModelError):
        Chunk(d, -1)


def test_dataitem_negative_chunk_size_rejected():
    with pytest.raises(DataModelError):
        DataItem(make_descriptor("m", "v"), size=10, chunk_size=0)
