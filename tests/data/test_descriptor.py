"""Unit tests for data descriptors."""

import pytest

from repro.data import attributes as attr
from repro.data.descriptor import DataDescriptor, make_descriptor
from repro.errors import DataModelError


def sample():
    return make_descriptor("env", "nox", time=1.0, location_x=2.0)


def test_equality_is_structural():
    assert sample() == sample()
    assert hash(sample()) == hash(sample())


def test_inequality_on_any_attribute():
    assert sample() != sample().with_attributes(time=2.0)


def test_attribute_order_does_not_matter():
    a = DataDescriptor({"x": 1, "y": 2})
    b = DataDescriptor({"y": 2, "x": 1})
    assert a == b
    assert a.stable_key() == b.stable_key()


def test_empty_descriptor_rejected():
    with pytest.raises(DataModelError):
        DataDescriptor({})


def test_bad_attribute_name_rejected():
    with pytest.raises(DataModelError):
        DataDescriptor({"": 1})


def test_bad_value_rejected():
    with pytest.raises(DataModelError):
        DataDescriptor({"x": [1, 2]})


def test_get_and_contains():
    d = sample()
    assert d.get(attr.NAMESPACE) == "env"
    assert d.get("missing") is None
    assert d.get("missing", 7) == 7
    assert attr.DATA_TYPE in d
    assert "missing" not in d


def test_with_attributes_does_not_mutate():
    d = sample()
    extended = d.with_attributes(extra=1)
    assert "extra" not in d
    assert extended.get("extra") == 1


def test_without_attributes():
    d = sample().without_attributes("time")
    assert "time" not in d


def test_chunk_descriptor_roundtrip():
    d = sample()
    chunk = d.chunk_descriptor(3)
    assert chunk.is_chunk
    assert chunk.chunk_id == 3
    assert not d.is_chunk
    assert chunk.item_descriptor() == d


def test_item_descriptor_of_non_chunk_is_self():
    d = sample()
    assert d.item_descriptor() == d


def test_stable_key_distinguishes_types():
    a = DataDescriptor({"v": 1})
    b = DataDescriptor({"v": "1"})
    assert a.stable_key() != b.stable_key()


def test_stable_key_distinguishes_int_float_despite_equality():
    a = DataDescriptor({"v": 1})
    b = DataDescriptor({"v": 1.0})
    assert a.stable_key() != b.stable_key()


def test_wire_size_positive_and_additive():
    d = sample()
    bigger = d.with_attributes(more=1.0)
    assert 0 < d.wire_size() < bigger.wire_size()


def test_names_sorted():
    d = DataDescriptor({"b": 1, "a": 2, "c": 3})
    assert d.names() == ("a", "b", "c")


def test_as_dict_is_copy():
    d = sample()
    mapping = d.as_dict()
    mapping["time"] = 999
    assert d.get("time") == 1.0


def test_repr_contains_attributes():
    assert "namespace" in repr(sample())
