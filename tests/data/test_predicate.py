"""Unit tests for predicates and query specs."""

import pytest

from repro.data.descriptor import DataDescriptor
from repro.data.predicate import (
    Predicate,
    QuerySpec,
    Relation,
    between,
    eq,
    exists,
    ge,
    gt,
    is_in,
    le,
    lt,
    ne,
    prefix,
    within_radius,
)
from repro.errors import DataModelError


def d(**attrs):
    return DataDescriptor(attrs)


def test_eq_matches():
    assert eq("t", "nox").matches(d(t="nox"))
    assert not eq("t", "nox").matches(d(t="pm25"))


def test_eq_never_matches_across_types():
    assert not eq("v", 1).matches(d(v="1"))


def test_ne():
    assert ne("t", "nox").matches(d(t="pm25"))
    assert not ne("t", "nox").matches(d(t="nox"))


def test_missing_attribute_never_matches():
    assert not eq("t", "x").matches(d(other=1))
    assert not exists("t").matches(d(other=1))
    assert not lt("t", 5).matches(d(other=1))


def test_ordered_relations():
    assert lt("v", 5).matches(d(v=4))
    assert not lt("v", 5).matches(d(v=5))
    assert le("v", 5).matches(d(v=5))
    assert gt("v", 5).matches(d(v=6))
    assert not gt("v", 5).matches(d(v=5))
    assert ge("v", 5).matches(d(v=5))


def test_ordered_relations_incomparable_types():
    assert not lt("v", 5).matches(d(v="abc"))
    assert not ge("v", "abc").matches(d(v=5))


def test_between_inclusive():
    p = between("v", 1, 3)
    assert p.matches(d(v=1))
    assert p.matches(d(v=2))
    assert p.matches(d(v=3))
    assert not p.matches(d(v=0))
    assert not p.matches(d(v=4))


def test_between_bounds_validation():
    with pytest.raises(DataModelError):
        between("v", 3, 1)
    with pytest.raises(DataModelError):
        Predicate("v", Relation.BETWEEN, (1,))


def test_in():
    p = is_in("t", ("a", "b"))
    assert p.matches(d(t="a"))
    assert not p.matches(d(t="c"))


def test_in_requires_nonempty():
    with pytest.raises(DataModelError):
        is_in("t", ())


def test_prefix():
    p = prefix("name", "video/")
    assert p.matches(d(name="video/cat.mp4"))
    assert not p.matches(d(name="audio/cat.mp3"))
    assert not p.matches(d(name=42))


def test_prefix_requires_string_operand():
    with pytest.raises(DataModelError):
        Predicate("name", Relation.PREFIX, 42)


def test_exists():
    assert exists("t").matches(d(t=0))
    assert not exists("t").matches(d(u=0))


def test_exists_rejects_operand():
    with pytest.raises(DataModelError):
        Predicate("t", Relation.EXISTS, 1)


def test_empty_spec_matches_everything():
    spec = QuerySpec()
    assert spec.matches(d(a=1))
    assert spec.matches(d(b="x"))


def test_spec_is_conjunction():
    spec = QuerySpec([eq("t", "nox"), gt("v", 5)])
    assert spec.matches(d(t="nox", v=6))
    assert not spec.matches(d(t="nox", v=5))
    assert not spec.matches(d(t="pm25", v=6))


def test_spec_equality_and_hash():
    a = QuerySpec([eq("t", "nox")])
    b = QuerySpec([eq("t", "nox")])
    assert a == b
    assert hash(a) == hash(b)


def test_spec_and_also():
    spec = QuerySpec([eq("t", "nox")]).and_also(gt("v", 5))
    assert len(spec) == 2


def test_within_radius_bounding_box():
    px, py = within_radius("x", "y", (10.0, 10.0), 5.0)
    spec = QuerySpec([px, py])
    assert spec.matches(d(x=12.0, y=8.0))
    assert not spec.matches(d(x=20.0, y=10.0))


def test_predicate_wire_size_positive():
    for p in (eq("t", "nox"), between("v", 1, 2), is_in("t", ("a", "b")), exists("x")):
        assert p.wire_size() > 0


def test_spec_wire_size_sums_predicates():
    single = QuerySpec([eq("t", "nox")])
    double = QuerySpec([eq("t", "nox"), eq("u", "pm")])
    assert double.wire_size() > single.wire_size()


def test_empty_attribute_name_rejected():
    with pytest.raises(DataModelError):
        eq("", 1)
