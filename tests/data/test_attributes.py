"""Unit tests for attribute values and wire sizing."""

import pytest

from repro.data.attributes import (
    validate_value,
    values_comparable,
    wire_size,
)
from repro.errors import DataModelError


def test_validate_accepts_primitives():
    for value in ("s", 1, 2.5, True, False):
        assert validate_value(value) == value


def test_validate_rejects_containers():
    for bad in ([1], {"a": 1}, (1,), None, object()):
        with pytest.raises(DataModelError):
            validate_value(bad)


def test_values_comparable_strings_with_strings():
    assert values_comparable("a", "b")
    assert not values_comparable("a", 1)
    assert not values_comparable(1, "a")


def test_values_comparable_numbers_and_bools():
    assert values_comparable(1, 2.5)
    assert values_comparable(True, 0)


def test_wire_size_numeric_is_compact():
    # 2-byte attribute id + 4-byte numeric.
    assert wire_size("time", 12.5) == 6
    assert wire_size("x", 3) == 6


def test_wire_size_bool():
    assert wire_size("flag", True) == 3


def test_wire_size_string_scales_with_length():
    assert wire_size("t", "ab") == 2 + 2 + 1
    assert wire_size("t", "abcd") == 2 + 4 + 1


def test_sample_entry_is_about_thirty_bytes():
    """The paper's metadata entries are ~30 bytes (§VI-A)."""
    total = (
        wire_size("namespace", "env")
        + wire_size("data_type", "nox")
        + wire_size("time", 1.0)
        + wire_size("location_x", 2.0)
        + wire_size("location_y", 3.0)
    )
    assert 25 <= total <= 35
