"""Unit tests for the Bloom filter."""

import pytest

from repro.bloom.bloom_filter import (
    BloomFilter,
    NullFilter,
    make_round_filter,
)
from repro.errors import ConfigurationError


def keys(n, tag=b"k"):
    return [tag + str(i).encode() for i in range(n)]


def test_inserted_keys_are_members():
    bloom = BloomFilter.for_capacity(100)
    for key in keys(100):
        bloom.insert(key)
    assert all(key in bloom for key in keys(100))


def test_empty_filter_has_no_members():
    bloom = BloomFilter.for_capacity(100)
    assert not any(key in bloom for key in keys(50))


def test_false_positive_rate_near_target():
    bloom = BloomFilter.for_capacity(500, false_positive_rate=0.01)
    bloom.insert_all(keys(500))
    probes = keys(20000, tag=b"other")
    fp = sum(1 for key in probes if key in bloom)
    assert fp / len(probes) < 0.03


def test_seed_changes_hash_family():
    a = BloomFilter(256, 4, seed=1)
    b = BloomFilter(256, 4, seed=2)
    a.insert(b"x")
    b.insert(b"x")
    assert a._bits != b._bits


def test_union_update():
    a = BloomFilter(256, 4, seed=1)
    b = BloomFilter(256, 4, seed=1)
    a.insert(b"left")
    b.insert(b"right")
    a.union_update(b)
    assert b"left" in a
    assert b"right" in a


def test_union_requires_same_geometry():
    a = BloomFilter(256, 4, seed=1)
    with pytest.raises(ConfigurationError):
        a.union_update(BloomFilter(128, 4, seed=1))
    with pytest.raises(ConfigurationError):
        a.union_update(BloomFilter(256, 3, seed=1))
    with pytest.raises(ConfigurationError):
        a.union_update(BloomFilter(256, 4, seed=2))


def test_copy_is_independent():
    a = BloomFilter(256, 4)
    clone = a.copy()
    clone.insert(b"x")
    assert b"x" in clone
    assert b"x" not in a


def test_wire_size_scales_with_bits():
    small = BloomFilter(64, 2)
    large = BloomFilter(4096, 2)
    assert small.wire_size() < large.wire_size()


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigurationError):
        BloomFilter(0, 1)
    with pytest.raises(ConfigurationError):
        BloomFilter(64, 0)


def test_fill_ratio_grows_with_inserts():
    bloom = BloomFilter(512, 4)
    before = bloom.fill_ratio()
    bloom.insert_all(keys(50))
    assert bloom.fill_ratio() > before


def test_estimated_fp_rate_monotone():
    bloom = BloomFilter.for_capacity(100)
    empty_rate = bloom.estimated_false_positive_rate()
    bloom.insert_all(keys(100))
    assert bloom.estimated_false_positive_rate() > empty_rate


# ----------------------------------------------------------------------
# NullFilter
# ----------------------------------------------------------------------
def test_null_filter_contains_nothing():
    null = NullFilter()
    null.insert(b"x")
    assert b"x" not in null


def test_null_filter_copy_is_self():
    null = NullFilter()
    assert null.copy() is null


def test_null_filter_wire_size_zero():
    assert NullFilter().wire_size() == 0


# ----------------------------------------------------------------------
# make_round_filter (§V-3)
# ----------------------------------------------------------------------
def test_round_filter_contains_received():
    received = keys(200)
    bloom = make_round_filter(received, round_index=1)
    assert all(key in bloom for key in received)


def test_round_filter_seed_is_round_index():
    assert make_round_filter([], 3).seed == 3


def test_round_filter_headroom_prevents_overfill():
    """En-route insertions must not blow up the false-positive rate."""
    bloom = make_round_filter(keys(10), round_index=1, headroom=600)
    # Simulate relays inserting ~300 en-route entries.
    bloom.insert_all(keys(300, tag=b"enroute"))
    probes = keys(5000, tag=b"probe")
    fp = sum(1 for key in probes if key in bloom)
    assert fp / len(probes) < 0.05


def test_round_filter_respects_max_bits():
    bloom = make_round_filter(keys(10000), round_index=1, max_bits=2048)
    assert bloom.m_bits == 2048


def test_round_filter_fp_decays_across_rounds():
    """§V-3: different hash families per round shrink persistent FPs."""
    received = keys(800)
    probes = keys(4000, tag=b"probe")
    surviving = list(probes)
    rates = []
    for round_index in (1, 2, 3):
        bloom = make_round_filter(
            received, round_index, max_bits=2048, headroom=0
        )
        surviving = [key for key in surviving if key in bloom]
        rates.append(len(surviving) / len(probes))
    # Per-round FP ≈ p each; surviving-after-k-rounds ≈ p^k (geometric
    # decay, §V-3's "0.003 in 3 rounds" argument).
    assert rates[1] < rates[0]
    assert rates[2] < rates[1]
    assert rates[2] < rates[0] ** 2
