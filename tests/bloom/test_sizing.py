"""Unit tests for Bloom filter sizing math."""

import math

import pytest

from repro.bloom.sizing import (
    MIN_BITS,
    expected_false_positive_rate,
    optimal_parameters,
)
from repro.errors import ConfigurationError


def test_textbook_values():
    # n=1000, p=0.01 -> m ~ 9586 bits, k ~ 7.
    m, k = optimal_parameters(1000, 0.01)
    assert 9500 <= m <= 9700
    assert k == 7


def test_zero_elements_gets_minimal_filter():
    m, k = optimal_parameters(0)
    assert m == MIN_BITS
    assert k == 1


def test_bits_scale_linearly_with_elements():
    m1, _ = optimal_parameters(1000, 0.01)
    m2, _ = optimal_parameters(2000, 0.01)
    assert abs(m2 - 2 * m1) < 16


def test_lower_fp_needs_more_bits():
    loose, _ = optimal_parameters(1000, 0.1)
    tight, _ = optimal_parameters(1000, 0.001)
    assert tight > loose


def test_invalid_rates_rejected():
    for rate in (0.0, 1.0, -0.5, 2.0):
        with pytest.raises(ConfigurationError):
            optimal_parameters(100, rate)


def test_expected_fp_rate_empty_is_zero():
    assert expected_false_positive_rate(1024, 4, 0) == 0.0


def test_expected_fp_rate_matches_design_point():
    m, k = optimal_parameters(1000, 0.01)
    rate = expected_false_positive_rate(m, k, 1000)
    assert math.isclose(rate, 0.01, rel_tol=0.35)


def test_expected_fp_rate_degenerate_filter():
    assert expected_false_positive_rate(0, 4, 10) == 1.0
