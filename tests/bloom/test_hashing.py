"""Unit tests for the Bloom hash family."""

from repro.bloom.hashing import _base_hashes, indexes


def test_indexes_deterministic():
    a = list(indexes(b"key", seed=1, k=5, m=1024))
    b = list(indexes(b"key", seed=1, k=5, m=1024))
    assert a == b


def test_indexes_in_range():
    for index in indexes(b"key", seed=3, k=16, m=100):
        assert 0 <= index < 100


def test_seed_changes_indexes():
    a = list(indexes(b"key", seed=1, k=8, m=4096))
    b = list(indexes(b"key", seed=2, k=8, m=4096))
    assert a != b


def test_different_keys_differ():
    a = list(indexes(b"key-a", seed=1, k=8, m=4096))
    b = list(indexes(b"key-b", seed=1, k=8, m=4096))
    assert a != b


def test_stride_is_odd():
    for key in (b"", b"a", b"abc", b"0" * 100):
        _, h2 = _base_hashes(key, 7)
        assert h2 % 2 == 1


def test_k_controls_count():
    assert len(list(indexes(b"k", 0, 3, 64))) == 3
    assert len(list(indexes(b"k", 0, 9, 64))) == 9


def test_dispersion_over_small_table():
    """The k positions of distinct keys should not all collide."""
    seen = set()
    for i in range(100):
        seen.update(indexes(str(i).encode(), seed=0, k=4, m=512))
    assert len(seen) > 200
