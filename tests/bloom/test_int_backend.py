"""The int-backed Bloom filter must match a bytearray reference bit for
bit, and ``count`` must behave as an upper bound on distinct keys."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.hashing import bit_mask, indexes
from repro.errors import ConfigurationError

keys = st.lists(st.binary(min_size=1, max_size=24), min_size=0, max_size=50)
geometry = st.tuples(
    st.integers(min_value=8, max_value=700),   # m_bits
    st.integers(min_value=1, max_value=6),     # k_hashes
    st.integers(min_value=0, max_value=9),     # seed
)


class ByteArrayReference:
    """The historical bytearray implementation, kept as an oracle."""

    def __init__(self, m_bits, k_hashes, seed):
        self.m_bits = m_bits
        self.k_hashes = k_hashes
        self.seed = seed
        self.bits = bytearray((m_bits + 7) // 8)
        self.count = 0

    def insert(self, key):
        changed = False
        for index in indexes(key, self.seed, self.k_hashes, self.m_bits):
            byte, bit = divmod(index, 8)
            if not self.bits[byte] >> bit & 1:
                self.bits[byte] |= 1 << bit
                changed = True
        if changed:
            self.count += 1
        return changed

    def __contains__(self, key):
        return all(
            self.bits[index // 8] >> (index % 8) & 1
            for index in indexes(key, self.seed, self.k_hashes, self.m_bits)
        )

    def union_update(self, other):
        for i, byte in enumerate(other.bits):
            self.bits[i] |= byte
        self.count += other.count


@given(geometry, keys, keys)
@settings(max_examples=80, deadline=None)
def test_matches_bytearray_reference(geom, inserted, probes):
    m_bits, k_hashes, seed = geom
    fast = BloomFilter(m_bits, k_hashes, seed=seed)
    reference = ByteArrayReference(m_bits, k_hashes, seed)
    for key in inserted:
        assert fast.insert(key) == reference.insert(key)
    assert fast.to_bytes() == bytes(reference.bits)
    assert fast.count == reference.count
    for key in inserted + probes:
        assert (key in fast) == (key in reference)
    # Wire size depends only on geometry, not the backing representation.
    assert fast.wire_size() == (m_bits + 7) // 8 + 6


@given(geometry, keys, keys)
@settings(max_examples=60, deadline=None)
def test_union_matches_bytearray_reference(geom, left_keys, right_keys):
    m_bits, k_hashes, seed = geom
    fast_left = BloomFilter(m_bits, k_hashes, seed=seed)
    fast_right = BloomFilter(m_bits, k_hashes, seed=seed)
    ref_left = ByteArrayReference(m_bits, k_hashes, seed)
    ref_right = ByteArrayReference(m_bits, k_hashes, seed)
    for key in left_keys:
        fast_left.insert(key)
        ref_left.insert(key)
    for key in right_keys:
        fast_right.insert(key)
        ref_right.insert(key)
    fast_left.union_update(fast_right)
    ref_left.union_update(ref_right)
    assert fast_left.to_bytes() == bytes(ref_left.bits)
    assert fast_left.count == ref_left.count
    for key in left_keys + right_keys:
        assert key in fast_left


@given(st.binary(min_size=1, max_size=24), geometry)
@settings(max_examples=60, deadline=None)
def test_bit_mask_is_indexes_folded(key, geom):
    m_bits, k_hashes, seed = geom
    expected = 0
    for index in indexes(key, seed, k_hashes, m_bits):
        expected |= 1 << index
    assert bit_mask(key, seed, k_hashes, m_bits) == expected


# ----------------------------------------------------------------------
# count semantics (the misreporting bug)
# ----------------------------------------------------------------------
def test_duplicate_inserts_do_not_inflate_count():
    bloom = BloomFilter(256, 4, seed=1)
    for _ in range(10):
        bloom.insert(b"same-key")
    assert bloom.count == 1
    assert not bloom.insert(b"same-key")


def test_count_is_upper_bound_after_union():
    left = BloomFilter(256, 4, seed=1)
    right = BloomFilter(256, 4, seed=1)
    shared = [b"key-%d" % i for i in range(8)]
    for key in shared:
        left.insert(key)
        right.insert(key)
    right.insert(b"only-right")
    left.union_update(right)
    # 9 distinct keys; the bound may overshoot but never undershoot.
    assert left.count >= 9
    assert left.count == 8 + 9


def test_fp_estimate_tracks_actual_fill_not_count():
    """After a union of overlapping filters the count overshoots; the FP
    estimate must come from the real bit fill, not the count."""
    left = BloomFilter(512, 4, seed=2)
    right = BloomFilter(512, 4, seed=2)
    for i in range(40):
        key = b"shared-%d" % i
        left.insert(key)
        right.insert(key)
    before_bits = left.to_bytes()
    before_rate = left.estimated_false_positive_rate()
    left.union_update(right)
    # Identical bit arrays => identical FP probability, despite count
    # having roughly doubled.
    assert left.to_bytes() == before_bits
    assert left.estimated_false_positive_rate() == pytest.approx(before_rate)
    assert left.count > 40
    assert 0.0 <= left.estimated_false_positive_rate() <= 1.0
    assert left.fill_ratio() == pytest.approx(
        sum(bin(byte).count("1") for byte in left.to_bytes()) / 512
    )


def test_union_geometry_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        BloomFilter(256, 4, seed=1).union_update(BloomFilter(256, 4, seed=2))
    with pytest.raises(ConfigurationError):
        BloomFilter(256, 4, seed=1).union_update(BloomFilter(128, 4, seed=1))


def test_legacy_bits_view_round_trips():
    bloom = BloomFilter(64, 3, seed=5)
    bloom.insert(b"alpha")
    view = bloom._bits
    assert isinstance(view, bytearray)
    other = BloomFilter(64, 3, seed=5)
    other._bits = view
    assert other.to_bytes() == bloom.to_bytes()
    assert b"alpha" in other
