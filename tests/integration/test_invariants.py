"""Global invariants hold after end-to-end protocol runs."""

from repro.experiments.figures.common import pdd_experiment, retrieval_experiment
from repro.experiments.validation import (
    check_all,
    check_cdi_hop_soundness,
    check_metadata_payload_consistency,
    check_queue_hygiene,
    check_store_chunk_ids_valid,
)
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def test_invariants_after_discovery():
    outcome = pdd_experiment(seed=1, rows=5, cols=5, metadata_count=200)
    assert check_all(outcome.scenario) == []


def test_invariants_after_retrieval():
    item = make_video_item(2 * MB)
    outcome = retrieval_experiment(seed=2, item=item, rows=5, cols=5)
    scenario = outcome.scenario
    assert check_metadata_payload_consistency(scenario) == []
    assert check_store_chunk_ids_valid(scenario) == []
    assert check_cdi_hop_soundness(scenario, item.descriptor) == []


def test_invariants_after_mdr():
    item = make_video_item(2 * MB)
    outcome = retrieval_experiment(seed=3, item=item, method="mdr", rows=5, cols=5)
    assert check_all(outcome.scenario, item.descriptor) == []


def test_queue_hygiene_at_quiescence():
    item = make_video_item(1 * MB)
    outcome = retrieval_experiment(seed=4, item=item, rows=5, cols=5)
    scenario = outcome.scenario
    # Drain any tail traffic (acks, lingering retries) to quiescence.
    while scenario.sim.pending_events and scenario.sim.now < 1200:
        scenario.sim.run(until=scenario.sim.now + 30.0)
    assert check_queue_hygiene(scenario) == []


def test_checkers_report_violations(tmp_path):
    """The checkers actually detect a planted inconsistency."""
    outcome = pdd_experiment(seed=5, rows=3, cols=3, metadata_count=20)
    scenario = outcome.scenario
    device = scenario.device(scenario.consumers[0])
    item = make_video_item(MB)
    chunk = item.chunks()[0]
    device.store.insert_chunk(chunk)
    device.store.remove_metadata(chunk.item_descriptor)
    device.store.remove_metadata(chunk.descriptor)
    violations = check_metadata_payload_consistency(scenario)
    assert violations
    assert "metadata is missing" in violations[0]
