"""End-to-end PDD/PDR in mobile campus scenarios (Figs. 9, 10, 12)."""

from repro.core.consumer import DiscoverySession
from repro.experiments.figures.common import pdd_experiment, retrieval_experiment
from repro.experiments.scenario import build_campus_scenario
from repro.experiments.workload import (
    distribute_chunks,
    distribute_metadata,
    generate_metadata,
    make_video_item,
)
from repro.mobility.campus import CLASSROOMS, STUDENT_CENTER

MB = 1024 * 1024


def test_pdd_under_student_center_mobility():
    scenario = build_campus_scenario(
        STUDENT_CENTER, seed=1, frequency_scale=1.0, duration_s=90.0
    )
    outcome = pdd_experiment(
        seed=1,
        metadata_count=400,
        scenario=scenario,
        start_at=15.0,
        sim_cap_s=70.0,
    )
    # Some entries may have walked away with leavers; mobility-robustness
    # means recall stays high nonetheless.
    assert outcome.first.recall > 0.85


def test_pdd_under_classroom_mobility():
    scenario = build_campus_scenario(
        CLASSROOMS, seed=2, frequency_scale=1.0, duration_s=90.0
    )
    outcome = pdd_experiment(
        seed=2,
        metadata_count=400,
        scenario=scenario,
        start_at=15.0,
        sim_cap_s=70.0,
    )
    assert outcome.first.recall > 0.9


def test_pdd_robust_to_doubled_mobility():
    """Figs. 9–10: recall stays near 100% even at 2× observed churn."""
    scenario = build_campus_scenario(
        STUDENT_CENTER, seed=3, frequency_scale=2.0, duration_s=90.0
    )
    outcome = pdd_experiment(
        seed=3,
        metadata_count=300,
        scenario=scenario,
        start_at=15.0,
        sim_cap_s=70.0,
    )
    assert outcome.first.recall > 0.8


def test_pdr_under_mobility():
    """Fig. 12: a sizable item is retrieved while the crowd churns."""
    scenario = build_campus_scenario(
        STUDENT_CENTER, seed=4, frequency_scale=1.0, duration_s=240.0
    )
    item = make_video_item(2 * MB)
    outcome = retrieval_experiment(
        seed=4,
        item=item,
        redundancy=2,
        scenario=scenario,
        start_at=15.0,
        sim_cap_s=200.0,
    )
    assert outcome.first.recall == 1.0


def test_data_leaves_with_departing_node():
    """A leaver's un-cached data is genuinely gone afterwards."""
    scenario = build_campus_scenario(
        STUDENT_CENTER, seed=5, frequency_scale=0.0, duration_s=300.0
    )
    entries = generate_metadata(10)
    holder = scenario.extras["trace"].initial_nodes[0]
    for entry in entries:
        scenario.devices[holder].add_metadata(entry)
    # Remove the holder manually mid-run, before any query is sent.
    scenario.sim.schedule(
        1.0, lambda: scenario.trace_player._leave(holder)
    )
    consumer_id = next(
        n for n in scenario.extras["trace"].initial_nodes if n != holder
    )
    session = DiscoverySession(scenario.device(consumer_id))
    scenario.sim.schedule(10.0, session.start)
    scenario.sim.run(until=120.0)
    assert session.done
    assert len(session.received) == 0
