"""End-to-end PDD: grid scenarios exercising the whole stack."""

import pytest

from repro.core.consumer import DiscoverySession
from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import experiment_device_config, pdd_experiment
from repro.experiments.scenario import build_grid_scenario
from repro.experiments.workload import distribute_metadata, generate_metadata


def test_multi_round_pdd_reaches_full_recall_on_5x5():
    outcome = pdd_experiment(seed=1, rows=5, cols=5, metadata_count=300)
    assert outcome.first.recall == 1.0
    assert outcome.first.result.latency > 0
    assert outcome.total_overhead_bytes > 0


def test_single_round_with_ack_beats_single_round_without():
    """On a lossy multi-hop path, per-hop ack/retransmission is what keeps
    a single round's recall up (§VI-B-1: 76% vs 32% in the paper)."""
    from repro.net.reliability import ReliabilityConfig
    from repro.node.config import DeviceConfig
    from tests.helpers import line_positions, make_net

    def run(ack: bool) -> float:
        config = DeviceConfig(reliability=ReliabilityConfig(enabled=ack))
        net = make_net(
            line_positions(4), seed=11, device_config=config, base_loss=0.3
        )
        from repro.data import make_descriptor

        entries = [
            make_descriptor("env", "nox", time=float(i)) for i in range(60)
        ]
        for i, entry in enumerate(entries):
            net.devices[1 + i % 3].add_metadata(entry)
        session = DiscoverySession(
            net.devices[0], round_config=RoundConfig(max_rounds=1)
        )
        net.sim.schedule(0.0, session.start)
        net.sim.run(until=60.0)
        return len(session.received) / len(entries)

    assert run(True) > run(False) + 0.1


def test_multi_round_beats_single_round():
    single = pdd_experiment(
        seed=3,
        rows=7,
        cols=7,
        metadata_count=700,
        round_config=RoundConfig(max_rounds=1),
        ack=False,
    )
    multi = pdd_experiment(
        seed=3,
        rows=7,
        cols=7,
        metadata_count=700,
        round_config=RoundConfig(),
        ack=False,
    )
    assert multi.first.recall > single.first.recall
    assert multi.first.result.rounds > 1


def test_recall_decreases_with_grid_size_single_round():
    """Fig. 4's core claim: one round cannot cover a large network."""
    small = pdd_experiment(
        seed=4, rows=3, cols=3, metadata_count=9 * 50,
        round_config=RoundConfig(max_rounds=1),
    )
    large = pdd_experiment(
        seed=4, rows=9, cols=9, metadata_count=81 * 50,
        round_config=RoundConfig(max_rounds=1),
    )
    assert small.first.recall > large.first.recall


def test_redundancy_detection_reduces_overhead():
    """Bloom-filter rewriting cuts redundant metadata transmissions."""
    with_rd = pdd_experiment(
        seed=5, rows=5, cols=5, metadata_count=400, redundancy=3,
        redundancy_detection=True,
    )
    without_rd = pdd_experiment(
        seed=5, rows=5, cols=5, metadata_count=400, redundancy=3,
        redundancy_detection=False,
    )
    assert with_rd.first.recall == pytest.approx(1.0, abs=0.02)
    assert with_rd.total_overhead_bytes < without_rd.total_overhead_bytes


def test_sequential_consumers_later_is_faster():
    """Fig. 7: caching makes later sequential consumers much faster."""
    outcome = pdd_experiment(
        seed=6, rows=7, cols=7, metadata_count=500,
        n_consumers=3, mode="sequential", sim_cap_s=300.0,
    )
    assert len(outcome.consumers) == 3
    assert all(c.recall > 0.95 for c in outcome.consumers)
    first, last = outcome.consumers[0], outcome.consumers[-1]
    # Later consumers find almost everything already cached nearby.  (The
    # overhead drop of Fig. 7 needs paper-scale workloads where data bytes
    # dwarf the per-query Bloom filters; see the fig7 bench.)
    assert last.result.latency < first.result.latency


def test_simultaneous_consumers_all_complete():
    """Fig. 8: mixedcast serves several consumers at sublinear cost."""
    outcome = pdd_experiment(
        seed=7, rows=7, cols=7, metadata_count=500,
        n_consumers=3, mode="simultaneous", sim_cap_s=300.0,
    )
    assert all(c.recall > 0.95 for c in outcome.consumers)


def test_metadata_spread_by_caching():
    """After discovery, entries are cached far beyond their producers."""
    scenario = build_grid_scenario(
        rows=5, cols=5, seed=8, device_config=experiment_device_config()
    )
    entries = generate_metadata(100)
    distribute_metadata(scenario.devices, entries, scenario.workload_rng())
    session = DiscoverySession(scenario.device(scenario.consumers[0]))
    scenario.sim.schedule(0.0, session.start)
    scenario.sim.run(until=120.0)
    # Count cached copies of the first entry across the grid.
    copies = sum(
        1
        for device in scenario.devices.values()
        if device.store.has_metadata(entries[0])
    )
    assert copies > 3
