"""Cross-run determinism: identical seeds must reproduce identical runs.

Reproducibility is the backbone of the experiment harness — the paper
averages over 5 seeded runs, and regressions here silently invalidate
every comparison.
"""

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment, retrieval_experiment
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def test_pdd_identical_across_runs():
    a = pdd_experiment(seed=17, rows=5, cols=5, metadata_count=300)
    b = pdd_experiment(seed=17, rows=5, cols=5, metadata_count=300)
    assert a.first.recall == b.first.recall
    assert a.first.result.latency == b.first.result.latency
    assert a.first.result.rounds == b.first.result.rounds
    assert a.total_overhead_bytes == b.total_overhead_bytes


def test_pdd_differs_across_seeds():
    a = pdd_experiment(seed=17, rows=5, cols=5, metadata_count=300)
    b = pdd_experiment(seed=18, rows=5, cols=5, metadata_count=300)
    assert (
        a.total_overhead_bytes != b.total_overhead_bytes
        or a.first.result.latency != b.first.result.latency
    )


def test_pdr_identical_across_runs():
    runs = []
    for _ in range(2):
        item = make_video_item(1 * MB)
        outcome = retrieval_experiment(seed=23, item=item, rows=5, cols=5)
        runs.append(
            (
                outcome.first.recall,
                outcome.first.result.latency,
                outcome.total_overhead_bytes,
            )
        )
    assert runs[0] == runs[1]


def test_mdr_identical_across_runs():
    runs = []
    for _ in range(2):
        item = make_video_item(1 * MB)
        outcome = retrieval_experiment(
            seed=29,
            item=item,
            method="mdr",
            rows=5,
            cols=5,
            round_config=RoundConfig(window_s=4.0),
        )
        runs.append(
            (
                outcome.first.recall,
                outcome.first.result.latency,
                outcome.total_overhead_bytes,
            )
        )
    assert runs[0] == runs[1]


def test_mobility_trace_identical_across_runs():
    from repro.experiments.scenario import build_campus_scenario
    from repro.mobility.campus import STUDENT_CENTER

    traces = []
    for _ in range(2):
        scenario = build_campus_scenario(
            STUDENT_CENTER, seed=31, duration_s=60.0
        )
        traces.append(scenario.extras["trace"].events)
    assert traces[0] == traces[1]
