"""End-to-end PDR and MDR over the full stack."""

import pytest

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def test_pdr_retrieves_full_item():
    item = make_video_item(2 * MB)
    outcome = retrieval_experiment(seed=1, item=item, rows=5, cols=5)
    assert outcome.first.recall == 1.0
    assert outcome.first.result.completed
    assert outcome.first.result.latency > 0


def test_pdr_overhead_a_few_times_item_size():
    """Fig. 11: overhead ≈ 2–3× the item size (multi-hop travel)."""
    item = make_video_item(4 * MB)
    outcome = retrieval_experiment(seed=2, item=item, rows=7, cols=7)
    ratio = outcome.total_overhead_bytes / (4 * MB)
    assert 1.0 <= ratio <= 8.0


def test_pdr_latency_grows_with_item_size():
    small = retrieval_experiment(
        seed=3, item=make_video_item(1 * MB), rows=5, cols=5
    )
    large = retrieval_experiment(
        seed=3, item=make_video_item(4 * MB), rows=5, cols=5
    )
    assert large.first.result.latency > small.first.result.latency


def test_pdr_flat_under_redundancy_mdr_grows():
    """Figs. 13–14 headline: PDR stays flat, MDR grows with redundancy."""
    item_size = 3 * MB
    pdr_1 = retrieval_experiment(
        seed=4, item=make_video_item(item_size), method="pdr",
        rows=7, cols=7, redundancy=1,
    )
    pdr_4 = retrieval_experiment(
        seed=4, item=make_video_item(item_size), method="pdr",
        rows=7, cols=7, redundancy=4,
    )
    mdr_1 = retrieval_experiment(
        seed=4, item=make_video_item(item_size), method="mdr",
        rows=7, cols=7, redundancy=1,
    )
    mdr_4 = retrieval_experiment(
        seed=4, item=make_video_item(item_size), method="mdr",
        rows=7, cols=7, redundancy=4,
    )
    for outcome in (pdr_1, pdr_4, mdr_1, mdr_4):
        assert outcome.first.recall == 1.0
    # PDR does not grow with redundancy (allow small noise).
    assert pdr_4.total_overhead_bytes <= pdr_1.total_overhead_bytes * 1.3
    # MDR transmits duplicate copies from different reverse paths.
    assert mdr_4.total_overhead_bytes > mdr_1.total_overhead_bytes * 1.5
    # At high redundancy PDR costs (much) less than MDR.
    assert pdr_4.total_overhead_bytes < mdr_4.total_overhead_bytes


def test_pdr_sequential_consumers_benefit_from_caching():
    """Fig. 15: later consumers retrieve from closer cached copies."""
    item = make_video_item(2 * MB)
    outcome = retrieval_experiment(
        seed=5, item=item, rows=7, cols=7,
        n_consumers=3, mode="sequential", sim_cap_s=900.0,
    )
    assert all(c.recall == 1.0 for c in outcome.consumers)
    first, last = outcome.consumers[0], outcome.consumers[-1]
    assert last.overhead_bytes < first.overhead_bytes


def test_pdr_simultaneous_consumers_complete():
    """Fig. 16: simultaneous consumers all finish."""
    item = make_video_item(2 * MB)
    outcome = retrieval_experiment(
        seed=6, item=item, rows=7, cols=7,
        n_consumers=2, mode="simultaneous", sim_cap_s=900.0,
    )
    assert all(c.recall == 1.0 for c in outcome.consumers)


def test_mdr_retrieves_full_item():
    item = make_video_item(2 * MB)
    outcome = retrieval_experiment(seed=7, item=item, method="mdr", rows=5, cols=5)
    assert outcome.first.recall == 1.0
