"""Property-based tests for the event queue ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import EventQueue
from repro.sim.simulator import Simulator

schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.integers(-3, 3),
    ),
    max_size=60,
)


@given(schedules)
@settings(max_examples=100)
def test_pop_order_is_time_then_priority_then_fifo(items):
    queue = EventQueue()
    for index, (time, priority) in enumerate(items):
        queue.push(time, lambda: None, (), priority=priority)
    popped = []
    while queue:
        event = queue.pop()
        popped.append((event.time, event.priority, event.sequence))
    assert popped == sorted(popped)


@given(schedules, st.sets(st.integers(0, 59)))
@settings(max_examples=100)
def test_cancellation_removes_exactly_those_events(items, to_cancel):
    queue = EventQueue()
    events = []
    for time, priority in items:
        events.append(queue.push(time, lambda: None, (), priority=priority))
    cancelled = set()
    for index in to_cancel:
        if index < len(events):
            queue.cancel(events[index])
            cancelled.add(events[index].sequence)
    surviving = []
    while queue:
        surviving.append(queue.pop().sequence)
    expected = [e.sequence for e in events if e.sequence not in cancelled]
    assert sorted(surviving) == sorted(expected)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40))
@settings(max_examples=100)
def test_simulator_clock_monotonic(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    if delays:
        assert sim.now == max(delays)
