"""Property-based tests for the GAP assignment heuristic (Eq. 1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import assign_chunks, max_load


@st.composite
def instances(draw):
    """Random chunk→(neighbor, hop) option maps."""
    n_neighbors = draw(st.integers(1, 6))
    n_chunks = draw(st.integers(0, 20))
    options = {}
    for chunk_id in range(n_chunks):
        count = draw(st.integers(0, n_neighbors))
        neighbors = draw(
            st.lists(
                st.integers(0, n_neighbors - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        options[chunk_id] = [
            (neighbor, draw(st.integers(1, 5))) for neighbor in neighbors
        ]
    return options


@given(instances())
@settings(max_examples=100)
def test_every_assignable_chunk_assigned_exactly_once(options):
    """Eq. 1 constraint: Σ_i x_ij = 1 for every chunk with options."""
    assignment = assign_chunks(options)
    assigned = sorted(c for chunks in assignment.values() for c in chunks)
    expected = sorted(c for c, opts in options.items() if opts)
    assert assigned == expected


@given(instances())
@settings(max_examples=100)
def test_assignment_only_uses_offered_neighbors(options):
    """Eq. 1 constraint: x_ij ≤ availability."""
    assignment = assign_chunks(options)
    for neighbor, chunks in assignment.items():
        for chunk in chunks:
            assert neighbor in {n for n, _ in options[chunk]}


@given(instances(), st.integers(0, 2**16))
@settings(max_examples=100)
def test_never_worse_than_pure_least_hop_greedy(options, seed):
    assignment = assign_chunks(options, random.Random(seed))
    greedy = {}
    for chunk, opts in options.items():
        if not opts:
            continue
        neighbor, _ = min(opts, key=lambda p: (p[1], p[0]))
        greedy.setdefault(neighbor, set()).add(chunk)
    assert max_load(options, assignment) <= max_load(options, greedy)


@given(instances())
@settings(max_examples=100)
def test_deterministic_without_rng(options):
    assert assign_chunks(options) == assign_chunks(options)


@given(st.integers(1, 20), st.integers(1, 6))
@settings(max_examples=50)
def test_uniform_single_hop_instances_balance(n_chunks, n_neighbors):
    """All neighbors offer every chunk at hop 1 → near-even split."""
    options = {c: [(n, 1) for n in range(n_neighbors)] for c in range(n_chunks)}
    assignment = assign_chunks(options)
    load = max_load(options, assignment)
    optimal = -(-n_chunks // n_neighbors)  # ceil division
    assert load == optimal
