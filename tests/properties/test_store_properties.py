"""Property-based tests for data-store invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.descriptor import DataDescriptor
from repro.data.item import DataItem
from repro.data.predicate import QuerySpec
from repro.data.store import DataStore


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


descriptors = st.builds(
    lambda i: DataDescriptor({"namespace": "t", "data_type": "x", "time": float(i)}),
    st.integers(0, 200),
)


@given(st.lists(descriptors, max_size=50))
@settings(max_examples=100)
def test_metadata_count_equals_distinct_inserts(batch):
    store = DataStore(Clock())
    for descriptor in batch:
        store.insert_metadata(descriptor)
    assert store.metadata_count() == len(set(batch))
    assert set(store.all_metadata()) == set(batch)


@given(st.lists(descriptors, max_size=50))
@settings(max_examples=100)
def test_insert_returns_new_exactly_once_per_descriptor(batch):
    store = DataStore(Clock())
    new_count = sum(1 for d in batch if store.insert_metadata(d))
    assert new_count == len(set(batch))


@given(
    st.lists(descriptors, min_size=1, max_size=30),
    st.floats(min_value=0.1, max_value=100.0),
)
@settings(max_examples=100)
def test_everything_expires_without_payload(batch, ttl):
    clock = Clock()
    store = DataStore(clock, metadata_ttl=ttl)
    for descriptor in batch:
        store.insert_metadata(descriptor, has_payload=False)
    clock.now = ttl + 0.001
    assert store.metadata_count() == 0


@given(st.lists(descriptors, min_size=1, max_size=30))
@settings(max_examples=100)
def test_match_all_spec_returns_everything_live(batch):
    store = DataStore(Clock())
    for descriptor in batch:
        store.insert_metadata(descriptor)
    assert set(store.match_metadata(QuerySpec())) == set(batch)


@given(st.integers(1, 500_000), st.integers(64, 1_000_000))
@settings(max_examples=100, deadline=None)
def test_chunk_sizes_always_sum_to_item_size(size, chunk_size):
    item = DataItem(
        DataDescriptor({"namespace": "m", "data_type": "v", "name": "x"}),
        size=size,
        chunk_size=chunk_size,
    )
    chunks = item.chunks()
    assert sum(c.size for c in chunks) == size
    assert len(chunks) == item.total_chunks
    assert [c.chunk_id for c in chunks] == list(range(item.total_chunks))


@given(st.lists(st.integers(0, 30), min_size=1, max_size=31, unique=True))
@settings(max_examples=100)
def test_chunk_ids_of_sorted_regardless_of_insert_order(chunk_ids):
    store = DataStore(Clock())
    item = DataItem(
        DataDescriptor({"namespace": "m", "data_type": "v", "name": "x"}),
        size=32 * 1000,
        chunk_size=1000,
    )
    for chunk_id in chunk_ids:
        store.insert_chunk(item.chunk(chunk_id))
    assert store.chunk_ids_of(item.descriptor) == sorted(chunk_ids)
