"""The spatial index must be observationally identical to a brute-force
scan of the position dict — including result *ordering* — under any
interleaving of joins, leaves, waypoint moves and range queries."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import Topology

RADIO_RANGE = 25.0
QUERY_RADII = (25.0, 60.0)

ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "move", "query"]),
        st.integers(min_value=0, max_value=11),
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    ),
    max_size=120,
)


class BruteForce:
    """The old O(N)-scan semantics, insertion-ordered like a dict."""

    def __init__(self):
        self.positions = {}

    def nodes_within(self, node_id, radius):
        ox, oy = self.positions[node_id]
        return [
            other
            for other, (x, y) in self.positions.items()
            if other != node_id and math.hypot(x - ox, y - oy) <= radius
        ]


@given(ops)
@settings(max_examples=60, deadline=None)
def test_index_matches_brute_force_under_mobility(batch):
    topo = Topology(RADIO_RANGE)
    ref = BruteForce()
    for op, node, x, y in batch:
        present = node in ref.positions
        if op == "add":
            if present:
                continue
            topo.add_node(node, (x, y))
            ref.positions[node] = (x, y)
        elif op == "remove":
            if not present:
                continue
            topo.remove_node(node)
            del ref.positions[node]
        elif op == "move":
            if not present:
                continue
            topo.move(node, (x, y))
            ref.positions[node] = (x, y)
        else:
            for probe in ref.positions:
                assert topo.neighbors(probe) == ref.nodes_within(
                    probe, RADIO_RANGE
                )
                for radius in QUERY_RADII:
                    assert topo.nodes_within(probe, radius) == ref.nodes_within(
                        probe, radius
                    )
    # Final state always agrees, even if the batch never issued a query.
    for probe in ref.positions:
        assert topo.neighbors(probe) == ref.nodes_within(probe, RADIO_RANGE)


@given(ops)
@settings(max_examples=30, deadline=None)
def test_query_results_survive_caller_mutation(batch):
    """Returned lists are the caller's; mutating them must not corrupt
    subsequent answers (the `_range_cache` alias-poisoning hazard)."""
    topo = Topology(RADIO_RANGE)
    ref = BruteForce()
    for op, node, x, y in batch:
        present = node in ref.positions
        if op == "add" and not present:
            topo.add_node(node, (x, y))
            ref.positions[node] = (x, y)
        elif op == "move" and present:
            topo.move(node, (x, y))
            ref.positions[node] = (x, y)
        elif op == "query":
            for probe in ref.positions:
                result = topo.nodes_within(probe, RADIO_RANGE)
                result.clear()
                result.append(-1)
                assert topo.neighbors(probe) == ref.nodes_within(
                    probe, RADIO_RANGE
                )
