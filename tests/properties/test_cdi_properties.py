"""Property-based tests for CDI table invariants (§IV-A)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdi import CdiTable
from repro.data.descriptor import make_descriptor

ITEM = make_descriptor("media", "video", name="prop-item")


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


updates = st.lists(
    st.tuples(
        st.integers(0, 5),    # chunk id
        st.integers(0, 8),    # hop count
        st.integers(0, 9),    # neighbor
    ),
    max_size=60,
)


@given(updates)
@settings(max_examples=100)
def test_best_hop_is_min_of_applied_updates(sequence):
    """After any update sequence, best_hop equals the minimum hop seen."""
    table = CdiTable(Clock())
    best = {}
    for chunk_id, hop, neighbor in sequence:
        table.update(ITEM, chunk_id, hop, neighbor, ttl=1000.0)
        best[chunk_id] = min(best.get(chunk_id, hop), hop)
    for chunk_id, expected in best.items():
        assert table.best_hop(ITEM, chunk_id) == expected


@given(updates)
@settings(max_examples=100)
def test_best_entries_all_share_the_best_hop(sequence):
    table = CdiTable(Clock())
    for chunk_id, hop, neighbor in sequence:
        table.update(ITEM, chunk_id, hop, neighbor, ttl=1000.0)
    for chunk_id in {c for c, _, _ in sequence}:
        entries = table.best_entries(ITEM, chunk_id)
        assert entries
        hops = {e.hop_count for e in entries}
        assert len(hops) == 1
        neighbors = [e.neighbor for e in entries]
        assert len(neighbors) == len(set(neighbors))


@given(updates)
@settings(max_examples=100)
def test_known_chunks_matches_updates(sequence):
    table = CdiTable(Clock())
    for chunk_id, hop, neighbor in sequence:
        table.update(ITEM, chunk_id, hop, neighbor, ttl=1000.0)
    assert table.known_chunks(ITEM) == {c for c, _, _ in sequence}


@given(updates, st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=100)
def test_everything_expires(sequence, ttl):
    clock = Clock()
    table = CdiTable(clock)
    for chunk_id, hop, neighbor in sequence:
        table.update(ITEM, chunk_id, hop, neighbor, ttl=ttl)
    clock.now = ttl + 1.0
    assert table.known_chunks(ITEM) == set()
