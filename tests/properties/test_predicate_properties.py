"""Property-based tests for predicate/descriptor matching algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.descriptor import DataDescriptor
from repro.data.predicate import (
    QuerySpec,
    between,
    eq,
    ge,
    gt,
    is_in,
    le,
    lt,
    ne,
)

values = st.one_of(
    st.integers(min_value=-1_000_000, max_value=1_000_000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
)

attr_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
    min_size=1,
    max_size=8,
)

descriptors = st.dictionaries(attr_names, values, min_size=1, max_size=6).map(
    DataDescriptor
)


@given(descriptors)
@settings(max_examples=100)
def test_eq_self_matches(descriptor):
    """For every attribute, eq(name, value) matches the descriptor."""
    for name, value in descriptor.items():
        assert eq(name, value).matches(descriptor)


@given(descriptors)
@settings(max_examples=100)
def test_eq_and_ne_are_complementary_when_present(descriptor):
    for name, value in descriptor.items():
        assert ne(name, value).matches(descriptor) != eq(name, value).matches(
            descriptor
        )


@given(descriptors)
@settings(max_examples=100)
def test_between_value_value_always_matches(descriptor):
    for name, value in descriptor.items():
        if isinstance(value, str):
            continue
        assert between(name, value, value).matches(descriptor)


@given(st.integers(-1000, 1000), st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=100)
def test_ordered_relations_consistent(value, low, high):
    descriptor = DataDescriptor({"v": value})
    if low > high:
        low, high = high, low
    in_range = between("v", low, high).matches(descriptor)
    assert in_range == (ge("v", low).matches(descriptor) and le("v", high).matches(descriptor))
    assert lt("v", value).matches(descriptor) is False
    assert gt("v", value).matches(descriptor) is False


@given(descriptors)
@settings(max_examples=100)
def test_empty_spec_matches_all(descriptor):
    assert QuerySpec().matches(descriptor)


@given(descriptors)
@settings(max_examples=100)
def test_conjunction_subset_property(descriptor):
    """If a spec matches, every sub-spec of it matches too."""
    predicates = [eq(name, value) for name, value in descriptor.items()]
    full = QuerySpec(predicates)
    assert full.matches(descriptor)
    for i in range(len(predicates)):
        sub = QuerySpec(predicates[:i] + predicates[i + 1 :])
        assert sub.matches(descriptor)


@given(descriptors)
@settings(max_examples=100)
def test_in_with_attribute_value_matches(descriptor):
    for name, value in descriptor.items():
        assert is_in(name, (value,)).matches(descriptor)


@given(descriptors)
@settings(max_examples=100)
def test_stable_key_equals_iff_descriptor_equals(descriptor):
    rebuilt = DataDescriptor(descriptor.as_dict())
    assert rebuilt == descriptor
    assert rebuilt.stable_key() == descriptor.stable_key()


@given(descriptors, st.integers(0, 100))
@settings(max_examples=100)
def test_chunk_descriptor_roundtrip(descriptor, chunk_id):
    base = descriptor.item_descriptor()
    chunk = base.chunk_descriptor(chunk_id)
    assert chunk.chunk_id == chunk_id
    assert chunk.item_descriptor() == base
