"""Property-based tests for mobility trace invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.campus import STUDENT_CENTER, generate_campus_trace
from repro.mobility.model import MobilityEventKind


@given(
    st.integers(0, 2**16),
    st.floats(min_value=30.0, max_value=900.0),
    st.floats(min_value=0.0, max_value=3.0),
)
@settings(max_examples=30, deadline=None)
def test_trace_invariants(seed, duration, scale):
    trace = generate_campus_trace(
        STUDENT_CENTER, duration, random.Random(seed), frequency_scale=scale
    )
    # Times sorted and bounded.
    times = [e.time for e in trace.events]
    assert times == sorted(times)
    assert all(0.0 <= t < duration for t in times)
    # Every position inside the area.
    for event in trace.events:
        if event.kind is not MobilityEventKind.LEAVE:
            assert STUDENT_CENTER.area.contains(event.position)
    # Node-id discipline: joins are fresh ids, leaves target present nodes,
    # moves target present nodes.
    present = set(trace.initial_nodes)
    ever = set(trace.initial_nodes)
    for event in trace.events:
        if event.kind is MobilityEventKind.JOIN:
            assert event.node_id not in ever
            present.add(event.node_id)
            ever.add(event.node_id)
        elif event.kind is MobilityEventKind.LEAVE:
            assert event.node_id in present
            present.remove(event.node_id)
        else:
            assert event.node_id in present


@given(st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_zero_scale_freezes_population(seed):
    trace = generate_campus_trace(
        STUDENT_CENTER, 600.0, random.Random(seed), frequency_scale=0.0
    )
    kinds = {e.kind for e in trace.events}
    assert MobilityEventKind.JOIN not in kinds
    assert MobilityEventKind.LEAVE not in kinds
    assert trace.joining_nodes == []
