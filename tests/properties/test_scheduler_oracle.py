"""Hypothesis oracle: CalendarScheduler must be order-identical to the heap.

The binary heap (``EventQueue``) is the reference implementation of the
``(time, priority, sequence)`` total order.  These tests drive a
:class:`CalendarScheduler` and a heap through the *same* randomized
interleavings of push / cancel / clear / peek / pop and assert that every
observable — pop sequence, peeked times, live counts — is identical.
Workloads deliberately include the calendar queue's hard cases:

* same-instant, same-priority bursts (FIFO tiebreak must survive the
  per-bucket sort),
* time ranges spanning many orders of magnitude (bucket-width retuning),
* enough pushes to force ring doubling and enough drains to force ring
  halving (resize boundaries),
* lazy cancels that leave ghosts at bucket heads, and clears that must
  sever stale handles.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.event import EventQueue
from repro.sim.scheduler import CalendarScheduler


def _drain(queue):
    popped = []
    while queue:
        event = queue.pop()
        popped.append((event.time, event.priority, event.sequence))
    return popped


# Times cluster around a few magnitudes so buckets see both dense bursts
# (many events per bucket) and sparse stretches (empty-ring fallback).
event_times = st.one_of(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
    st.sampled_from([0.0, 1.0, 1.0, 2.5, 100.0]),  # forced exact ties
)

pushes = st.lists(
    st.tuples(event_times, st.integers(-3, 3)),
    max_size=80,
)

# An op program: each entry drives one step of both queues in lockstep.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), event_times, st.integers(-3, 3)),
        st.tuples(st.just("pop"), st.just(0.0), st.just(0)),
        st.tuples(st.just("peek"), st.just(0.0), st.just(0)),
        st.tuples(st.just("cancel"), st.floats(0.0, 1.0), st.just(0)),
        st.tuples(st.just("clear"), st.just(0.0), st.just(0)),
    ),
    max_size=120,
)


@given(pushes)
@settings(max_examples=150)
def test_drain_order_matches_heap(items):
    heap, calendar = EventQueue(), CalendarScheduler()
    for time, priority in items:
        heap.push(time, lambda: None, (), priority=priority)
        calendar.push(time, lambda: None, (), priority=priority)
    assert _drain(calendar) == _drain(heap)


@given(ops)
@settings(max_examples=150)
def test_interleaved_program_is_order_identical(program):
    heap, calendar = EventQueue(), CalendarScheduler()
    handles = []  # (heap_event, calendar_event) pairs, kept across clears
    trace_h, trace_c = [], []
    for op, time, priority in program:
        if op == "push":
            handles.append(
                (
                    heap.push(time, lambda: None, (), priority=priority),
                    calendar.push(time, lambda: None, (), priority=priority),
                )
            )
        elif op == "pop":
            for queue, trace in ((heap, trace_h), (calendar, trace_c)):
                try:
                    event = queue.pop()
                    trace.append((event.time, event.priority, event.sequence))
                except SimulationError:
                    trace.append("empty")
        elif op == "peek":
            trace_h.append(("peek", heap.peek_time()))
            trace_c.append(("peek", calendar.peek_time()))
        elif op == "cancel" and handles:
            index = int(time * (len(handles) - 1))
            heap_event, calendar_event = handles[index]
            heap_event.cancel()
            calendar_event.cancel()
        elif op == "clear":
            heap.clear()
            calendar.clear()
            # Stale handles must become no-ops on BOTH queues.
            for heap_event, calendar_event in handles:
                heap_event.cancel()
                calendar_event.cancel()
        assert len(calendar) == len(heap)
        assert trace_c == trace_h
    trace_h.extend(_drain(heap))
    trace_c.extend(_drain(calendar))
    assert trace_c == trace_h


@given(st.lists(st.floats(min_value=0.0, max_value=50.0, allow_nan=False), min_size=30, max_size=200))
@settings(max_examples=60)
def test_resize_boundaries_preserve_order(times):
    # Start at the ring floor so the push volume forces doublings, then
    # drain past the halving threshold — both resize directions run.
    calendar = CalendarScheduler(nbuckets=CalendarScheduler.MIN_BUCKETS)
    heap = EventQueue()
    for time in times:
        calendar.push(time, lambda: None)
        heap.push(time, lambda: None)
    assert calendar._nbuckets > CalendarScheduler.MIN_BUCKETS or len(times) <= 16
    assert _drain(calendar) == _drain(heap)
    assert calendar._nbuckets == CalendarScheduler.MIN_BUCKETS


@given(st.integers(2, 40), st.integers(-3, 3))
@settings(max_examples=60)
def test_same_instant_burst_is_fifo(burst, priority):
    heap, calendar = EventQueue(), CalendarScheduler()
    for _ in range(burst):
        heap.push(7.25, lambda: None, (), priority=priority)
        calendar.push(7.25, lambda: None, (), priority=priority)
    heap_order = [event.sequence for event in (heap.pop() for _ in range(burst))]
    cal_order = [event.sequence for event in (calendar.pop() for _ in range(burst))]
    assert cal_order == heap_order == sorted(heap_order)


@given(pushes, st.sets(st.integers(0, 79)))
@settings(max_examples=100)
def test_cancellation_removes_exactly_those_events(items, to_cancel):
    heap, calendar = EventQueue(), CalendarScheduler()
    pairs = []
    for time, priority in items:
        pairs.append(
            (
                heap.push(time, lambda: None, (), priority=priority),
                calendar.push(time, lambda: None, (), priority=priority),
            )
        )
    for index in to_cancel:
        if index < len(pairs):
            pairs[index][0].cancel()
            pairs[index][1].cancel()
    assert len(calendar) == len(heap)
    assert _drain(calendar) == _drain(heap)
