"""Property-based tests for the round controller's stop rule."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rounds import RoundConfig, RoundController
from repro.sim.simulator import Simulator

arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    max_size=40,
)


@given(arrival_lists, st.floats(min_value=0.3, max_value=3.0))
@settings(max_examples=60, deadline=None)
def test_round_always_ends_after_arrivals_cease(arrivals, window):
    """With T_r=0 the round must end within ~window+check of the last
    arrival — never hang."""
    sim = Simulator()
    ends = []
    controller = RoundController(
        sim,
        RoundConfig(window_s=window, check_interval_s=0.25),
        lambda: ends.append(sim.now),
    )
    controller.begin_round()
    for t in arrivals:
        sim.schedule(t, controller.record_response)
    sim.run(until=60.0)
    assert len(ends) == 1
    last = max(arrivals) if arrivals else 0.0
    assert ends[0] <= last + window + 0.5 + 1e-6


@given(arrival_lists, st.floats(min_value=0.5, max_value=3.0))
@settings(max_examples=60, deadline=None)
def test_no_arrival_in_the_window_preceding_the_end(arrivals, window):
    """T_r = 0 invariant: the round ends only when the trailing window is
    empty — no recorded arrival may fall in (end - T, end]."""
    sim = Simulator()
    ends = []
    controller = RoundController(
        sim,
        RoundConfig(window_s=window, check_interval_s=0.25),
        lambda: ends.append(sim.now),
    )
    controller.begin_round()
    for t in sorted(arrivals):
        sim.schedule(t, controller.record_response)
    sim.run(until=100.0)
    assert len(ends) == 1
    end = ends[0]
    assert not any(end - window < t <= end for t in arrivals)


@given(
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
    st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=100)
def test_continue_rule_matches_definition(new, extra_total, td):
    sim = Simulator()
    controller = RoundController(
        sim, RoundConfig(continue_ratio=td), lambda: None
    )
    controller.begin_round()
    total = new + extra_total
    expected = total > 0 and (new / total) > td
    assert controller.should_start_new_round(new, total) == expected
