"""Property-based tests for the Bloom filter invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.bloom_filter import BloomFilter, make_round_filter
from repro.bloom.sizing import optimal_parameters

keys = st.lists(st.binary(min_size=1, max_size=32), min_size=0, max_size=60)


@given(keys)
@settings(max_examples=50)
def test_no_false_negatives(batch):
    """Every inserted key tests positive — the defining guarantee."""
    bloom = BloomFilter.for_capacity(max(1, len(batch)))
    for key in batch:
        bloom.insert(key)
    assert all(key in bloom for key in batch)


@given(keys, st.integers(min_value=0, max_value=10))
@settings(max_examples=50)
def test_no_false_negatives_any_seed(batch, seed):
    bloom = BloomFilter(512, 4, seed=seed)
    bloom.insert_all(batch)
    assert all(key in bloom for key in batch)


@given(keys, keys)
@settings(max_examples=50)
def test_union_is_superset(left_keys, right_keys):
    """The union contains everything either side contained."""
    left = BloomFilter(512, 4, seed=1)
    right = BloomFilter(512, 4, seed=1)
    left.insert_all(left_keys)
    right.insert_all(right_keys)
    left.union_update(right)
    assert all(key in left for key in left_keys + right_keys)


@given(keys)
@settings(max_examples=50)
def test_copy_isolation(batch):
    original = BloomFilter(256, 3)
    clone = original.copy()
    clone.insert_all(batch)
    for key in batch:
        assert key in clone
    # The original saw none of the inserts (no shared bit array).
    if batch:
        assert original.fill_ratio() == 0.0


@given(st.integers(min_value=1, max_value=100_000))
@settings(max_examples=50)
def test_optimal_parameters_sane(n):
    m, k = optimal_parameters(n, 0.01)
    assert m >= 64
    assert 1 <= k <= 32
    # More elements never shrink the filter.
    m2, _ = optimal_parameters(n + 1000, 0.01)
    assert m2 >= m


@given(keys, st.integers(min_value=1, max_value=5))
@settings(max_examples=30)
def test_round_filter_contains_received(batch, round_index):
    bloom = make_round_filter(batch, round_index)
    assert all(key in bloom for key in batch)
    assert bloom.seed == round_index
