"""Property-based round-trip tests for the binary codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import DiscoveryQuery, DiscoveryResponse, MdrQuery
from repro.core.wire import decode_message, encode_message
from repro.data.codec import (
    decode_descriptor,
    decode_query_spec,
    decode_value,
    decode_varint,
    decode_zigzag,
    encode_descriptor,
    encode_query_spec,
    encode_value,
    encode_varint,
    encode_zigzag,
)
from repro.data.descriptor import DataDescriptor
from repro.data.predicate import QuerySpec, between, eq

values = st.one_of(
    st.integers(min_value=-(2**60), max_value=2**60),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.booleans(),
)

attr_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
    min_size=1,
    max_size=10,
)

descriptors = st.dictionaries(attr_names, values, min_size=1, max_size=8).map(
    DataDescriptor
)


@given(st.integers(min_value=0, max_value=2**63 - 1))
@settings(max_examples=200)
def test_varint_round_trip(value):
    decoded, offset = decode_varint(encode_varint(value))
    assert decoded == value


@given(st.integers(min_value=-(2**62), max_value=2**62))
@settings(max_examples=200)
def test_zigzag_round_trip(value):
    decoded, _ = decode_zigzag(encode_zigzag(value))
    assert decoded == value


@given(values)
@settings(max_examples=200)
def test_value_round_trip_exact(value):
    decoded, offset = decode_value(encode_value(value))
    assert decoded == value
    assert type(decoded) is type(value)


@given(descriptors)
@settings(max_examples=100)
def test_descriptor_round_trip(descriptor):
    decoded, offset = decode_descriptor(encode_descriptor(descriptor))
    assert decoded == descriptor
    assert decoded.stable_key() == descriptor.stable_key()


@given(st.lists(st.tuples(attr_names, values), max_size=5))
@settings(max_examples=100)
def test_query_spec_round_trip(pairs):
    predicates = [eq(name, value) for name, value in pairs]
    spec = QuerySpec(predicates)
    decoded, _ = decode_query_spec(encode_query_spec(spec))
    assert decoded == spec


@given(
    st.integers(1, 2**31),
    st.integers(0, 1000),
    st.sets(st.integers(0, 499), max_size=30),
    st.integers(1, 500),
)
@settings(max_examples=100)
def test_mdr_query_round_trip(message_id, sender, have, total):
    have = {h for h in have if h < total}
    item = DataDescriptor({"namespace": "m", "data_type": "v", "name": "x"})
    query = MdrQuery(
        message_id=message_id,
        sender_id=sender,
        receiver_ids=None,
        item=item,
        total_chunks=total,
        have_chunk_ids=frozenset(have),
        origin_id=sender,
        expires_at=100.0,
    )
    decoded = decode_message(encode_message(query))
    assert decoded.have_chunk_ids == frozenset(have)
    assert decoded.total_chunks == total


@given(st.lists(descriptors, max_size=10), st.integers(0, 5))
@settings(max_examples=100)
def test_discovery_response_round_trip(entries, round_index):
    response = DiscoveryResponse(
        message_id=1,
        sender_id=2,
        receiver_ids=frozenset({3, 4}),
        entries=tuple(entries),
        round_index=round_index,
    )
    decoded = decode_message(encode_message(response))
    assert decoded.entries == tuple(entries)
    assert decoded.receiver_ids == frozenset({3, 4})


@given(
    st.sets(st.integers(0, 1000), max_size=8),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
@settings(max_examples=100)
def test_discovery_query_round_trip(receivers, expires):
    query = DiscoveryQuery(
        message_id=1,
        sender_id=0,
        receiver_ids=frozenset(receivers) if receivers else None,
        spec=QuerySpec([between("time", 0.0, 10.0)]),
        origin_id=-1,
        expires_at=expires,
    )
    decoded = decode_message(encode_message(query))
    assert decoded.receiver_ids == (frozenset(receivers) if receivers else None)
    assert decoded.expires_at == expires
    assert decoded.origin_id == -1
