"""Ablations: what each PDS mechanism buys.

Not a paper figure — these isolate the design choices the paper motivates
qualitatively:

* **redundancy detection** (Bloom filters + en-route rewriting, §III-B-2)
  → cuts duplicate metadata transmissions when copies are plentiful;
* **per-hop ack/retransmission** (§V-1) → recall on a lossy medium;
* **opportunistic chunk caching** (§II-A) → cheaper repeat retrievals.
"""

from conftest import scaled

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import (
    experiment_device_config,
    pdd_experiment,
    retrieval_experiment,
)
from repro.experiments.runner import render_table
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def test_ablation_redundancy_detection(benchmark, bench_seeds, bench_scale, record_table):
    """Bloom-filter rewriting vs none, at redundancy 3."""
    metadata_count = scaled(3000, bench_scale, minimum=400)

    def run():
        rows = []
        for enabled in (True, False):
            overheads, recalls = [], []
            for seed in bench_seeds:
                outcome = pdd_experiment(
                    seed,
                    metadata_count=metadata_count,
                    redundancy=3,
                    redundancy_detection=enabled,
                    sim_cap_s=240.0,
                )
                overheads.append(outcome.total_overhead_bytes / 1e6)
                recalls.append(outcome.first.recall)
            rows.append(
                {
                    "redundancy_detection": "on" if enabled else "off",
                    "recall": round(sum(recalls) / len(recalls), 3),
                    "overhead_mb": round(sum(overheads) / len(overheads), 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_redundancy_detection",
        render_table(
            "Ablation — Bloom redundancy detection (metadata redundancy 3)",
            ["redundancy_detection", "recall", "overhead_mb"],
            rows,
        ),
    )
    on, off = rows
    assert on["recall"] > 0.95
    assert on["overhead_mb"] < off["overhead_mb"]


def test_ablation_ack_retransmission(benchmark, bench_seeds, bench_scale, record_table):
    """Single-round recall with and without per-hop acks (§VI-B-1)."""
    metadata_count = scaled(5000, bench_scale, minimum=500)

    def run():
        rows = []
        for ack in (True, False):
            recalls = []
            for seed in bench_seeds:
                outcome = pdd_experiment(
                    seed,
                    metadata_count=metadata_count,
                    round_config=RoundConfig(max_rounds=1),
                    ack=ack,
                    sim_cap_s=120.0,
                )
                recalls.append(outcome.first.recall)
            rows.append(
                {
                    "ack": "on" if ack else "off",
                    "recall": round(sum(recalls) / len(recalls), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_ack",
        render_table(
            "Ablation — per-hop ack/retransmission (single-round PDD)",
            ["ack", "recall"],
            rows,
        ),
    )
    on, off = rows
    assert on["recall"] >= off["recall"]


def test_ablation_chunk_caching(benchmark, bench_seeds, bench_scale, record_table):
    """Second retrieval cost with and without opportunistic caching."""
    item_size = scaled(5 * MB, bench_scale, minimum=1 * MB)

    def run():
        rows = []
        for caching in (True, False):
            config = experiment_device_config()
            if not caching:
                from dataclasses import replace

                config = replace(
                    config,
                    protocol=replace(
                        config.protocol,
                        cache_overheard_chunks=False,
                        cache_relayed_chunks=False,
                    ),
                )
            second_overheads = []
            for seed in bench_seeds:
                from repro.experiments.scenario import build_grid_scenario

                scenario = build_grid_scenario(
                    rows=7, cols=7, seed=seed, device_config=config, n_consumers=2
                )
                item = make_video_item(item_size)
                outcome = retrieval_experiment(
                    seed,
                    item,
                    scenario=scenario,
                    n_consumers=2,
                    mode="sequential",
                    sim_cap_s=900.0,
                )
                second_overheads.append(
                    outcome.consumers[1].overhead_bytes / 1e6
                )
            rows.append(
                {
                    "caching": "on" if caching else "off",
                    "second_consumer_overhead_mb": round(
                        sum(second_overheads) / len(second_overheads), 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_caching",
        render_table(
            "Ablation — opportunistic chunk caching (2nd sequential consumer)",
            ["caching", "second_consumer_overhead_mb"],
            rows,
        ),
    )
    on, off = rows
    assert (
        on["second_consumer_overhead_mb"] <= off["second_consumer_overhead_mb"]
    )
