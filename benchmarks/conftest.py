"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one table/figure of the paper's evaluation at a
configurable scale and records the rows both to stdout and to
``benchmarks/results/<figure>.txt``.

Environment knobs:

* ``REPRO_SEEDS``  — number of seeds per point (default 2 here; the paper
  uses 5 — set ``REPRO_SEEDS=5`` for paper-fidelity averaging).
* ``REPRO_SCALE``  — workload scale factor (default 0.25 here; 1.0 is
  paper scale: 5,000–20,000 metadata entries and 20 MB items).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-suite defaults (reduced; env vars override).
DEFAULT_BENCH_SEEDS = 2
DEFAULT_BENCH_SCALE = 0.25


@pytest.fixture(scope="session")
def bench_seeds() -> list:
    """Seeds used per data point."""
    count = int(os.environ.get("REPRO_SEEDS", DEFAULT_BENCH_SEEDS))
    return list(range(1, count + 1))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Workload scale: 1.0 reproduces the paper's exact parameters."""
    return float(os.environ.get("REPRO_SCALE", DEFAULT_BENCH_SCALE))


@pytest.fixture(scope="session")
def record_table():
    """Callable that persists and prints a rendered figure table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(figure_id: str, table: str) -> None:
        path = RESULTS_DIR / f"{figure_id}.txt"
        path.write_text(table + "\n")
        print(f"\n{table}\n[written to {path}]")

    return _record


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer workload parameter."""
    return max(minimum, int(round(value * scale)))
