"""Fig. 4 — single-round PDD (with ack) vs grid size / hop count.

Paper shape: recall 100% → 72.3% as the grid grows 3×3 → 11×11 (1–5
hops); latency and overhead rise with network size.
"""

from conftest import scaled

from repro.experiments.figures import fig4_grid_size
from repro.experiments.runner import render_table


def test_fig4_grid_size(benchmark, bench_seeds, bench_scale, record_table):
    entries_per_node = scaled(50, max(bench_scale, 0.5), minimum=20)

    def run():
        return fig4_grid_size.run(
            grid_sizes=(3, 5, 7, 9, 11),
            seeds=bench_seeds,
            entries_per_node=entries_per_node,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig4",
        render_table(
            "Fig. 4 — single-round PDD vs grid size",
            ["grid", "max_hops", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    recalls = [r["recall"] for r in rows]
    latencies = [r["latency_s"] for r in rows]
    overheads = [r["overhead_mb"] for r in rows]
    assert recalls[0] > 0.97, "one hop: everything is heard directly"
    assert recalls[-1] < recalls[0], "recall drops as hops grow"
    assert latencies[-1] > latencies[0]
    assert overheads[-1] > overheads[0]
