"""Fig. 7 — PDD with sequential consumers.

Paper shape: all ≈100% recall; latency falls from 5–7 s (first two) to
0.2 s for the last consumer, which had cached >95% before asking.
"""

from conftest import scaled

from repro.experiments.figures import fig7_sequential_consumers
from repro.experiments.runner import render_table


def test_fig7_sequential_consumers(benchmark, bench_seeds, bench_scale, record_table):
    metadata_count = scaled(5000, bench_scale, minimum=400)

    def run():
        return fig7_sequential_consumers.run(
            n_consumers=5, seeds=bench_seeds, metadata_count=metadata_count
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig7",
        render_table(
            "Fig. 7 — PDD with sequential consumers",
            ["consumer", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    assert all(r["recall"] > 0.95 for r in rows)
    # Later consumers are faster thanks to overheard caching.
    assert rows[-1]["latency_s"] < rows[0]["latency_s"]
    assert rows[-1]["latency_s"] < sum(r["latency_s"] for r in rows[:2]) / 2
