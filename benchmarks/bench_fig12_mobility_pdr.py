"""Fig. 12 — PDR under mobility (student center, 20 MB item).

Paper shape: latency roughly flat (42–48 s) across 0.5×–2× mobility;
overhead bounded; recall 100%.
"""

from conftest import scaled

from repro.experiments.figures import fig12_mobility_pdr
from repro.experiments.runner import render_table

MB = 1024 * 1024


def test_fig12_mobility_pdr(benchmark, bench_seeds, bench_scale, record_table):
    item_size = scaled(20 * MB, bench_scale, minimum=2 * MB)

    def run():
        return fig12_mobility_pdr.run(
            scales=(0.5, 1.0, 1.5, 2.0),
            seeds=bench_seeds,
            item_size=item_size,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig12",
        render_table(
            "Fig. 12 — PDR under mobility (student center)",
            ["scenario", "mobility_scale", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    assert all(r["recall"] > 0.9 for r in rows)
    # Mobility robustness: latency at 2× within ~2.5× of the 0.5× point.
    latencies = [r["latency_s"] for r in rows]
    assert latencies[-1] < latencies[0] * 2.5 + 10.0
