"""§VI-B preamble — single-round PDD (no ack) saturation scan.

Paper shape: recall ≈0.35 (1 copy) / ≈0.55 (2 copies) at moderate loads,
degrading beyond ≈10,000 total entries.
"""

from conftest import scaled

from repro.experiments.figures import saturation
from repro.experiments.runner import render_table


def test_saturation_scan(benchmark, bench_seeds, bench_scale, record_table):
    amounts = tuple(scaled(a, bench_scale, minimum=200) for a in (2500, 5000, 10000, 20000))

    def run():
        return saturation.run(
            amounts=amounts, redundancies=(1, 2), seeds=bench_seeds
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "saturation",
        render_table(
            "§VI-B — single-round PDD (no ack) recall",
            ["entries", "redundancy", "recall"],
            rows,
        ),
    )

    one_copy = [r["recall"] for r in rows if r["redundancy"] == 1]
    two_copies = [r["recall"] for r in rows if r["redundancy"] == 2]
    # A single unreliable round never reaches full recall on a 10x10 grid.
    assert all(r < 0.95 for r in one_copy)
    # Redundancy helps recall at equal load.
    assert sum(two_copies) > sum(one_copy)
    # Recall degrades toward the stress end of the load axis.
    assert one_copy[-1] <= one_copy[0] + 0.05
