"""Fig. 3 — single-hop reception: raw UDP vs leaky bucket vs +ack.

Paper shape: raw ≈10–14%; bucket 40–90% falling with senders; +ack 85–99%.
"""

from conftest import scaled

from repro.experiments.figures import fig3_prototype
from repro.experiments.runner import render_table


def test_fig3_reception_series(benchmark, bench_seeds, bench_scale, record_table):
    # The raw-UDP overflow needs a steady-state workload several times the
    # OS buffer (≈658 packets); don't scale below that regime.
    packets = scaled(6000, bench_scale, minimum=6000)

    def run():
        return fig3_prototype.run(
            sender_counts=(1, 2, 3, 4),
            seeds=bench_seeds,
            packets_per_sender=packets,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig3",
        render_table(
            "Fig. 3 — single-hop reception rate",
            ["mode", "senders", "reception"],
            rows,
        ),
    )

    by_mode = {}
    for row in rows:
        by_mode.setdefault(row["mode"], []).append(row["reception"])
    # Shape assertions from the paper.
    assert max(by_mode["raw"]) < 0.45, "raw UDP must overflow the OS buffer"
    assert by_mode["bucket"][0] > 0.9, "single sender with bucket ≈ perfect"
    assert by_mode["bucket"][-1] < by_mode["bucket"][0], "bucket degrades with senders"
    for acked, bucket in zip(by_mode["bucket_ack"], by_mode["bucket"]):
        assert acked >= bucket - 0.05, "ack must not hurt reception"
    assert min(by_mode["bucket_ack"]) > 0.6, "ack recovers most losses"
