"""Fig. 16 — PDR with simultaneous consumers.

Paper shape (20 MB): latency and overhead first increase with the number
of simultaneous consumers, then stabilise — same-direction consumers
share transmissions through overhearing and caching.
"""

from conftest import scaled

from repro.experiments.figures import fig16_simultaneous_pdr
from repro.experiments.runner import render_table

MB = 1024 * 1024


def test_fig16_simultaneous_pdr(benchmark, bench_seeds, bench_scale, record_table):
    item_size = scaled(20 * MB, bench_scale, minimum=2 * MB)

    def run():
        return fig16_simultaneous_pdr.run(
            consumer_counts=(1, 2, 3, 4, 5),
            seeds=bench_seeds,
            item_size=item_size,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig16",
        render_table(
            "Fig. 16 — PDR with simultaneous consumers",
            ["consumers", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    assert all(r["recall"] > 0.9 for r in rows)
    # Five simultaneous consumers cost far less than five solo retrievals.
    assert rows[-1]["overhead_mb"] < rows[0]["overhead_mb"] * 5
    # Stabilisation: the 4→5 step is much smaller than the 1→2 step.
    step_early = rows[1]["overhead_mb"] - rows[0]["overhead_mb"]
    step_late = rows[-1]["overhead_mb"] - rows[-2]["overhead_mb"]
    assert step_late <= max(step_early, rows[0]["overhead_mb"] * 0.6) + 1.0
