"""Figs. 9–10 — PDD under real-world mobility (student center + classrooms).

Paper shape: recall ≈100%, latency bounded (≈2 s at paper scale) and
overhead bounded across 0.5×–2× of the observed join/leave/move rates.
"""

from conftest import scaled

from repro.experiments.figures import fig9_10_mobility_pdd
from repro.experiments.runner import render_table


def test_fig9_10_mobility_pdd(benchmark, bench_seeds, bench_scale, record_table):
    metadata_count = scaled(5000, bench_scale, minimum=400)

    def run():
        return fig9_10_mobility_pdd.run_both_locations(
            scales=(0.5, 1.0, 1.5, 2.0),
            seeds=bench_seeds,
            metadata_count=metadata_count,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig9_10",
        render_table(
            "Figs. 9-10 — PDD under mobility",
            ["scenario", "mobility_scale", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    # Robustness: recall stays high at every churn level in both places.
    assert all(r["recall"] > 0.85 for r in rows)
    # Latency does not blow up at 2× mobility vs 0.5×.
    for scenario in ("student_center", "classrooms"):
        series = [r for r in rows if r["scenario"] == scenario]
        assert series[-1]["latency_s"] < series[0]["latency_s"] * 4 + 2.0
