"""Fig. 6 — multi-round PDD vs metadata amount (5k → 20k entries).

Paper shape: recall stays ≈100% across the whole range; latency grows
sublinearly (5.6 s → 11.2 s); overhead grows ≈linearly (5.13 → 22.21 MB).
"""

from conftest import scaled

from repro.experiments.figures import fig6_metadata_amount
from repro.experiments.runner import render_table


def test_fig6_metadata_amount(benchmark, bench_seeds, bench_scale, record_table):
    amounts = tuple(
        scaled(a, bench_scale, minimum=300) for a in (5000, 10000, 15000, 20000)
    )

    def run():
        return fig6_metadata_amount.run(amounts=amounts, seeds=bench_seeds)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig6",
        render_table(
            "Fig. 6 — PDD vs metadata amount",
            ["entries", "recall", "latency_s", "overhead_mb", "rounds"],
            rows,
        ),
    )

    recalls = [r["recall"] for r in rows]
    latencies = [r["latency_s"] for r in rows]
    overheads = [r["overhead_mb"] for r in rows]
    assert all(r > 0.97 for r in recalls), "multi-round PDD stays complete"
    assert latencies[-1] > latencies[0], "latency grows with load"
    assert overheads[-1] > overheads[0] * 2, "overhead ≈ linear in load"
    # Sublinearity: 4x the entries costs less than ~4x the latency.
    assert latencies[-1] < latencies[0] * 5
