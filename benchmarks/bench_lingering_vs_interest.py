"""Ablation: lingering queries vs one-shot CCN/NDN Interests (§VIII).

The paper's core protocol argument: "the Interest is removed upon one
single response message. Thus many Interest messages are needed to
retrieve all matching metadata entries. By setting appropriate expiration,
PDD incurs only one or a few lingering queries."  This bench measures
exactly that: queries sent, latency, and overhead for the same workload.
"""

from conftest import scaled

from repro.core.consumer import DiscoverySession
from repro.core.interest import InterestDiscoverySession
from repro.experiments.figures.common import experiment_device_config, pdd_experiment
from repro.experiments.runner import render_table
from repro.experiments.scenario import build_grid_scenario
from repro.experiments.workload import distribute_metadata, generate_metadata


def _run_interest(seed: int, metadata_count: int) -> dict:
    scenario = build_grid_scenario(
        rows=7, cols=7, seed=seed, device_config=experiment_device_config()
    )
    entries = generate_metadata(metadata_count)
    distribute_metadata(scenario.devices, entries, scenario.workload_rng())
    session = InterestDiscoverySession(
        scenario.device(scenario.consumers[0]), interest_timeout_s=0.6
    )
    scenario.sim.schedule(0.0, session.start)
    scenario.sim.run(until=900.0)
    return {
        "queries": session.interests_sent,
        "recall": len(session.received) / metadata_count,
        "latency": session.latency,
        "overhead": scenario.stats.bytes_sent / 1e6,
    }


def test_lingering_vs_interest(benchmark, bench_seeds, bench_scale, record_table):
    metadata_count = scaled(2000, bench_scale, minimum=400)

    def run():
        rows = []
        pdd_stats = {"queries": [], "recall": [], "latency": [], "overhead": []}
        for seed in bench_seeds:
            outcome = pdd_experiment(
                seed, rows=7, cols=7, metadata_count=metadata_count,
                sim_cap_s=300.0,
            )
            pdd_stats["queries"].append(outcome.first.result.rounds)
            pdd_stats["recall"].append(outcome.first.recall)
            pdd_stats["latency"].append(outcome.first.result.latency)
            pdd_stats["overhead"].append(outcome.total_overhead_bytes / 1e6)
        interest_stats = {"queries": [], "recall": [], "latency": [], "overhead": []}
        for seed in bench_seeds:
            result = _run_interest(seed, metadata_count)
            interest_stats["queries"].append(result["queries"])
            interest_stats["recall"].append(result["recall"])
            interest_stats["latency"].append(result["latency"])
            interest_stats["overhead"].append(result["overhead"])
        for name, stats in (
            ("lingering (PDD)", pdd_stats),
            ("one-shot Interest", interest_stats),
        ):
            n = len(stats["queries"])
            rows.append(
                {
                    "scheme": name,
                    "queries": round(sum(stats["queries"]) / n, 1),
                    "recall": round(sum(stats["recall"]) / n, 3),
                    "latency_s": round(sum(stats["latency"]) / n, 2),
                    "overhead_mb": round(sum(stats["overhead"]) / n, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_lingering_vs_interest",
        render_table(
            "Ablation — lingering queries vs one-shot Interests (§VIII)",
            ["scheme", "queries", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )
    lingering, interest = rows
    assert lingering["recall"] > 0.97
    assert interest["recall"] > 0.9
    # The §VIII claim: a few lingering queries vs many Interests.
    assert lingering["queries"] * 2 < interest["queries"]
    assert lingering["latency_s"] < interest["latency_s"]
