"""§V-4 — RetrTimeout / MaxRetrTime exploration.

Paper shape: reception improves with both knobs and plateaus beyond
≈0.2 s timeout and ≈4 retries.
"""

from conftest import scaled

from repro.experiments.figures import retransmission_params
from repro.experiments.runner import render_table


def test_retransmission_parameter_sweeps(
    benchmark, bench_seeds, bench_scale, record_table
):
    # Contention losses need a sustained two-sender workload.
    packets = scaled(4000, bench_scale, minimum=4000)

    def run():
        return retransmission_params.run(
            seeds=bench_seeds, packets_per_sender=packets
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "retrparams",
        render_table(
            "§V-4 — ack/retransmission parameters (reception)",
            ["sweep", "timeout_s", "max_retr", "reception"],
            rows,
        ),
    )

    retries = {r["max_retr"]: r["reception"] for r in rows if r["sweep"] == "max_retr"}
    # More retries help, with diminishing returns (plateau by ~4).
    assert retries[4] > retries[0]
    assert retries[6] >= retries[4] - 0.05
    timeouts = [r["reception"] for r in rows if r["sweep"] == "retr_timeout"]
    assert max(timeouts) > 0.75
