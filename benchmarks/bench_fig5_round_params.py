"""Fig. 5 — multi-round PDD recall vs window T and threshold T_d.

Paper shape (T_r=0): recall rises with T and stabilises by ≈0.6–0.8 s;
T_d=0 reaches ≈1.0 while T_d=0.3 stops early; smaller T_d costs more
rounds/latency/overhead.
"""

from conftest import scaled

from repro.experiments.figures import fig5_round_params
from repro.experiments.runner import render_table


def test_fig5_round_parameters(benchmark, bench_seeds, bench_scale, record_table):
    metadata_count = scaled(5000, bench_scale, minimum=400)

    def run():
        return fig5_round_params.run(
            windows=(0.2, 0.4, 0.6, 0.8, 1.0),
            tds=(0.0, 0.3),
            seeds=bench_seeds,
            metadata_count=metadata_count,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig5",
        render_table(
            "Fig. 5 — PDD recall vs T and T_d (T_r=0)",
            ["T_s", "T_d", "recall", "latency_s", "overhead_mb", "rounds"],
            rows,
        ),
    )

    td0 = {r["T_s"]: r for r in rows if r["T_d"] == 0.0}
    td3 = {r["T_s"]: r for r in rows if r["T_d"] == 0.3}
    # T_d = 0 with a sufficient window reaches (almost) full recall.
    assert td0[1.0]["recall"] > 0.97
    # T_d = 0.3 stops earlier: fewer rounds, no better recall.
    assert td3[1.0]["rounds"] <= td0[1.0]["rounds"]
    assert td3[1.0]["recall"] <= td0[1.0]["recall"] + 0.01
    # Larger windows help recall relative to the smallest window.
    assert td0[1.0]["recall"] >= td0[0.2]["recall"]
