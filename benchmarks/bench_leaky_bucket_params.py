"""§V-4 — leaky bucket parameter exploration (LeakingRate, BucketCapacity).

Paper shape: reception stays high until the leak rate exceeds the MAC
broadcast budget, then drops; oversized capacities overflow the OS buffer.
"""

from conftest import scaled

from repro.experiments.figures import leaky_bucket_params
from repro.experiments.runner import render_table


def test_leaky_bucket_parameter_sweeps(
    benchmark, bench_seeds, bench_scale, record_table
):
    # Sustained pressure is needed for the leak-rate cliff to show.
    packets = scaled(4000, bench_scale, minimum=4000)

    def run():
        return leaky_bucket_params.run(
            seeds=bench_seeds, packets_per_sender=packets
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "lbparams",
        render_table(
            "§V-4 — leaky bucket parameters (reception)",
            ["sweep", "leak_mbps", "capacity_kb", "reception"],
            rows,
        ),
    )

    leak_rows = [r for r in rows if r["sweep"] == "leak_rate"]
    cap_rows = [r for r in rows if r["sweep"] == "capacity"]
    # Low leak rates keep reception high...
    assert leak_rows[0]["reception"] > 0.9
    # ...and rates beyond the MAC budget crush it.
    assert leak_rows[-1]["reception"] < leak_rows[0]["reception"] - 0.1
    # The paper's 300 KB capacity outperforms a 2.4 MB one.
    best = next(r for r in cap_rows if r["capacity_kb"] == 300)
    worst = next(r for r in cap_rows if r["capacity_kb"] == 2400)
    assert best["reception"] >= worst["reception"]
