"""Fig. 15 — PDR with sequential consumers.

Paper shape (20 MB): recall 100%; latency 46.1 → 38.1 s and overhead
54.22 → 23.11 MB from the 1st to the 5th consumer (chunks get cached
progressively closer).
"""

from conftest import scaled

from repro.experiments.figures import fig15_sequential_pdr
from repro.experiments.runner import render_table

MB = 1024 * 1024


def test_fig15_sequential_pdr(benchmark, bench_seeds, bench_scale, record_table):
    item_size = scaled(20 * MB, bench_scale, minimum=2 * MB)

    def run():
        return fig15_sequential_pdr.run(
            n_consumers=5, seeds=bench_seeds, item_size=item_size
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig15",
        render_table(
            "Fig. 15 — PDR with sequential consumers",
            ["consumer", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    assert all(r["recall"] > 0.95 for r in rows)
    # Cached copies cut later consumers' overhead markedly (Fig. 15's
    # 54 → 23 MB drop).
    assert rows[-1]["overhead_mb"] < rows[0]["overhead_mb"] * 0.8
