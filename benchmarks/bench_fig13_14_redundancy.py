"""Figs. 13–14 — PDR vs MDR under chunk redundancy (the headline result).

Paper shape (20 MB item): at one copy MDR is slightly better (no CDI
phase); as copies multiply MDR's latency/overhead grow ≈linearly while
PDR stays flat or improves, ending around half of MDR's cost.
"""

from conftest import scaled

from repro.experiments.figures import fig13_14_redundancy
from repro.experiments.runner import render_table

MB = 1024 * 1024


def test_fig13_14_pdr_vs_mdr(benchmark, bench_seeds, bench_scale, record_table):
    item_size = scaled(20 * MB, bench_scale, minimum=2 * MB)

    def run():
        return fig13_14_redundancy.run(
            redundancies=(1, 2, 3, 4, 5),
            seeds=bench_seeds,
            item_size=item_size,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig13_14",
        render_table(
            "Figs. 13-14 — PDR vs MDR under redundancy",
            ["method", "redundancy", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    pdr = {r["redundancy"]: r for r in rows if r["method"] == "pdr"}
    mdr = {r["redundancy"]: r for r in rows if r["method"] == "mdr"}
    assert all(r["recall"] > 0.95 for r in rows)
    # MDR grows with redundancy...
    assert mdr[5]["overhead_mb"] > mdr[1]["overhead_mb"] * 1.5
    # ...while PDR stays flat or decreases...
    assert pdr[5]["overhead_mb"] <= pdr[1]["overhead_mb"] * 1.2
    # ...so at high redundancy PDR costs at most ~half of MDR.
    assert pdr[5]["overhead_mb"] < mdr[5]["overhead_mb"] * 0.6
    assert pdr[5]["latency_s"] < mdr[5]["latency_s"]
