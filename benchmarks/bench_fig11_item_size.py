"""Fig. 11 — PDR latency/overhead vs item size (1–20 MB).

Paper shape: recall 100%; latency and overhead ≈linear in size
(8.2 s / 4.83 MB at 1 MB → 46.1 s / 54.22 MB at 20 MB); overhead ratio
≈2–3× (chunks travel several hops).
"""

from conftest import scaled

from repro.experiments.figures import fig11_item_size
from repro.experiments.runner import render_table

MB = 1024 * 1024


def test_fig11_item_size(benchmark, bench_seeds, bench_scale, record_table):
    sizes = tuple(
        scaled(s, bench_scale, minimum=MB // 2) for s in (1 * MB, 5 * MB, 10 * MB, 20 * MB)
    )

    def run():
        return fig11_item_size.run(sizes=sizes, seeds=bench_seeds)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig11",
        render_table(
            "Fig. 11 — PDR vs item size",
            ["size_mb", "recall", "latency_s", "overhead_mb", "overhead_ratio"],
            rows,
        ),
    )

    assert all(r["recall"] == 1.0 for r in rows)
    latencies = [r["latency_s"] for r in rows]
    overheads = [r["overhead_mb"] for r in rows]
    assert latencies[-1] > latencies[0]
    assert overheads[-1] > overheads[0]
    # Overhead is a small multiple of the item size (2–3× in the paper).
    assert all(1.0 <= r["overhead_ratio"] <= 8.0 for r in rows)
