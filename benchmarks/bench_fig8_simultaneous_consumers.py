"""Fig. 8 — PDD with simultaneous consumers.

Paper shape: recall 100% throughout; per-consumer latency grows
sublinearly and stabilises (mixedcast shares transmissions).
"""

from conftest import scaled

from repro.experiments.figures import fig8_simultaneous_consumers
from repro.experiments.runner import render_table


def test_fig8_simultaneous_consumers(
    benchmark, bench_seeds, bench_scale, record_table
):
    metadata_count = scaled(5000, bench_scale, minimum=400)

    def run():
        return fig8_simultaneous_consumers.run(
            consumer_counts=(1, 2, 3, 4, 5),
            seeds=bench_seeds,
            metadata_count=metadata_count,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "fig8",
        render_table(
            "Fig. 8 — PDD with simultaneous consumers",
            ["consumers", "recall", "latency_s", "overhead_mb"],
            rows,
        ),
    )

    assert all(r["recall"] > 0.95 for r in rows)
    # Per-consumer latency grows sublinearly: five simultaneous consumers
    # finish in far less than five times one consumer's time (mixedcast
    # shares transmissions).
    assert rows[-1]["latency_s"] < rows[0]["latency_s"] * 5 * 0.8
    # Overhead stays within a small factor of five solo discoveries (at
    # paper scale, where response data dwarfs per-query Bloom filters, it
    # is strictly sublinear).
    assert rows[-1]["overhead_mb"] < rows[0]["overhead_mb"] * 8
