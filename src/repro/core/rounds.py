"""The multi-round discovery controller (§III-B-2, §VI-B-2).

The consumer makes two decisions:

* **When is the current round finished?**  Upon responses (and on a
  periodic check so silent rounds terminate), compute the ratio of
  responses received within the recent window ``T`` to all responses
  received since the round's query was sent.  The round is finished when
  the ratio is at most ``T_r`` — with the paper's best ``T_r = 0`` this
  means "no response for ``T`` seconds".
* **Start another round?**  If the proportion of *new* entries received in
  the finished round to all entries ever received exceeds ``T_d``; with
  the paper's best ``T_d = 0``, any new entry triggers another round, so
  discovery stops only after a round that found nothing new.

The paper's best combination is ``T = 1 s``, ``T_r = T_d = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.obs.memprof import memory_phase
from repro.sim.process import PeriodicTask
from repro.sim.simulator import Simulator

#: Paper's best parameters (§VI-B-2).
DEFAULT_WINDOW_S = 1.0
DEFAULT_STOP_RATIO = 0.0
DEFAULT_CONTINUE_RATIO = 0.0


@dataclass(frozen=True)
class RoundConfig:
    """Controller knobs: ``T``, ``T_r``, ``T_d`` of §III-B-2."""

    window_s: float = DEFAULT_WINDOW_S
    stop_ratio: float = DEFAULT_STOP_RATIO
    continue_ratio: float = DEFAULT_CONTINUE_RATIO
    check_interval_s: float = 0.25
    max_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError("window T must be positive")
        if not 0.0 <= self.stop_ratio < 1.0:
            raise ConfigurationError("T_r must be in [0, 1)")
        if not 0.0 <= self.continue_ratio < 1.0:
            raise ConfigurationError("T_d must be in [0, 1)")
        if self.check_interval_s <= 0:
            raise ConfigurationError("check interval must be positive")


class RoundController:
    """Round life-cycle driver; the owning session feeds it events."""

    def __init__(
        self,
        sim: Simulator,
        config: RoundConfig,
        on_round_end: Callable[[], None],
        node: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.on_round_end = on_round_end
        self.node = node
        self.round_index = 0
        self._round_start = 0.0
        self._arrivals: List[float] = []
        self._task = PeriodicTask(sim, config.check_interval_s, self._check)
        self._active = False
        self._duration_hist = sim.metrics.histogram(
            "rounds.duration_s", (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0)
        )

    @property
    def active(self) -> bool:
        """Whether a round is currently running."""
        return self._active

    # ------------------------------------------------------------------
    def begin_round(self) -> int:
        """Start the next round; returns its 1-based index."""
        self.round_index += 1
        self._round_start = self.sim.now
        self._arrivals = []
        self._active = True
        if not self._task.running:
            self._task.start(self.config.check_interval_s)
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(
                "round_begin",
                node=self.node,
                round=self.round_index,
                window=self.config.window_s,
            )
        recorder = self.sim.recorder
        if recorder is not None:
            recorder.on_round_boundary("round_begin", self.round_index)
        memory_phase(f"round_{self.round_index}_begin")
        return self.round_index

    def record_response(self) -> None:
        """A response addressed to the consumer arrived."""
        if self._active:
            self._arrivals.append(self.sim.now)

    def stop(self) -> None:
        """Abort the controller (session finished or abandoned)."""
        self._active = False
        self._task.stop()

    # ------------------------------------------------------------------
    def should_start_new_round(self, new_in_round: int, total_received: int) -> bool:
        """The §III-B-2 continue rule, plus the max-round cap."""
        if (
            self.config.max_rounds is not None
            and self.round_index >= self.config.max_rounds
        ):
            return False
        if total_received <= 0:
            return False
        return new_in_round / total_received > self.config.continue_ratio

    # ------------------------------------------------------------------
    def _check(self) -> None:
        if not self._active:
            return
        now = self.sim.now
        if now - self._round_start < self.config.window_s:
            return
        total = len(self._arrivals)
        window_start = now - self.config.window_s
        in_window = sum(1 for t in self._arrivals if t > window_start)
        ratio = in_window / total if total else 0.0
        if ratio <= self.config.stop_ratio:
            self._active = False
            self._task.stop()
            duration = now - self._round_start
            self._duration_hist.observe(duration)
            trace = self.sim.trace
            if trace.enabled:
                trace.emit(
                    "round_end",
                    node=self.node,
                    round=self.round_index,
                    responses=total,
                    duration=duration,
                    window=self.config.window_s,
                )
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.on_round_boundary("round_end", self.round_index)
            memory_phase(f"round_{self.round_index}_end")
            self.on_round_end()
