"""One-shot Interest discovery: the CCN/NDN-style baseline (§VIII).

The paper argues that CCN/NDN Interests — removed from the PIT upon a
*single* returning Data message — force a consumer to send "many Interest
messages ... to retrieve all matching metadata entries", whereas one
lingering query guides a whole stream of responses.  This module
implements that baseline so the claim can be measured:

* an :class:`InterestQuery` floods like a PDD query and creates a PIT
  entry at each node;
* a node holding matching entries answers with at most **one**
  :class:`InterestData` message (one Interest retrieves one Data);
* relaying a Data message **consumes** the PIT entry — later Data for the
  same Interest is not forwarded;
* the consumer (:class:`InterestDiscoverySession`) must therefore re-issue
  Interests, one per Data message it hopes to receive, until an Interest
  goes unanswered.

Bloom-filter redundancy detection is kept identical to PDD so the
comparison isolates the lingering-vs-one-shot difference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Set, Tuple

from repro.bloom.bloom_filter import make_round_filter
from repro.core.lqt import LingeringEntry, LingeringQueryTable, RecentResponses
from repro.core.messages import next_message_id
from repro.data.descriptor import DataDescriptor
from repro.data.predicate import QuerySpec
from repro.errors import ConfigurationError
from repro.net.topology import NodeId
from repro.sim.process import Timer

if TYPE_CHECKING:
    from repro.node.device import Device


@dataclass(frozen=True)
class InterestQuery:
    """A one-shot Interest (PIT semantics)."""

    message_id: int
    sender_id: NodeId
    receiver_ids: Optional[frozenset]
    spec: QuerySpec = QuerySpec()
    origin_id: NodeId = -1
    expires_at: float = float("inf")
    bloom: object = None
    hop_count: int = 0

    def base_size(self) -> int:
        """Header bytes incl. the receiver list."""
        from repro.core.messages import MESSAGE_HEADER_BYTES, RECEIVER_ID_BYTES

        receivers = (
            0 if self.receiver_ids is None else RECEIVER_ID_BYTES * len(self.receiver_ids)
        )
        return MESSAGE_HEADER_BYTES + receivers

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        bloom_size = self.bloom.wire_size() if hasattr(self.bloom, "wire_size") else 0
        return self.base_size() + self.spec.wire_size() + bloom_size + 3

    def rewritten(self, sender_id: NodeId) -> "InterestQuery":
        """Per-hop forwarded copy (hop count incremented)."""
        return replace(
            self, sender_id=sender_id, hop_count=self.hop_count + 1
        )


@dataclass(frozen=True)
class InterestData:
    """The single Data message answering one Interest."""

    message_id: int
    sender_id: NodeId
    receiver_ids: frozenset
    interest_id: int = -1
    entries: Tuple[DataDescriptor, ...] = ()

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        from repro.core.messages import MESSAGE_HEADER_BYTES, RECEIVER_ID_BYTES

        return (
            MESSAGE_HEADER_BYTES
            + RECEIVER_ID_BYTES * len(self.receiver_ids)
            + 8
            + sum(e.wire_size() for e in self.entries)
        )

    def rewritten(self, sender_id: NodeId, receiver_ids: frozenset) -> "InterestData":
        """Per-hop relayed copy (same Data id for dedup)."""
        return replace(self, sender_id=sender_id, receiver_ids=receiver_ids)


class InterestEngine:
    """Per-device PIT-based responder/relay for the baseline."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        #: The PIT; entries are *consumed* on first matching Data.
        self.pit = LingeringQueryTable(
            clock=lambda: device.sim.now,
            trace=device.sim.trace,
            node=device.node_id,
        )
        #: Nonce-style dedup, separate from the PIT: a consumed entry must
        #: not make redundant flooded copies look new again (NDN keeps a
        #: dead-nonce list for exactly this).
        self.seen_interests = RecentResponses()
        self.recent = RecentResponses()

    # ------------------------------------------------------------------
    def issue_interest(
        self,
        spec: QuerySpec,
        bloom: object,
        ttl: Optional[float] = None,
    ) -> InterestQuery:
        """Flood one Interest; at most one Data message comes back."""
        device = self.device
        if ttl is None:
            ttl = device.config.protocol.query_ttl_s
        expires_at = device.sim.now + ttl
        interest = InterestQuery(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=None,
            spec=spec,
            origin_id=device.node_id,
            expires_at=expires_at,
            bloom=bloom,
        )
        self.seen_interests.seen_before(interest.message_id)
        self.pit.insert(
            LingeringEntry(
                query=interest,
                upstream=device.node_id,
                expires_at=expires_at,
                is_origin=True,
                bloom=bloom.copy(),
            ),
            interest.message_id,
        )
        device.face.send(
            interest,
            interest.wire_size(),
            receivers=None,
            kind="interest",
            reliable=True,
        )
        return interest

    # ------------------------------------------------------------------
    def handle_query(self, interest: InterestQuery, addressed: bool) -> None:
        """PIT insert; answer with at most ONE Data; else forward."""
        device = self.device
        now = device.sim.now
        if self.seen_interests.seen_before(interest.message_id):
            return
        entry = LingeringEntry(
            query=interest,
            upstream=interest.sender_id,
            expires_at=interest.expires_at,
            bloom=interest.bloom.copy(),
        )
        self.pit.insert(entry, interest.message_id)

        # Answer with AT MOST ONE Data message (the one-shot semantics).
        matches = [
            d
            for d in device.store.match_metadata(interest.spec)
            if d.stable_key() not in entry.bloom
        ]
        if matches:
            limit = device.config.protocol.max_response_payload_bytes
            batch: List[DataDescriptor] = []
            batch_bytes = 0
            for descriptor in matches:
                size = descriptor.wire_size()
                if batch and batch_bytes + size > limit:
                    break
                batch.append(descriptor)
                batch_bytes += size
            for descriptor in batch:
                entry.bloom.insert(descriptor.stable_key())
            data = InterestData(
                message_id=next_message_id(),
                sender_id=device.node_id,
                receiver_ids=frozenset({interest.sender_id}),
                interest_id=interest.message_id,
                entries=tuple(batch),
            )
            self.recent.seen_before(data.message_id)
            device.face.send(
                data,
                data.wire_size(),
                receivers=data.receiver_ids,
                kind="interest_data",
                reliable=True,
            )
            # Answering locally consumes this node's PIT entry: the
            # Interest is satisfied from its point of view.
            self.pit.remove(interest.message_id)
            return

        if not addressed or now >= interest.expires_at:
            return
        if not device.may_forward_flood(interest.hop_count):
            return
        forwarded = interest.rewritten(sender_id=device.node_id)
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=None,
            kind="interest",
            reliable=True,
        )

    # ------------------------------------------------------------------
    def handle_response(self, data: InterestData, addressed: bool) -> None:
        """Cache entries; forward once, consuming the PIT entry."""
        device = self.device
        if self.recent.seen_before(data.message_id):
            return
        for descriptor in data.entries:
            device.cache_metadata(descriptor)
        if not addressed:
            return
        entry = self.pit.get(data.interest_id)
        if entry is None:
            return
        # Consume the PIT entry: one Interest, one Data (§VIII).
        self.pit.remove(data.interest_id)
        if entry.is_origin:
            return
        forwarded = data.rewritten(
            sender_id=device.node_id,
            receiver_ids=frozenset({entry.upstream}),
        )
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=forwarded.receiver_ids,
            kind="interest_data",
            reliable=True,
        )


class InterestDiscoverySession:
    """Consumer driving repeated one-shot Interests to exhaustion.

    Issues an Interest, waits for its single Data (or a timeout), then
    issues the next with an updated Bloom filter; stops after
    ``max_idle_interests`` consecutive unanswered Interests.
    """

    def __init__(
        self,
        device: "Device",
        spec: Optional[QuerySpec] = None,
        interest_timeout_s: float = 1.0,
        max_idle_interests: int = 2,
        max_interests: int = 10_000,
        on_complete: Optional[Callable[["InterestDiscoverySession"], None]] = None,
    ) -> None:
        self.device = device
        self.spec = spec if spec is not None else QuerySpec()
        self.interest_timeout_s = interest_timeout_s
        self.max_idle_interests = max_idle_interests
        self.max_interests = max_interests
        self.on_complete = on_complete
        self.received: Set[DataDescriptor] = set()
        self.interests_sent = 0
        self.started_at = 0.0
        self.last_new_at: Optional[float] = None
        self.done = False
        self._idle = 0
        self._new_since_interest = 0
        self._timer = Timer(device.sim, self._interest_timed_out)
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed from the local store and send the first Interest."""
        if self._started:
            raise ConfigurationError("session already started")
        self._started = True
        device = self.device
        self.started_at = device.sim.now
        device.metadata_listeners.append(self._on_metadata)
        for descriptor in device.store.match_metadata(self.spec):
            self.received.add(descriptor)
        self._issue_next()

    @property
    def latency(self) -> float:
        """Start → last new entry (comparable to PDD's latency metric)."""
        if self.last_new_at is None:
            return 0.0
        return self.last_new_at - self.started_at

    # ------------------------------------------------------------------
    def _issue_next(self) -> None:
        if self.done:
            return
        if self.interests_sent >= self.max_interests:
            self._finish()
            return
        self.interests_sent += 1
        self._new_since_interest = 0
        bloom = make_round_filter(
            (d.stable_key() for d in self.received),
            round_index=self.interests_sent,
            false_positive_rate=self.device.config.protocol.bloom_false_positive_rate,
            max_bits=self.device.config.protocol.bloom_max_bits,
        )
        self.device.interest.issue_interest(self.spec, bloom)
        self._timer.start(self.interest_timeout_s)

    def _interest_timed_out(self) -> None:
        if self._new_since_interest == 0:
            self._idle += 1
        else:
            self._idle = 0
        if self._idle >= self.max_idle_interests:
            self._finish()
        else:
            self._issue_next()

    def _on_metadata(self, descriptor: DataDescriptor) -> None:
        if self.done or not self.spec.matches(descriptor):
            return
        if descriptor in self.received:
            return
        self.received.add(descriptor)
        self.last_new_at = self.device.sim.now
        self._new_since_interest += 1

    def _finish(self) -> None:
        self.done = True
        self._timer.cancel()
        if self._on_metadata in self.device.metadata_listeners:
            self.device.metadata_listeners.remove(self._on_metadata)
        if self.on_complete is not None:
            self.on_complete(self)
