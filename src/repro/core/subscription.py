"""Subscriptions: standing discovery for data that keeps appearing.

§IV defers "subscribing to a data item that keeps growing (e.g., live
video streams)" to future work.  Lingering queries make the discovery half
of that natural: a query lingers at every node on the flood tree, so when
a producer *creates* new matching data it can immediately push a response
along the existing reverse paths — no new query needed.

Two pieces:

* a **publish hook** in the discovery engine
  (:meth:`repro.core.discovery.DiscoveryEngine.on_local_data`): when local
  data appears, answer every matching lingering query as if it had just
  arrived (Bloom-checked, so each consumer gets each entry once);
* :class:`SubscriptionSession` — a consumer that floods one long-lived
  query, renews it before expiry, and streams newly discovered entries to
  a callback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Set

from repro.bloom.bloom_filter import make_round_filter
from repro.data.descriptor import DataDescriptor
from repro.data.predicate import QuerySpec
from repro.errors import ConfigurationError
from repro.sim.process import PeriodicTask

if TYPE_CHECKING:
    from repro.node.device import Device


class SubscriptionSession:
    """A standing subscription to all data matching a spec.

    Args:
        device: The subscribing consumer's device.
        spec: What to subscribe to.
        on_entry: Callback invoked for every newly discovered descriptor.
        lease_s: Lifetime of each issued query; the session renews at
            2/3 of the lease so relays' lingering queries never lapse.
    """

    def __init__(
        self,
        device: "Device",
        spec: Optional[QuerySpec] = None,
        on_entry: Optional[Callable[[DataDescriptor], None]] = None,
        lease_s: float = 60.0,
    ) -> None:
        if lease_s <= 0:
            raise ConfigurationError("lease_s must be positive")
        self.device = device
        self.spec = spec if spec is not None else QuerySpec()
        self.on_entry = on_entry
        self.lease_s = lease_s
        self.received: Set[DataDescriptor] = set()
        self.renewals = 0
        self.active = False
        self._renew_task = PeriodicTask(
            device.sim, lease_s * 2.0 / 3.0, self._renew
        )
        self._round = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Issue the initial standing query and begin renewing it."""
        if self.active:
            raise ConfigurationError("subscription already active")
        self.active = True
        device = self.device
        device.metadata_listeners.append(self._on_metadata)
        for descriptor in device.store.match_metadata(self.spec):
            self._deliver(descriptor)
        self._issue()
        self._renew_task.start()

    def stop(self) -> None:
        """End the subscription (lingering state decays via expiry)."""
        if not self.active:
            return
        self.active = False
        self._renew_task.stop()
        if self._on_metadata in self.device.metadata_listeners:
            self.device.metadata_listeners.remove(self._on_metadata)

    # ------------------------------------------------------------------
    def _issue(self) -> None:
        self._round += 1
        bloom = make_round_filter(
            (d.stable_key() for d in self.received),
            round_index=self._round,
            false_positive_rate=self.device.config.protocol.bloom_false_positive_rate,
            max_bits=self.device.config.protocol.bloom_max_bits,
        )
        self.device.discovery.issue_query(
            self.spec, bloom, round_index=self._round, ttl=self.lease_s
        )

    def _renew(self) -> None:
        if not self.active:
            return
        self.renewals += 1
        self._issue()

    def _on_metadata(self, descriptor: DataDescriptor) -> None:
        if not self.active or not self.spec.matches(descriptor):
            return
        self._deliver(descriptor)

    def _deliver(self, descriptor: DataDescriptor) -> None:
        if descriptor in self.received:
            return
        self.received.add(descriptor)
        if self.on_entry is not None:
            self.on_entry(descriptor)
