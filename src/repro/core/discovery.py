"""Peer Data Discovery: Algorithms 1 and 2 of §III.

The engine runs on *every* device (any node can respond and relay).  It
implements:

* **Algorithm 1** (query processing): LQT lookup → DS lookup → receiver
  check → forwarding, with the §III-B-2 refinements — responses pruned by
  the query's Bloom filter and the query rewritten en-route so downstream
  nodes do not return entries this node just sent.
* **Algorithm 2** (response processing): RR lookup → DS lookup
  (opportunistic caching, even for overheard frames) → receiver check →
  LQT lookup → mixedcast forwarding, where one relayed response carries the
  union of entries still needed by matching downstream queries and each
  matched query's Bloom filter is updated (en-route rewriting).

Small-data retrieval (§IV intro: "collecting many small data items ...
follows almost the same process as metadata discovery") reuses the same
engine with ``want_payload=True``: DS lookup then matches stored chunks and
responses carry the payloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.bloom.bloom_filter import NullFilter
from repro.core.lqt import LingeringEntry, LingeringQueryTable, RecentResponses
from repro.core.messages import (
    DiscoveryQuery,
    DiscoveryResponse,
    next_message_id,
)
from repro.data.descriptor import DataDescriptor
from repro.data.item import Chunk
from repro.data.predicate import QuerySpec

if TYPE_CHECKING:
    from repro.node.device import Device


class DiscoveryEngine:
    """Per-device PDD responder/relay."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.lqt = LingeringQueryTable(
            clock=lambda: device.sim.now,
            trace=device.sim.trace,
            node=device.node_id,
        )
        self.recent = RecentResponses()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def issue_query(
        self,
        spec: QuerySpec,
        bloom: object,
        round_index: int = 0,
        want_payload: bool = False,
        ttl: Optional[float] = None,
    ) -> DiscoveryQuery:
        """Create, register and flood a new lingering query."""
        device = self.device
        if ttl is None:
            ttl = device.config.protocol.query_ttl_s
        expires_at = device.sim.now + ttl
        query = DiscoveryQuery(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=None,
            spec=spec,
            origin_id=device.node_id,
            expires_at=expires_at,
            bloom=bloom,
            round_index=round_index,
            want_payload=want_payload,
        )
        self.lqt.insert(
            LingeringEntry(
                query=query,
                upstream=device.node_id,
                expires_at=expires_at,
                is_origin=True,
                bloom=bloom.copy(),
            ),
            query.message_id,
        )
        trace = device.sim.trace
        if trace.enabled:
            # The issued filter's exact bits ride along so the offline
            # audit can prove responses never carry already-covered keys.
            bloom_fields = (
                bloom.trace_fields() if hasattr(bloom, "trace_fields") else {}
            )
            trace.emit(
                "query_issued",
                node=device.node_id,
                query_id=query.message_id,
                proto="pdd",
                round=round_index,
                consumer=device.node_id,
                want_payload=want_payload,
                ttl=ttl,
                expires_at=expires_at,
                **bloom_fields,
            )
        device.face.send(
            query, query.wire_size(), receivers=None, kind="query", reliable=True
        )
        return query

    # ------------------------------------------------------------------
    # Algorithm 1: query processing
    # ------------------------------------------------------------------
    def handle_query(self, query: DiscoveryQuery, addressed: bool) -> None:
        """Algorithm 1: LQT lookup, DS lookup, receiver check, forwarding."""
        device = self.device
        now = device.sim.now
        # {LQT Lookup} — drop redundant copies of the same query.
        if self.lqt.exists(query.message_id):
            return
        entry = LingeringEntry(
            query=query,
            upstream=query.sender_id,
            expires_at=query.expires_at,
            bloom=query.bloom.copy(),
        )
        self.lqt.insert(entry, query.message_id)

        # {DS Lookup} — reply matching content, pruned by the Bloom filter.
        sent_keys = self._respond_from_store(query, entry)

        # {Receiver Check} — overhearers respond but do not relay.
        if not addressed or now >= query.expires_at:
            return
        if not device.may_forward_flood(query.hop_count):
            return

        # {Forwarding} — rewrite the query: new sender, Bloom filter updated
        # with the entries just sent so downstream nodes skip them.
        forwarded = query.rewritten(
            sender_id=device.node_id,
            receiver_ids=None,
            bloom=entry.bloom.copy(),
        )
        trace = device.sim.trace
        if trace.enabled:
            trace.emit(
                "query_forwarded",
                node=device.node_id,
                query_id=query.message_id,
                proto="pdd",
                round=query.round_index,
                consumer=query.origin_id,
                hop=forwarded.hop_count,
                responded=sent_keys,
                expires_at=query.expires_at,
            )
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=None,
            kind="query",
            reliable=True,
        )

    def _respond_from_store(
        self, query: DiscoveryQuery, entry: LingeringEntry
    ) -> int:
        """Send response messages for matching local content; returns count."""
        device = self.device
        bloom = entry.bloom
        trace = device.sim.trace
        if query.want_payload:
            candidates = list(device.store.match_chunks(query.spec))
            chunks = [
                chunk
                for chunk in candidates
                if chunk.descriptor.stable_key() not in bloom
            ]
            if trace.enabled and candidates:
                # Prune hits = matches the query's filter already covers.
                trace.emit(
                    "bloom_prune",
                    node=device.node_id,
                    query_id=query.message_id,
                    round=query.round_index,
                    consumer=query.origin_id,
                    hits=len(candidates) - len(chunks),
                    misses=len(chunks),
                )
            if not chunks:
                return 0
            for chunk in chunks:
                bloom.insert(chunk.descriptor.stable_key())
            self._send_payload_responses(
                chunks, frozenset({query.sender_id}), query.round_index, query
            )
            return len(chunks)
        candidates = list(device.store.match_metadata(query.spec))
        matches = [
            descriptor
            for descriptor in candidates
            if descriptor.stable_key() not in bloom
        ]
        if trace.enabled and candidates:
            trace.emit(
                "bloom_prune",
                node=device.node_id,
                query_id=query.message_id,
                round=query.round_index,
                consumer=query.origin_id,
                hits=len(candidates) - len(matches),
                misses=len(matches),
            )
        if not matches:
            return 0
        for descriptor in matches:
            bloom.insert(descriptor.stable_key())
        self._send_entry_responses(
            matches, frozenset({query.sender_id}), query.round_index, query
        )
        return len(matches)

    # ------------------------------------------------------------------
    # Response packing
    # ------------------------------------------------------------------
    def _send_entry_responses(
        self,
        entries: List[DataDescriptor],
        receivers: frozenset,
        round_index: int,
        query: Optional[DiscoveryQuery] = None,
    ) -> None:
        """Pack descriptors into frames of at most the configured size."""
        device = self.device
        limit = device.config.protocol.max_response_payload_bytes
        batch: List[DataDescriptor] = []
        batch_bytes = 0
        for descriptor in entries:
            size = descriptor.wire_size()
            if batch and batch_bytes + size > limit:
                self._emit_response(tuple(batch), (), receivers, round_index, query)
                batch = []
                batch_bytes = 0
            batch.append(descriptor)
            batch_bytes += size
        if batch:
            self._emit_response(tuple(batch), (), receivers, round_index, query)

    def _send_payload_responses(
        self,
        chunks: List[Chunk],
        receivers: frozenset,
        round_index: int,
        query: Optional[DiscoveryQuery] = None,
    ) -> None:
        """Small-data responses: one or more items per frame."""
        device = self.device
        limit = device.config.protocol.max_response_payload_bytes
        batch: List[Chunk] = []
        batch_bytes = 0
        for chunk in chunks:
            size = chunk.descriptor.wire_size() + chunk.size
            if batch and batch_bytes + size > limit:
                self._emit_response((), tuple(batch), receivers, round_index, query)
                batch = []
                batch_bytes = 0
            batch.append(chunk)
            batch_bytes += size
        if batch:
            self._emit_response((), tuple(batch), receivers, round_index, query)

    def _emit_response(
        self,
        entries: Tuple[DataDescriptor, ...],
        payloads: Tuple[Chunk, ...],
        receivers: frozenset,
        round_index: int,
        query: Optional[DiscoveryQuery] = None,
    ) -> None:
        device = self.device
        response = DiscoveryResponse(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=receivers,
            entries=entries,
            payloads=payloads,
            round_index=round_index,
            query_ids=(query.message_id,) if query is not None else (),
        )
        # Own responses are never re-processed when overheard back.
        self.recent.seen_before(response.message_id)
        trace = device.sim.trace
        if trace.enabled:
            sent_keys = [e.stable_key().hex() for e in entries]
            sent_keys.extend(c.descriptor.stable_key().hex() for c in payloads)
            trace.emit(
                "response_sent",
                node=device.node_id,
                response_id=response.message_id,
                proto="pdd",
                query_id=query.message_id if query is not None else None,
                consumer=query.origin_id if query is not None else None,
                round=round_index,
                entries=len(entries),
                payloads=len(payloads),
                size=response.wire_size(),
                keys=sent_keys,
            )
        device.face.send(
            response,
            response.wire_size(),
            receivers=receivers,
            kind="response",
            reliable=True,
        )

    # ------------------------------------------------------------------
    # Publish hook (subscription extension)
    # ------------------------------------------------------------------
    def on_local_data(self, descriptor: DataDescriptor) -> None:
        """Newly produced local data: answer matching lingering queries.

        The §IV "growing data" scenario: lingering queries already sit on
        every flood-tree node, so fresh data can be pushed back to the
        consumers along the existing reverse paths.
        """
        device = self.device
        key = descriptor.stable_key()
        for entry in self.lqt.live_entries():
            query = entry.query
            if not isinstance(query, DiscoveryQuery) or query.want_payload:
                continue
            if not query.spec.matches(descriptor):
                continue
            if key in entry.bloom:
                continue
            entry.bloom.insert(key)
            if entry.is_origin:
                continue  # our own data; the local store already has it
            self._send_entry_responses(
                [descriptor], frozenset({entry.upstream}), query.round_index, query
            )

    def _wanted_by_origin(self, chunk: Chunk) -> bool:
        """Whether one of this node's own small-data queries wants this."""
        for entry in self.lqt.live_entries():
            query = entry.query
            if (
                isinstance(query, DiscoveryQuery)
                and entry.is_origin
                and query.want_payload
                and query.spec.matches(chunk.descriptor)
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Algorithm 2: response processing
    # ------------------------------------------------------------------
    def handle_response(self, response: DiscoveryResponse, addressed: bool) -> None:
        """Algorithm 2: RR lookup, caching, receiver check, mixedcast relay."""
        device = self.device
        # {RR Lookup} — drop copies already heard from other neighbors.
        if self.recent.seen_before(response.message_id):
            return

        # {DS Lookup} — opportunistic caching, also for overheard frames.
        for descriptor in response.entries:
            device.cache_metadata(descriptor)
        for chunk in response.payloads:
            # Payloads this node's own session asked for are pinned so a
            # bounded cache policy cannot evict data mid-collection.
            device.cache_chunk(chunk, pin=self._wanted_by_origin(chunk))

        # {Receiver Check} — only nodes on the reverse path continue.
        if not addressed:
            return

        # {LQT Lookup} + {Forwarding} — mixedcast with en-route rewriting.
        union_entries: Dict[DataDescriptor, None] = {}
        union_payloads: Dict[DataDescriptor, Chunk] = {}
        receivers = set()
        matched_query_ids: List[int] = []
        for entry in self.lqt.live_entries():
            query = entry.query
            if not isinstance(query, DiscoveryQuery):
                continue
            wanted_entries = [
                d
                for d in response.entries
                if query.spec.matches(d) and d.stable_key() not in entry.bloom
            ]
            wanted_payloads = [
                c
                for c in response.payloads
                if query.spec.matches(c.descriptor)
                and c.descriptor.stable_key() not in entry.bloom
            ]
            if not wanted_entries and not wanted_payloads:
                continue
            for d in wanted_entries:
                entry.bloom.insert(d.stable_key())
            for c in wanted_payloads:
                entry.bloom.insert(c.descriptor.stable_key())
            if entry.is_origin:
                # Arrived home: delivery to the application happened via the
                # cache listeners in the DS-lookup step.
                continue
            receivers.add(entry.upstream)
            matched_query_ids.append(query.message_id)
            for d in wanted_entries:
                union_entries[d] = None
            for c in wanted_payloads:
                union_payloads[c.descriptor] = c
        if not receivers or (not union_entries and not union_payloads):
            return
        forwarded = response.rewritten(
            sender_id=device.node_id,
            receiver_ids=frozenset(receivers),
            entries=tuple(union_entries),
            payloads=tuple(union_payloads.values()),
            query_ids=tuple(matched_query_ids),
        )
        trace = device.sim.trace
        if trace.enabled:
            merged_keys = [d.stable_key().hex() for d in union_entries]
            merged_keys.extend(d.stable_key().hex() for d in union_payloads)
            trace.emit(
                "mixedcast_merge",
                node=device.node_id,
                response_id=response.message_id,
                entries=len(union_entries),
                payloads=len(union_payloads),
                receivers=len(receivers),
                query_ids=matched_query_ids,
                keys=merged_keys,
            )
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=forwarded.receiver_ids,
            kind="response",
            reliable=True,
        )
