"""The Lingering Query Table (§III-A).

A lingering query stays in the table until its expiration and keeps
directing the continuous stream of returning responses toward the consumer
— the key difference from one-shot CCN/NDN Interests.

Each entry records the *upstream* neighbor (the node that transmitted the
query to us, i.e. the reverse-path next hop), plus per-query mutable state
used by the redundancy machinery:

* ``bloom`` — this node's working copy of the query's Bloom filter,
  updated as entries are forwarded through (en-route rewriting, §III-B-2);
* ``forwarded_keys`` — exact-set dedup for CDI/chunk relaying (which chunk
  ids, at which best hop count, were already sent toward this consumer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Set

from repro.net.topology import NodeId
from repro.obs.trace import TraceBus


@dataclass
class LingeringEntry:
    """One lingering query plus its per-node relay state."""

    query: object
    upstream: NodeId
    expires_at: float
    is_origin: bool = False
    bloom: Optional[object] = None
    forwarded_keys: Set[object] = field(default_factory=set)
    best_hop_sent: Dict[int, int] = field(default_factory=dict)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class LingeringQueryTable:
    """Query-id keyed table with lazy expiration.

    When given a trace bus (and the owning node id), the table publishes
    ``lqt_linger`` on insertion and ``lqt_expire`` when lazy purging drops
    an aged-out entry.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        trace: Optional[TraceBus] = None,
        node: Optional[NodeId] = None,
    ) -> None:
        self._clock = clock
        self._trace = trace
        self._node = node
        self._entries: Dict[int, LingeringEntry] = {}

    def _emit(self, kind: str, query_id: int, entry: LingeringEntry) -> None:
        trace = self._trace
        if trace is not None and trace.enabled:
            trace.emit(
                kind,
                node=self._node,
                query_id=query_id,
                origin=entry.is_origin,
                expires_at=entry.expires_at,
                consumer=getattr(entry.query, "origin_id", None),
                round=getattr(entry.query, "round_index", None),
            )

    def __len__(self) -> int:
        self._purge()
        return len(self._entries)

    def exists(self, query_id: int) -> bool:
        """Whether a live entry for this query id is present."""
        entry = self._entries.get(query_id)
        if entry is None:
            return False
        if entry.expired(self._clock()):
            del self._entries[query_id]
            self._emit("lqt_expire", query_id, entry)
            return False
        return True

    def insert(self, entry: LingeringEntry, query_id: int) -> None:
        """Insert a new lingering query (replaces an expired duplicate)."""
        self._entries[query_id] = entry
        self._emit("lqt_linger", query_id, entry)

    def get(self, query_id: int) -> Optional[LingeringEntry]:
        """The live entry for this query id, or None."""
        if not self.exists(query_id):
            return None
        return self._entries.get(query_id)

    def remove(self, query_id: int) -> None:
        """Explicitly drop an entry (e.g. a satisfied chunk query)."""
        self._entries.pop(query_id, None)

    def live_entries(self) -> Iterator[LingeringEntry]:
        """Iterate all unexpired entries."""
        self._purge()
        return iter(list(self._entries.values()))

    def _purge(self) -> None:
        now = self._clock()
        dead = [qid for qid, entry in self._entries.items() if entry.expired(now)]
        for qid in dead:
            self._emit("lqt_expire", qid, self._entries[qid])
            del self._entries[qid]

    def observe_state(self) -> Dict[str, float]:
        """Flight-recorder view: ``{query_id: expires_at}`` of live entries.

        Strictly read-only — no lazy purge, no trace emission — so
        sampling a run cannot perturb it.  Expired-but-unpurged entries
        are filtered out of the view rather than deleted.
        """
        now = self._clock()
        return {
            str(qid): entry.expires_at
            for qid, entry in self._entries.items()
            if not entry.expired(now)
        }


class RecentResponses:
    """The received-response-id set of Algorithm 2's RR Lookup.

    Bounded: oldest ids are evicted once the history limit is exceeded
    (insertion-ordered dict doubles as an LRU-by-arrival structure).
    """

    def __init__(self, history_limit: int = 8192) -> None:
        self.history_limit = history_limit
        self._seen: Dict[int, None] = {}

    def seen_before(self, response_id: int) -> bool:
        """Record ``response_id``; True if it was already present."""
        if response_id in self._seen:
            return True
        self._seen[response_id] = None
        if len(self._seen) > self.history_limit:
            for key in list(self._seen)[: self.history_limit // 2]:
                del self._seen[key]
        return False

    def __contains__(self, response_id: int) -> bool:
        return response_id in self._seen
