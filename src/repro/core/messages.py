"""PDS protocol messages (§III-A, §IV-A, §IV-B).

Messages are immutable; en-route rewriting (sender id update, receiver-list
update, Bloom-filter insertion) always produces a *new* message object via
the ``rewritten`` helpers, because on a broadcast medium the original object
is still referenced by in-flight deliveries to other nodes.

Every message computes its own serialized size for the overhead metric.
``wire_size()`` is memoized per instance (immutability makes that sound:
every field the size depends on is frozen, and an attached Bloom filter's
size depends only on its fixed geometry) — the size of one message is
charged once per queue/send/ack decision on every hop, which made repeated
recomputation a measurable slice of large runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from repro.bloom.bloom_filter import BloomFilter, NullFilter
from repro.data.descriptor import DataDescriptor
from repro.data.item import Chunk
from repro.data.predicate import QuerySpec
from repro.net.message import Correlation
from repro.net.topology import NodeId

#: Fixed per-message header: message id (8) + type (1) + sender (4) +
#: expiry (4) + receiver-count byte.
MESSAGE_HEADER_BYTES = 18

#: Bytes per entry in an explicit receiver-id list.
RECEIVER_ID_BYTES = 4

_message_ids = itertools.count(1)


def next_message_id() -> int:
    """Message id, unique within one run (queries and responses share the
    space)."""
    return next(_message_ids)


def reset_message_ids(start: int = 1) -> None:
    """Rewind the id space to ``start`` (scenario construction).

    Message ids only need to be unique *within* one simulation run — the
    span loader already scopes them per ``(shard, run)`` because forked
    workers inherit the counter mid-sequence.  Resetting per scenario
    makes the ids a deterministic function of the run itself, so two
    executions of the same scenario emit identical ids regardless of what
    else ran in the process first — which is what lets the determinism
    fingerprint compare runs across processes, schedulers, and worker
    counts.
    """
    global _message_ids
    _message_ids = itertools.count(start)


def _receivers_size(receivers: Optional[FrozenSet[NodeId]]) -> int:
    return 0 if receivers is None else RECEIVER_ID_BYTES * len(receivers)


def _memoize_size(message: "PdsMessage", size: int) -> int:
    """Stash a computed wire size on a frozen message instance."""
    object.__setattr__(message, "_wire_size", size)
    return size


@dataclass(frozen=True)
class PdsMessage:
    """Common fields of every PDS query/response."""

    message_id: int
    sender_id: NodeId
    receiver_ids: Optional[FrozenSet[NodeId]]  # None = all neighbors

    def base_size(self) -> int:
        return MESSAGE_HEADER_BYTES + _receivers_size(self.receiver_ids)


# ----------------------------------------------------------------------
# Discovery (PDD) — §III
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiscoveryQuery(PdsMessage):
    """A lingering metadata (or small-data) query.

    Attributes:
        spec: Predicates selecting the desired descriptors.
        origin_id: The consumer that issued the query.
        expires_at: Lingering-query expiration (absolute sim time).
        bloom: Redundancy-detection filter over already-received entries.
        round_index: Discovery round this query belongs to (also the Bloom
            hash-family seed, §V-3).
        want_payload: False → metadata discovery; True → small-data
            retrieval, where responses carry item payloads (§IV intro).
        hop_count: Hops travelled so far (for the optional flood-scope
            limit of §III-A).
    """

    spec: QuerySpec = QuerySpec()
    origin_id: NodeId = -1
    expires_at: float = float("inf")
    bloom: object = NullFilter()
    round_index: int = 0
    want_payload: bool = False
    hop_count: int = 0

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        bloom_size = self.bloom.wire_size() if hasattr(self.bloom, "wire_size") else 0
        return _memoize_size(
            self, self.base_size() + self.spec.wire_size() + bloom_size + 3
        )

    def correlation(self) -> Correlation:
        """Causal ids the link layer stamps on this message's frames."""
        return Correlation(
            query_id=self.message_id,
            round=self.round_index,
            consumer=self.origin_id,
            hop=self.hop_count,
        )

    def rewritten(
        self,
        sender_id: NodeId,
        receiver_ids: Optional[FrozenSet[NodeId]],
        bloom: Optional[object] = None,
    ) -> "DiscoveryQuery":
        """The per-hop rewritten copy (Algorithm 1 Forwarding + §III-B-2)."""
        return replace(
            self,
            sender_id=sender_id,
            receiver_ids=receiver_ids,
            bloom=self.bloom if bloom is None else bloom,
            hop_count=self.hop_count + 1,
        )


@dataclass(frozen=True)
class DiscoveryResponse(PdsMessage):
    """Metadata entries (or small data items) flowing back to consumers.

    ``entries`` carries descriptors for metadata discovery; ``payloads``
    carries small data items (as single chunks) when responding to a
    ``want_payload`` query.

    ``query_ids`` names the lingering queries this copy answers — a pure
    correlation field (excluded from ``wire_size`` so the overhead model
    matches the paper's message formats, like the elided chunk payload
    bytes in :mod:`repro.core.wire`).
    """

    entries: Tuple[DataDescriptor, ...] = ()
    payloads: Tuple[Chunk, ...] = ()
    round_index: int = 0
    query_ids: Tuple[int, ...] = ()

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        entries_size = sum(e.wire_size() for e in self.entries)
        payload_size = sum(
            c.descriptor.wire_size() + c.size for c in self.payloads
        )
        return _memoize_size(self, self.base_size() + entries_size + payload_size)

    def correlation(self) -> Correlation:
        """Causal ids the link layer stamps on this message's frames."""
        return Correlation(
            response_id=self.message_id,
            round=self.round_index,
            query_id=self.query_ids[0] if len(self.query_ids) == 1 else None,
        )

    def rewritten(
        self,
        sender_id: NodeId,
        receiver_ids: FrozenSet[NodeId],
        entries: Tuple[DataDescriptor, ...],
        payloads: Tuple[Chunk, ...] = (),
        query_ids: Optional[Tuple[int, ...]] = None,
    ) -> "DiscoveryResponse":
        """Per-hop rewritten copy with a pruned payload (mixedcast).

        The message id is preserved: Algorithm 2's RR Lookup dedups copies
        of the *same* response heard from different neighbors.
        """
        return replace(
            self,
            sender_id=sender_id,
            receiver_ids=receiver_ids,
            entries=entries,
            payloads=payloads,
            query_ids=self.query_ids if query_ids is None else query_ids,
        )


# ----------------------------------------------------------------------
# Retrieval phase 1: CDI — §IV-A
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CdiQuery(PdsMessage):
    """Requests chunk-distribution information for one data item."""

    item: DataDescriptor = None  # type: ignore[assignment]
    origin_id: NodeId = -1
    expires_at: float = float("inf")
    hop_count: int = 0

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        return _memoize_size(self, self.base_size() + self.item.wire_size() + 1)

    def correlation(self) -> Correlation:
        """Causal ids the link layer stamps on this message's frames."""
        return Correlation(
            query_id=self.message_id,
            consumer=self.origin_id,
            hop=self.hop_count,
        )

    def rewritten(
        self,
        sender_id: NodeId,
        receiver_ids: Optional[FrozenSet[NodeId]],
    ) -> "CdiQuery":
        return replace(
            self,
            sender_id=sender_id,
            receiver_ids=receiver_ids,
            hop_count=self.hop_count + 1,
        )


@dataclass(frozen=True)
class CdiResponse(PdsMessage):
    """ChunkId–HopCount pairs relative to the transmitting node (§IV-A).

    ``query_ids`` names the lingering CDI queries this copy answers
    (correlation only; excluded from ``wire_size``).
    """

    item: DataDescriptor = None  # type: ignore[assignment]
    pairs: Tuple[Tuple[int, int], ...] = ()  # (chunk_id, hop_count)
    query_ids: Tuple[int, ...] = ()

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        return _memoize_size(
            self, self.base_size() + self.item.wire_size() + 4 * len(self.pairs)
        )

    def correlation(self) -> Correlation:
        """Causal ids the link layer stamps on this message's frames."""
        return Correlation(
            response_id=self.message_id,
            query_id=self.query_ids[0] if len(self.query_ids) == 1 else None,
        )

    def rewritten(
        self,
        sender_id: NodeId,
        receiver_ids: FrozenSet[NodeId],
        pairs: Tuple[Tuple[int, int], ...],
        query_ids: Optional[Tuple[int, ...]] = None,
    ) -> "CdiResponse":
        """Per-hop rewrite; the response id is preserved for RR dedup."""
        return replace(
            self,
            sender_id=sender_id,
            receiver_ids=receiver_ids,
            pairs=pairs,
            query_ids=self.query_ids if query_ids is None else query_ids,
        )


# ----------------------------------------------------------------------
# Retrieval phase 2: chunks — §IV-B
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChunkQuery(PdsMessage):
    """Requests a subset of chunks, directed at one nearest neighbor.

    ``root_id`` is the message id of the consumer's original query and
    ``parent_id`` the immediate parent in the recursive division tree of
    §IV-B (0 at the root); both are correlation-only fields that let the
    offline span reconstructor rebuild the per-chunk retrieval tree.
    """

    item: DataDescriptor = None  # type: ignore[assignment]
    chunk_ids: FrozenSet[int] = frozenset()
    origin_id: NodeId = -1
    expires_at: float = float("inf")
    root_id: int = 0
    parent_id: int = 0
    hop_count: int = 0

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        return _memoize_size(
            self, self.base_size() + self.item.wire_size() + 2 * len(self.chunk_ids)
        )

    def correlation(self) -> Correlation:
        """Causal ids the link layer stamps on this message's frames."""
        return Correlation(
            query_id=self.message_id,
            consumer=self.origin_id,
            hop=self.hop_count,
        )

    def divided(
        self,
        sender_id: NodeId,
        receiver: NodeId,
        chunk_ids: FrozenSet[int],
    ) -> "ChunkQuery":
        """A sub-query for the recursive division of §IV-B."""
        return replace(
            self,
            message_id=next_message_id(),
            sender_id=sender_id,
            receiver_ids=frozenset({receiver}),
            chunk_ids=chunk_ids,
            root_id=self.root_id if self.root_id else self.message_id,
            parent_id=self.message_id,
            hop_count=self.hop_count + 1,
        )


@dataclass(frozen=True)
class ChunkResponse(PdsMessage):
    """One data chunk travelling back toward consumers."""

    chunk: Chunk = None  # type: ignore[assignment]

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        return _memoize_size(
            self,
            self.base_size() + self.chunk.descriptor.wire_size() + self.chunk.size,
        )

    def correlation(self) -> Correlation:
        """Causal ids the link layer stamps on this message's frames."""
        return Correlation(
            response_id=self.message_id,
            chunk_id=self.chunk.chunk_id if self.chunk is not None else None,
        )

    def rewritten(
        self, sender_id: NodeId, receiver_ids: FrozenSet[NodeId]
    ) -> "ChunkResponse":
        """Per-hop rewrite; the response id is preserved for RR dedup."""
        return replace(self, sender_id=sender_id, receiver_ids=receiver_ids)


# ----------------------------------------------------------------------
# Baseline: multi-round data retrieval (MDR) — §VI-B-3
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MdrQuery(PdsMessage):
    """MDR round query: flood, requesting all chunks not yet received.

    ``have_chunk_ids`` is the explicit received-set (a bitmap on the wire;
    ``total_chunks`` bits), the baseline's redundancy-detection state.
    """

    item: DataDescriptor = None  # type: ignore[assignment]
    total_chunks: int = 0
    have_chunk_ids: FrozenSet[int] = frozenset()
    origin_id: NodeId = -1
    expires_at: float = float("inf")
    round_index: int = 0
    hop_count: int = 0

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        bitmap = (self.total_chunks + 7) // 8
        return _memoize_size(
            self, self.base_size() + self.item.wire_size() + bitmap + 3
        )

    def correlation(self) -> Correlation:
        """Causal ids the link layer stamps on this message's frames."""
        return Correlation(
            query_id=self.message_id,
            round=self.round_index,
            consumer=self.origin_id,
            hop=self.hop_count,
        )

    def rewritten(
        self,
        sender_id: NodeId,
        receiver_ids: Optional[FrozenSet[NodeId]],
        have_chunk_ids: FrozenSet[int],
    ) -> "MdrQuery":
        return replace(
            self,
            sender_id=sender_id,
            receiver_ids=receiver_ids,
            have_chunk_ids=have_chunk_ids,
            hop_count=self.hop_count + 1,
        )


#: MDR reuses ChunkResponse for returning chunks.
MdrResponse = ChunkResponse
