"""The Multi-round Data Retrieval (MDR) baseline (§VI-B-3).

MDR retrieves a large data item the way PDD retrieves metadata: the
consumer floods a query per round requesting all chunks not yet received;
every node holding requested chunks replies them along the reverse path;
redundancy detection (the explicit received-chunk set in the query,
rewritten en-route, plus per-query forwarded-chunk tracking at relays)
suppresses duplicates *along one reverse path* — but copies travelling
different reverse paths still duplicate, which is why MDR's cost grows
almost linearly with chunk redundancy while PDR's stays flat (Fig. 13/14).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Optional, Set

from repro.core.lqt import LingeringEntry, LingeringQueryTable, RecentResponses
from repro.core.messages import ChunkResponse, MdrQuery, next_message_id
from repro.core.retrieval import _item_key
from repro.data.descriptor import DataDescriptor
from repro.net.topology import NodeId

if TYPE_CHECKING:
    from repro.node.device import Device


class MdrEngine:
    """Per-device MDR responder/relay."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.lqt = LingeringQueryTable(
            clock=lambda: device.sim.now,
            trace=device.sim.trace,
            node=device.node_id,
        )
        self.recent = RecentResponses()
        #: Chunk frames we queued but that may still be withdrawn if a
        #: duplicate is overheard before they reach the air.
        self._pending_frames = {}
        self.suppressed_frames = 0

    # ------------------------------------------------------------------
    def issue_round(
        self,
        item: DataDescriptor,
        total_chunks: int,
        have_chunk_ids: Set[int],
        round_index: int,
        ttl: Optional[float] = None,
    ) -> MdrQuery:
        """Flood one round's query requesting all chunks not in ``have``."""
        device = self.device
        item = item.item_descriptor()
        if ttl is None:
            ttl = device.config.protocol.query_ttl_s
        expires_at = device.sim.now + ttl
        query = MdrQuery(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=None,
            item=item,
            total_chunks=total_chunks,
            have_chunk_ids=frozenset(have_chunk_ids),
            origin_id=device.node_id,
            expires_at=expires_at,
            round_index=round_index,
        )
        self.lqt.insert(
            LingeringEntry(
                query=query,
                upstream=device.node_id,
                expires_at=expires_at,
                is_origin=True,
            ),
            query.message_id,
        )
        trace = device.sim.trace
        if trace.enabled:
            trace.emit(
                "query_issued",
                node=device.node_id,
                query_id=query.message_id,
                proto="mdr",
                round=round_index,
                consumer=device.node_id,
                item=_item_key(item),
                missing=total_chunks - len(have_chunk_ids),
                ttl=ttl,
                expires_at=expires_at,
            )
        device.face.send(
            query, query.wire_size(), receivers=None, kind="mdr_query", reliable=True
        )
        return query

    #: Maximum random holdoff before serving a chunk (broadcast-storm
    #: suppression: a holder that overhears another copy of the same chunk
    #: during the holdoff cancels its own redundant reply).
    REPLY_HOLDOFF_S = 0.6

    # ------------------------------------------------------------------
    def handle_query(self, query: MdrQuery, addressed: bool) -> None:
        """Serve requested held chunks (after holdoff) and re-flood."""
        device = self.device
        now = device.sim.now
        if self.lqt.exists(query.message_id):
            return
        entry = LingeringEntry(
            query=query, upstream=query.sender_id, expires_at=query.expires_at
        )
        self.lqt.insert(entry, query.message_id)

        # DS lookup: reply requested chunks this node holds — after a short
        # random holdoff so copies overheard meanwhile suppress duplicates.
        held: Set[int] = set()
        for chunk_id in device.store.chunk_ids_of(query.item):
            if chunk_id in query.have_chunk_ids or chunk_id >= query.total_chunks:
                continue
            held.add(chunk_id)
            holdoff = device.rng.uniform(0.0, self.REPLY_HOLDOFF_S)
            device.sim.schedule(
                holdoff, self._serve_chunk, query.message_id, chunk_id
            )

        if not addressed or now >= query.expires_at:
            return
        if not device.may_forward_flood(query.hop_count):
            return
        # En-route rewriting: downstream nodes skip chunks this node will
        # reply itself.
        forwarded = query.rewritten(
            sender_id=device.node_id,
            receiver_ids=None,
            have_chunk_ids=query.have_chunk_ids | frozenset(held),
        )
        trace = device.sim.trace
        if trace.enabled:
            trace.emit(
                "query_forwarded",
                node=device.node_id,
                query_id=query.message_id,
                proto="mdr",
                round=query.round_index,
                consumer=query.origin_id,
                hop=forwarded.hop_count,
                responded=len(held),
                expires_at=query.expires_at,
            )
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=None,
            kind="mdr_query",
            reliable=True,
        )

    def _serve_chunk(self, query_id: int, chunk_id: int) -> None:
        """Deferred reply: skipped if the chunk was served meanwhile."""
        device = self.device
        entry = self.lqt.get(query_id)
        if entry is None or chunk_id in entry.forwarded_keys:
            return
        query = entry.query
        chunk = device.store.get_chunk(query.item.chunk_descriptor(chunk_id))
        if chunk is None:
            return
        entry.forwarded_keys.add(chunk_id)
        trace = device.sim.trace
        if trace.enabled:
            trace.emit(
                "chunk_served",
                node=device.node_id,
                item=_item_key(query.item),
                query_id=query_id,
                proto="mdr",
                consumer=query.origin_id,
                chunk_id=chunk_id,
                served=1,
                requested=query.total_chunks - len(query.have_chunk_ids),
            )
        self._emit_chunk(chunk, frozenset({entry.upstream}), query_id=query_id)

    def _emit_chunk(
        self, chunk, receivers: FrozenSet[NodeId], query_id: Optional[int] = None
    ) -> None:
        device = self.device
        response = ChunkResponse(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=receivers,
            chunk=chunk,
        )
        self.recent.seen_before(response.message_id)
        frame = device.face.send(
            response,
            response.wire_size(),
            receivers=receivers,
            kind="chunk_response",
            reliable=True,
        )
        if query_id is not None:
            self._register_pending(query_id, chunk.chunk_id, frame)

    def _register_pending(self, query_id: int, chunk_id: int, frame) -> None:
        self._pending_frames[(query_id, chunk_id)] = frame
        if len(self._pending_frames) > 4096:
            for key in list(self._pending_frames)[:2048]:
                del self._pending_frames[key]

    def _withdraw_pending(self, query_id: int, chunk_id: int) -> None:
        """Late suppression: cancel a queued duplicate that has not aired.

        256 KB frames spend whole seconds in pacing queues under load; a
        copy overheard meanwhile makes ours redundant, and withdrawing it
        (plus its retransmission state) is what keeps MDR's duplicate
        traffic bounded at high redundancy.
        """
        frame = self._pending_frames.pop((query_id, chunk_id), None)
        if frame is None:
            return
        face = self.device.face
        removed = face.bucket.remove(frame)
        if not removed:
            removed = face.radio.remove(frame)
        if removed:
            self.suppressed_frames += 1
            face.sender.cancel_frame(frame.frame_id)

    def _is_for_me(self, chunk) -> bool:
        """Whether one of this node's own MDR sessions wants this chunk."""
        for entry in self.lqt.live_entries():
            query = entry.query
            if (
                isinstance(query, MdrQuery)
                and entry.is_origin
                and query.item == chunk.item_descriptor
                and chunk.chunk_id not in query.have_chunk_ids
            ):
                return True
        return False

    # ------------------------------------------------------------------
    def handle_response(self, response: ChunkResponse, addressed: bool) -> None:
        """Cache, suppress overheard duplicates, relay along reverse paths."""
        device = self.device
        if self.recent.seen_before(response.message_id):
            return
        # Opportunistic caching is handled by the chunk engine (the device
        # dispatches ChunkResponse to both engines); caching here again is
        # a no-op but keeps this engine self-contained when used alone.
        if addressed or device.config.protocol.cache_overheard_chunks:
            device.cache_chunk(
                response.chunk, pin=self._is_for_me(response.chunk)
            )
        chunk = response.chunk
        if not addressed:
            # Overhearing-based suppression: another node already put this
            # chunk on the air nearby; cancel our own later replies for
            # the same lingering queries — and withdraw copies already
            # queued but not yet transmitted.
            for entry in self.lqt.live_entries():
                query = entry.query
                if (
                    isinstance(query, MdrQuery)
                    and not entry.is_origin
                    and query.item == chunk.item_descriptor
                ):
                    entry.forwarded_keys.add(chunk.chunk_id)
                    self._withdraw_pending(query.message_id, chunk.chunk_id)
            return
        receivers: Set[NodeId] = set()
        matched_queries = []
        for entry in self.lqt.live_entries():
            query = entry.query
            if not isinstance(query, MdrQuery):
                continue
            if query.item != chunk.item_descriptor:
                continue
            chunk_id = chunk.chunk_id
            if chunk_id in query.have_chunk_ids or chunk_id in entry.forwarded_keys:
                continue
            entry.forwarded_keys.add(chunk_id)
            if entry.is_origin:
                continue
            receivers.add(entry.upstream)
            matched_queries.append(query.message_id)
        if not receivers:
            return
        forwarded = response.rewritten(
            sender_id=device.node_id, receiver_ids=frozenset(receivers)
        )
        frame = device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=forwarded.receiver_ids,
            kind="chunk_response",
            reliable=True,
        )
        # Track for late suppression only when the relayed copy serves a
        # single query — withdrawing a multi-query frame could starve the
        # consumer whose duplicate was *not* overheard.
        if len(matched_queries) == 1:
            self._register_pending(matched_queries[0], chunk.chunk_id, frame)
