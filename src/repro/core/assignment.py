"""Load-balanced chunk-to-neighbor assignment (§IV-B, Eq. 1).

Assigning each requested chunk to one neighbor that can reach it, while
minimising the maximum per-neighbor load, is a max-min Generalized
Assignment Problem (NP-hard).  The paper uses a simple heuristic:

1. assign every chunk to a neighbor offering it at the least hop count;
2. repeatedly take the most-loaded neighbor and move one of its chunks to
   another neighbor that can retrieve that chunk at the (possibly next)
   smallest hop count, while this strictly decreases the maximum load;
3. stop when the maximum load no longer decreases.

Load is the hop-weighted sum ``Σ_j d_ij x_ij`` from Eq. 1.  Complexity is
``O(|N| |C|^2)``, acceptable for the ~10 neighbors/chunks per query.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.topology import NodeId

#: For each chunk: the (neighbor, hop_count) options offering it.
ChunkOptions = Dict[int, Sequence[Tuple[NodeId, int]]]


def _load(assignment: Dict[int, Tuple[NodeId, int]], neighbor: NodeId) -> int:
    return sum(hop for (n, hop) in assignment.values() if n == neighbor)


def _initial_assignment(
    options: ChunkOptions,
    rng: Optional[random.Random],
    load_aware: bool,
) -> Tuple[Dict[int, Tuple[NodeId, int]], Dict[NodeId, int]]:
    """Step 1: a least-hop assignment plus its per-neighbor loads.

    ``load_aware`` breaks least-hop ties toward the currently least-loaded
    neighbor; otherwise ties go to the lowest neighbor id (the pure greedy
    baseline of the paper's step 1).
    """
    assignment: Dict[int, Tuple[NodeId, int]] = {}
    per_neighbor_load: Dict[NodeId, int] = {}
    for chunk_id in sorted(options):
        candidates = list(options[chunk_id])
        if not candidates:
            continue
        best_hop = min(hop for _, hop in candidates)
        least = [(n, hop) for n, hop in candidates if hop == best_hop]
        if load_aware:
            least.sort(key=lambda pair: (per_neighbor_load.get(pair[0], 0), pair[0]))
            if rng is not None and len(least) > 1:
                lowest = least[0][0]
                tied = [
                    p
                    for p in least
                    if per_neighbor_load.get(p[0], 0)
                    == per_neighbor_load.get(lowest, 0)
                ]
                choice = rng.choice(tied)
            else:
                choice = least[0]
        else:
            choice = min(least, key=lambda pair: pair[0])
        assignment[chunk_id] = choice
        per_neighbor_load[choice[0]] = per_neighbor_load.get(choice[0], 0) + choice[1]
    return assignment, per_neighbor_load


def _improve(
    assignment: Dict[int, Tuple[NodeId, int]],
    per_neighbor_load: Dict[NodeId, int],
    options: ChunkOptions,
) -> None:
    """Step 2: local moves while the maximum load strictly decreases."""
    for _ in range(len(assignment) * max(1, len(per_neighbor_load))):
        max_neighbor = max(per_neighbor_load, key=lambda n: (per_neighbor_load[n], n))
        max_load = per_neighbor_load[max_neighbor]
        best_move: Optional[Tuple[int, NodeId, int]] = None
        best_new_max = max_load
        for chunk_id, (owner, owner_hop) in assignment.items():
            if owner != max_neighbor:
                continue
            for neighbor, hop in options[chunk_id]:
                if neighbor == max_neighbor:
                    continue
                new_owner_load = per_neighbor_load.get(neighbor, 0) + hop
                new_max_load = max(max_load - owner_hop, new_owner_load)
                if new_max_load < best_new_max:
                    best_new_max = new_max_load
                    best_move = (chunk_id, neighbor, hop)
        if best_move is None:
            break
        chunk_id, neighbor, hop = best_move
        owner, owner_hop = assignment[chunk_id]
        per_neighbor_load[owner] -= owner_hop
        if per_neighbor_load[owner] == 0:
            del per_neighbor_load[owner]
        per_neighbor_load[neighbor] = per_neighbor_load.get(neighbor, 0) + hop
        assignment[chunk_id] = (neighbor, hop)


def assign_chunks(
    options: ChunkOptions,
    rng: Optional[random.Random] = None,
) -> Dict[NodeId, Set[int]]:
    """Assign each chunk to one neighbor, balancing hop-weighted load.

    The local search only ever moves chunks off the *currently* most
    loaded neighbor, so a single start point can plateau above solutions
    a different start reaches trivially.  Running the improvement loop
    from both the load-aware start and the pure least-hop greedy start
    (and keeping the better result) guarantees the outcome is never worse
    than plain greedy while preserving the balanced behaviour.

    Args:
        options: Per-chunk candidate ``(neighbor, hop_count)`` pairs.
            Chunks with no options are skipped (unreachable right now).
        rng: Tie-breaking source; deterministic order when omitted.

    Returns:
        Mapping neighbor → set of chunk ids to request from it.
    """
    assignment, per_neighbor_load = _initial_assignment(options, rng, load_aware=True)
    if not assignment:
        return {}
    _improve(assignment, per_neighbor_load, options)

    baseline, baseline_load = _initial_assignment(options, None, load_aware=False)
    _improve(baseline, baseline_load, options)
    if max(baseline_load.values()) < max(per_neighbor_load.values()):
        assignment = baseline

    result: Dict[NodeId, Set[int]] = {}
    for chunk_id, (neighbor, _) in assignment.items():
        result.setdefault(neighbor, set()).add(chunk_id)
    return result


def max_load(
    options: ChunkOptions, assignment: Dict[NodeId, Set[int]]
) -> int:
    """Hop-weighted maximum per-neighbor load of an assignment (Eq. 1)."""
    loads: Dict[NodeId, int] = {}
    for neighbor, chunk_ids in assignment.items():
        for chunk_id in chunk_ids:
            hop = dict((n, h) for n, h in options[chunk_id])[neighbor]
            loads[neighbor] = loads.get(neighbor, 0) + hop
    return max(loads.values()) if loads else 0


def greedy_max_load(options: ChunkOptions) -> int:
    """Max load of the improved pure-greedy baseline (audit reference).

    :func:`assign_chunks` guarantees its result is never worse than this
    baseline, so any traced assignment exceeding it indicates the balancer
    chose a strictly dominated (e.g. needlessly far) set of copies.
    """
    baseline, baseline_load = _initial_assignment(options, None, load_aware=False)
    if not baseline:
        return 0
    _improve(baseline, baseline_load, options)
    return max(baseline_load.values())
