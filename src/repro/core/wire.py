"""Binary wire codec for PDS protocol messages.

Completes the :mod:`repro.data.codec` stack up to whole messages, so a
deployed PDS can put real datagrams on a real socket.  Chunk *payload
bytes* are elided — the simulation tracks sizes, not content — and are
re-materialised as size-only chunks on decode (a real deployment would
append the payload after the encoded header).

Layout: 1 message-type tag, then the common header (message id, sender,
expiry/flags as needed), then type-specific fields.  Receiver lists are
count-prefixed varints.  Property tests prove exact round-trips for every
message type.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.core.messages import (
    CdiQuery,
    CdiResponse,
    ChunkQuery,
    ChunkResponse,
    DiscoveryQuery,
    DiscoveryResponse,
    MdrQuery,
)
from repro.data.codec import (
    DEFAULT_DICTIONARY,
    AttributeDictionary,
    decode_bloom,
    decode_descriptor,
    decode_query_spec,
    decode_varint,
    decode_zigzag,
    encode_bloom,
    encode_descriptor,
    encode_query_spec,
    encode_varint,
    encode_zigzag,
)
from repro.data.item import Chunk
from repro.errors import DataModelError, ProtocolError

_TAG_DISCOVERY_QUERY = 0x10
_TAG_DISCOVERY_RESPONSE = 0x11
_TAG_CDI_QUERY = 0x12
_TAG_CDI_RESPONSE = 0x13
_TAG_CHUNK_QUERY = 0x14
_TAG_CHUNK_RESPONSE = 0x15
_TAG_MDR_QUERY = 0x16

#: Sentinel for an unbounded (flood) receiver list.
_RECEIVERS_ALL = 0xFFFFFFFF


def _encode_receivers(receivers: Optional[frozenset]) -> bytes:
    if receivers is None:
        return encode_varint(_RECEIVERS_ALL)
    parts = [encode_varint(len(receivers))]
    for node in sorted(receivers):
        parts.append(encode_varint(node))
    return b"".join(parts)


def _decode_receivers(data: bytes, offset: int) -> Tuple[Optional[frozenset], int]:
    count, offset = decode_varint(data, offset)
    if count == _RECEIVERS_ALL:
        return None, offset
    nodes = []
    for _ in range(count):
        node, offset = decode_varint(data, offset)
        nodes.append(node)
    return frozenset(nodes), offset


def _encode_float(value: float) -> bytes:
    return struct.pack("<d", value)


def _decode_float(data: bytes, offset: int) -> Tuple[float, int]:
    if offset + 8 > len(data):
        raise DataModelError("truncated float field")
    return struct.unpack_from("<d", data, offset)[0], offset + 8


def _encode_chunk(chunk: Chunk, dictionary: AttributeDictionary) -> bytes:
    return encode_descriptor(chunk.descriptor, dictionary) + encode_varint(
        chunk.size
    )


def _decode_chunk(
    data: bytes, offset: int, dictionary: AttributeDictionary
) -> Tuple[Chunk, int]:
    descriptor, offset = decode_descriptor(data, offset, dictionary)
    size, offset = decode_varint(data, offset)
    return Chunk(descriptor, size), offset


# ----------------------------------------------------------------------
def encode_message(
    message, dictionary: AttributeDictionary = DEFAULT_DICTIONARY
) -> bytes:
    """Encode any PDS protocol message to bytes."""
    if isinstance(message, DiscoveryQuery):
        return b"".join(
            (
                bytes([_TAG_DISCOVERY_QUERY]),
                encode_varint(message.message_id),
                encode_varint(message.sender_id),
                _encode_receivers(message.receiver_ids),
                encode_zigzag(message.origin_id),
                _encode_float(message.expires_at),
                encode_varint(message.round_index),
                bytes([1 if message.want_payload else 0]),
                encode_varint(message.hop_count),
                encode_query_spec(message.spec, dictionary),
                encode_bloom(message.bloom),
            )
        )
    if isinstance(message, DiscoveryResponse):
        parts = [
            bytes([_TAG_DISCOVERY_RESPONSE]),
            encode_varint(message.message_id),
            encode_varint(message.sender_id),
            _encode_receivers(message.receiver_ids),
            encode_varint(message.round_index),
            encode_varint(len(message.entries)),
        ]
        for entry in message.entries:
            parts.append(encode_descriptor(entry, dictionary))
        parts.append(encode_varint(len(message.payloads)))
        for chunk in message.payloads:
            parts.append(_encode_chunk(chunk, dictionary))
        parts.append(encode_varint(len(message.query_ids)))
        for query_id in message.query_ids:
            parts.append(encode_varint(query_id))
        return b"".join(parts)
    if isinstance(message, CdiQuery):
        return b"".join(
            (
                bytes([_TAG_CDI_QUERY]),
                encode_varint(message.message_id),
                encode_varint(message.sender_id),
                _encode_receivers(message.receiver_ids),
                encode_zigzag(message.origin_id),
                _encode_float(message.expires_at),
                encode_varint(message.hop_count),
                encode_descriptor(message.item, dictionary),
            )
        )
    if isinstance(message, CdiResponse):
        parts = [
            bytes([_TAG_CDI_RESPONSE]),
            encode_varint(message.message_id),
            encode_varint(message.sender_id),
            _encode_receivers(message.receiver_ids),
            encode_descriptor(message.item, dictionary),
            encode_varint(len(message.pairs)),
        ]
        for chunk_id, hop_count in message.pairs:
            parts.append(encode_varint(chunk_id))
            parts.append(encode_varint(hop_count))
        parts.append(encode_varint(len(message.query_ids)))
        for query_id in message.query_ids:
            parts.append(encode_varint(query_id))
        return b"".join(parts)
    if isinstance(message, ChunkQuery):
        parts = [
            bytes([_TAG_CHUNK_QUERY]),
            encode_varint(message.message_id),
            encode_varint(message.sender_id),
            _encode_receivers(message.receiver_ids),
            encode_zigzag(message.origin_id),
            _encode_float(message.expires_at),
            encode_descriptor(message.item, dictionary),
            encode_varint(len(message.chunk_ids)),
        ]
        for chunk_id in sorted(message.chunk_ids):
            parts.append(encode_varint(chunk_id))
        parts.append(encode_varint(message.root_id))
        parts.append(encode_varint(message.parent_id))
        parts.append(encode_varint(message.hop_count))
        return b"".join(parts)
    if isinstance(message, ChunkResponse):
        return b"".join(
            (
                bytes([_TAG_CHUNK_RESPONSE]),
                encode_varint(message.message_id),
                encode_varint(message.sender_id),
                _encode_receivers(message.receiver_ids),
                _encode_chunk(message.chunk, dictionary),
            )
        )
    if isinstance(message, MdrQuery):
        parts = [
            bytes([_TAG_MDR_QUERY]),
            encode_varint(message.message_id),
            encode_varint(message.sender_id),
            _encode_receivers(message.receiver_ids),
            encode_zigzag(message.origin_id),
            _encode_float(message.expires_at),
            encode_varint(message.round_index),
            encode_varint(message.hop_count),
            encode_varint(message.total_chunks),
            encode_descriptor(message.item, dictionary),
        ]
        # have-set as a bitmap, as the wire_size estimate assumes.
        bitmap = bytearray((message.total_chunks + 7) // 8)
        for chunk_id in message.have_chunk_ids:
            if 0 <= chunk_id < message.total_chunks:
                bitmap[chunk_id >> 3] |= 1 << (chunk_id & 7)
        parts.append(bytes(bitmap))
        return b"".join(parts)
    raise ProtocolError(f"cannot encode message of type {type(message).__name__}")


def decode_message(
    data: bytes, dictionary: AttributeDictionary = DEFAULT_DICTIONARY
):
    """Decode bytes produced by :func:`encode_message`."""
    if not data:
        raise ProtocolError("empty message")
    tag = data[0]
    offset = 1
    message_id, offset = decode_varint(data, offset)
    sender_id, offset = decode_varint(data, offset)
    receivers, offset = _decode_receivers(data, offset)

    if tag == _TAG_DISCOVERY_QUERY:
        origin_id, offset = decode_zigzag(data, offset)
        expires_at, offset = _decode_float(data, offset)
        round_index, offset = decode_varint(data, offset)
        want_payload = bool(data[offset])
        offset += 1
        hop_count, offset = decode_varint(data, offset)
        spec, offset = decode_query_spec(data, offset, dictionary)
        bloom, offset = decode_bloom(data, offset)
        return DiscoveryQuery(
            message_id=message_id,
            sender_id=sender_id,
            receiver_ids=receivers,
            spec=spec,
            origin_id=origin_id,
            expires_at=expires_at,
            bloom=bloom,
            round_index=round_index,
            want_payload=want_payload,
            hop_count=hop_count,
        )
    if tag == _TAG_DISCOVERY_RESPONSE:
        round_index, offset = decode_varint(data, offset)
        n_entries, offset = decode_varint(data, offset)
        entries = []
        for _ in range(n_entries):
            descriptor, offset = decode_descriptor(data, offset, dictionary)
            entries.append(descriptor)
        n_payloads, offset = decode_varint(data, offset)
        payloads = []
        for _ in range(n_payloads):
            chunk, offset = _decode_chunk(data, offset, dictionary)
            payloads.append(chunk)
        n_query_ids, offset = decode_varint(data, offset)
        query_ids = []
        for _ in range(n_query_ids):
            query_id, offset = decode_varint(data, offset)
            query_ids.append(query_id)
        return DiscoveryResponse(
            message_id=message_id,
            sender_id=sender_id,
            receiver_ids=receivers,
            entries=tuple(entries),
            payloads=tuple(payloads),
            round_index=round_index,
            query_ids=tuple(query_ids),
        )
    if tag == _TAG_CDI_QUERY:
        origin_id, offset = decode_zigzag(data, offset)
        expires_at, offset = _decode_float(data, offset)
        hop_count, offset = decode_varint(data, offset)
        item, offset = decode_descriptor(data, offset, dictionary)
        return CdiQuery(
            message_id=message_id,
            sender_id=sender_id,
            receiver_ids=receivers,
            item=item,
            origin_id=origin_id,
            expires_at=expires_at,
            hop_count=hop_count,
        )
    if tag == _TAG_CDI_RESPONSE:
        item, offset = decode_descriptor(data, offset, dictionary)
        n_pairs, offset = decode_varint(data, offset)
        pairs = []
        for _ in range(n_pairs):
            chunk_id, offset = decode_varint(data, offset)
            hop_count, offset = decode_varint(data, offset)
            pairs.append((chunk_id, hop_count))
        n_query_ids, offset = decode_varint(data, offset)
        query_ids = []
        for _ in range(n_query_ids):
            query_id, offset = decode_varint(data, offset)
            query_ids.append(query_id)
        return CdiResponse(
            message_id=message_id,
            sender_id=sender_id,
            receiver_ids=receivers,
            item=item,
            pairs=tuple(pairs),
            query_ids=tuple(query_ids),
        )
    if tag == _TAG_CHUNK_QUERY:
        origin_id, offset = decode_zigzag(data, offset)
        expires_at, offset = _decode_float(data, offset)
        item, offset = decode_descriptor(data, offset, dictionary)
        n_ids, offset = decode_varint(data, offset)
        chunk_ids = set()
        for _ in range(n_ids):
            chunk_id, offset = decode_varint(data, offset)
            chunk_ids.add(chunk_id)
        root_id, offset = decode_varint(data, offset)
        parent_id, offset = decode_varint(data, offset)
        hop_count, offset = decode_varint(data, offset)
        return ChunkQuery(
            message_id=message_id,
            sender_id=sender_id,
            receiver_ids=receivers,
            item=item,
            chunk_ids=frozenset(chunk_ids),
            origin_id=origin_id,
            expires_at=expires_at,
            root_id=root_id,
            parent_id=parent_id,
            hop_count=hop_count,
        )
    if tag == _TAG_CHUNK_RESPONSE:
        chunk, offset = _decode_chunk(data, offset, dictionary)
        return ChunkResponse(
            message_id=message_id,
            sender_id=sender_id,
            receiver_ids=receivers,
            chunk=chunk,
        )
    if tag == _TAG_MDR_QUERY:
        origin_id, offset = decode_zigzag(data, offset)
        expires_at, offset = _decode_float(data, offset)
        round_index, offset = decode_varint(data, offset)
        hop_count, offset = decode_varint(data, offset)
        total_chunks, offset = decode_varint(data, offset)
        item, offset = decode_descriptor(data, offset, dictionary)
        n_bytes = (total_chunks + 7) // 8
        if offset + n_bytes > len(data):
            raise DataModelError("truncated have-bitmap")
        have = set()
        for chunk_id in range(total_chunks):
            if data[offset + (chunk_id >> 3)] & (1 << (chunk_id & 7)):
                have.add(chunk_id)
        offset += n_bytes
        return MdrQuery(
            message_id=message_id,
            sender_id=sender_id,
            receiver_ids=receivers,
            item=item,
            total_chunks=total_chunks,
            have_chunk_ids=frozenset(have),
            origin_id=origin_id,
            expires_at=expires_at,
            round_index=round_index,
            hop_count=hop_count,
        )
    raise ProtocolError(f"unknown message tag 0x{tag:02x}")
