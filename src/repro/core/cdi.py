"""Chunk Distribution Information: per-chunk distance-vector state (§IV-A).

A CDI entry says "chunk ``chunk_id`` of item ``item`` can be retrieved via
``neighbor`` at ``hop_count`` hops".  The table keeps, per chunk, only the
entries at the current minimum hop count — multiple entries when several
neighbors offer the same least distance.  Entries expire so obsolete
routing state does not linger after copies move away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.data.descriptor import DataDescriptor
from repro.net.topology import NodeId


@dataclass
class CdiEntry:
    """One routing entry for a chunk."""

    chunk_id: int
    hop_count: int
    neighbor: NodeId
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class CdiTable:
    """Per-item, per-chunk best-distance neighbor sets."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        # item -> chunk_id -> list of best-hop entries
        self._entries: Dict[DataDescriptor, Dict[int, List[CdiEntry]]] = {}

    # ------------------------------------------------------------------
    def update(
        self,
        item: DataDescriptor,
        chunk_id: int,
        hop_count: int,
        neighbor: NodeId,
        ttl: float,
    ) -> bool:
        """Learn that ``chunk_id`` is reachable via ``neighbor``.

        Implements §IV-A's replacement rule: a smaller distance replaces
        existing entries; an equal distance adds the neighbor; a larger
        distance is ignored (but refreshes an existing entry for the same
        neighbor at the same distance).

        Returns:
            True if the table improved (new chunk, smaller hop, or new
            equal-distance neighbor).
        """
        item = item.item_descriptor()
        now = self._clock()
        expires_at = now + ttl
        chunk_map = self._entries.setdefault(item, {})
        entries = [e for e in chunk_map.get(chunk_id, []) if not e.expired(now)]
        if not entries:
            chunk_map[chunk_id] = [CdiEntry(chunk_id, hop_count, neighbor, expires_at)]
            return True
        best = entries[0].hop_count
        if hop_count < best:
            chunk_map[chunk_id] = [CdiEntry(chunk_id, hop_count, neighbor, expires_at)]
            return True
        if hop_count == best:
            for entry in entries:
                if entry.neighbor == neighbor:
                    entry.expires_at = max(entry.expires_at, expires_at)
                    chunk_map[chunk_id] = entries
                    return False
            entries.append(CdiEntry(chunk_id, hop_count, neighbor, expires_at))
            chunk_map[chunk_id] = entries
            return True
        chunk_map[chunk_id] = entries
        return False

    # ------------------------------------------------------------------
    def best_entries(self, item: DataDescriptor, chunk_id: int) -> List[CdiEntry]:
        """Unexpired least-hop entries for a chunk (possibly empty)."""
        item = item.item_descriptor()
        now = self._clock()
        chunk_map = self._entries.get(item)
        if not chunk_map:
            return []
        entries = [e for e in chunk_map.get(chunk_id, []) if not e.expired(now)]
        if entries:
            chunk_map[chunk_id] = entries
        else:
            chunk_map.pop(chunk_id, None)
        return entries

    def best_hop(self, item: DataDescriptor, chunk_id: int) -> Optional[int]:
        """The least known hop count for a chunk, or None."""
        entries = self.best_entries(item, chunk_id)
        return entries[0].hop_count if entries else None

    def known_chunks(self, item: DataDescriptor) -> Set[int]:
        """Chunk ids with at least one live entry for this item."""
        item = item.item_descriptor()
        chunk_map = self._entries.get(item)
        if not chunk_map:
            return set()
        return {
            chunk_id
            for chunk_id in list(chunk_map)
            if self.best_entries(item, chunk_id)
        }

    def remove_neighbor(self, neighbor: NodeId) -> None:
        """Drop all entries via a neighbor known to have left."""
        for chunk_map in self._entries.values():
            for chunk_id in list(chunk_map):
                remaining = [e for e in chunk_map[chunk_id] if e.neighbor != neighbor]
                if remaining:
                    chunk_map[chunk_id] = remaining
                else:
                    del chunk_map[chunk_id]

    def clear(self) -> None:
        """Forget all routing state."""
        self._entries.clear()

    def observe_state(self) -> Dict[str, object]:
        """Flight-recorder view: live entry count + per-chunk best hop.

        Strictly read-only — expired entries are filtered, not dropped,
        so sampling never mutates routing state.  Keys use the same
        ``<item-hex12>:<chunk_id>`` form as the retrieval trace events.
        """
        now = self._clock()
        size = 0
        best: Dict[str, int] = {}
        for item, chunk_map in self._entries.items():
            prefix = item.stable_key().hex()[:12]
            for chunk_id, entries in chunk_map.items():
                live = [e for e in entries if not e.expired(now)]
                if not live:
                    continue
                size += len(live)
                best[f"{prefix}:{chunk_id}"] = min(e.hop_count for e in live)
        return {"size": size, "best": best}
