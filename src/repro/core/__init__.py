"""The PDS protocol core: discovery (PDD), retrieval (PDR), MDR baseline."""

from repro.core.assignment import assign_chunks, max_load
from repro.core.cdi import CdiEntry, CdiTable
from repro.core.consumer import (
    DiscoverySession,
    MdrSession,
    RetrievalSession,
    SessionResult,
)
from repro.core.discovery import DiscoveryEngine
from repro.core.interest import (
    InterestData,
    InterestDiscoverySession,
    InterestEngine,
    InterestQuery,
)
from repro.core.lqt import LingeringEntry, LingeringQueryTable, RecentResponses
from repro.core.mdr import MdrEngine
from repro.core.messages import (
    CdiQuery,
    CdiResponse,
    ChunkQuery,
    ChunkResponse,
    DiscoveryQuery,
    DiscoveryResponse,
    MdrQuery,
    next_message_id,
)
from repro.core.retrieval import CdiEngine, ChunkEngine
from repro.core.subscription import SubscriptionSession
from repro.core.rounds import RoundConfig, RoundController

__all__ = [
    "CdiEngine",
    "CdiEntry",
    "CdiQuery",
    "CdiResponse",
    "CdiTable",
    "ChunkEngine",
    "ChunkQuery",
    "ChunkResponse",
    "DiscoveryEngine",
    "DiscoveryQuery",
    "DiscoveryResponse",
    "DiscoverySession",
    "InterestData",
    "InterestDiscoverySession",
    "InterestEngine",
    "InterestQuery",
    "LingeringEntry",
    "LingeringQueryTable",
    "MdrEngine",
    "MdrQuery",
    "MdrSession",
    "RecentResponses",
    "RetrievalSession",
    "RoundConfig",
    "RoundController",
    "SessionResult",
    "SubscriptionSession",
    "assign_chunks",
    "max_load",
    "next_message_id",
]
