"""Peer Data Retrieval engines (§IV).

Phase 1 — :class:`CdiEngine` builds Chunk Distribution Information on
demand: a CDI query floods like a discovery query; every node holding
chunks or CDI entries of the item answers with ChunkId–HopCount pairs
relative to itself; relays update their own CDI tables (hop+1 via the
transmitting neighbor) and forward improved pairs along reverse paths.

Phase 2 — :class:`ChunkEngine` performs recursive chunk retrieval: a chunk
query directed at one neighbor is answered from the local store where
possible, and the remaining chunk ids are *divided* into sub-queries, each
directed at the nearest (load-balanced) next neighbor per the CDI table.
Chunk responses travel the reverse paths of the queries and are cached
opportunistically along the way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.assignment import assign_chunks
from repro.core.lqt import LingeringEntry, LingeringQueryTable, RecentResponses
from repro.core.messages import (
    CdiQuery,
    CdiResponse,
    ChunkQuery,
    ChunkResponse,
    next_message_id,
)
from repro.data.descriptor import DataDescriptor
from repro.net.topology import NodeId

if TYPE_CHECKING:
    from repro.node.device import Device


def _item_key(item: DataDescriptor) -> str:
    """Compact JSON-safe identifier of an item for trace events."""
    return item.stable_key().hex()[:12]


class CdiEngine:
    """Phase 1: on-demand per-chunk distance-vector construction."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.lqt = LingeringQueryTable(
            clock=lambda: device.sim.now,
            trace=device.sim.trace,
            node=device.node_id,
        )
        self.recent = RecentResponses()

    def observe_state(self) -> dict:
        """Flight-recorder view: live lingering CDI queries (read-only)."""
        return self.lqt.observe_state()

    # ------------------------------------------------------------------
    def issue_query(
        self, item: DataDescriptor, ttl: Optional[float] = None
    ) -> CdiQuery:
        """Flood a CDI query for ``item`` and register it as lingering."""
        device = self.device
        item = item.item_descriptor()
        if ttl is None:
            ttl = device.config.protocol.query_ttl_s
        expires_at = device.sim.now + ttl
        query = CdiQuery(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=None,
            item=item,
            origin_id=device.node_id,
            expires_at=expires_at,
        )
        self.lqt.insert(
            LingeringEntry(
                query=query,
                upstream=device.node_id,
                expires_at=expires_at,
                is_origin=True,
            ),
            query.message_id,
        )
        trace = device.sim.trace
        if trace.enabled:
            trace.emit(
                "query_issued",
                node=device.node_id,
                query_id=query.message_id,
                proto="cdi",
                consumer=device.node_id,
                item=_item_key(item),
                ttl=ttl,
                expires_at=expires_at,
            )
        device.face.send(
            query, query.wire_size(), receivers=None, kind="cdi_query", reliable=True
        )
        return query

    # ------------------------------------------------------------------
    def handle_query(self, query: CdiQuery, addressed: bool) -> None:
        """Answer with local ChunkId-HopCount pairs, then flood onward."""
        device = self.device
        now = device.sim.now
        if self.lqt.exists(query.message_id):
            return
        entry = LingeringEntry(
            query=query, upstream=query.sender_id, expires_at=query.expires_at
        )
        self.lqt.insert(entry, query.message_id)

        pairs = self._local_pairs(query.item)
        if pairs:
            self._emit_response(
                query.item, pairs, frozenset({query.sender_id}), query=query
            )
            for chunk_id, hop in pairs:
                entry.best_hop_sent[chunk_id] = hop

        if not addressed or now >= query.expires_at:
            return
        if not device.may_forward_flood(query.hop_count):
            return
        forwarded = query.rewritten(sender_id=device.node_id, receiver_ids=None)
        trace = device.sim.trace
        if trace.enabled:
            trace.emit(
                "query_forwarded",
                node=device.node_id,
                query_id=query.message_id,
                proto="cdi",
                consumer=query.origin_id,
                hop=forwarded.hop_count,
                expires_at=query.expires_at,
            )
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=None,
            kind="cdi_query",
            reliable=True,
        )

    def _local_pairs(self, item: DataDescriptor) -> List[Tuple[int, int]]:
        """ChunkId–HopCount pairs this node can advertise for ``item``.

        Hop 0 for chunks held locally, otherwise the best CDI-table hop.
        """
        device = self.device
        pairs: Dict[int, int] = {}
        for chunk_id in device.store.chunk_ids_of(item):
            pairs[chunk_id] = 0
        for chunk_id in device.cdi_table.known_chunks(item):
            if chunk_id in pairs:
                continue
            best = device.cdi_table.best_hop(item, chunk_id)
            if best is not None:
                pairs[chunk_id] = best
        return sorted(pairs.items())

    def _emit_response(
        self,
        item: DataDescriptor,
        pairs: List[Tuple[int, int]],
        receivers: FrozenSet[NodeId],
        query: Optional[CdiQuery] = None,
    ) -> None:
        device = self.device
        response = CdiResponse(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=receivers,
            item=item,
            pairs=tuple(pairs),
            query_ids=(query.message_id,) if query is not None else (),
        )
        self.recent.seen_before(response.message_id)
        trace = device.sim.trace
        if trace.enabled:
            trace.emit(
                "response_sent",
                node=device.node_id,
                response_id=response.message_id,
                proto="cdi",
                query_id=query.message_id if query is not None else None,
                consumer=query.origin_id if query is not None else None,
                item=_item_key(item),
                pairs=len(pairs),
                size=response.wire_size(),
            )
        device.face.send(
            response,
            response.wire_size(),
            receivers=receivers,
            kind="cdi_response",
            reliable=True,
        )

    # ------------------------------------------------------------------
    def handle_response(self, response: CdiResponse, addressed: bool) -> None:
        """Learn routes (hop+1 via sender) and relay improved pairs."""
        device = self.device
        if self.recent.seen_before(response.message_id):
            return
        # DS lookup: learn routes (hop+1 via the transmitting neighbor),
        # also from overheard responses.
        ttl = device.config.protocol.cdi_ttl_s
        improved = 0
        for chunk_id, hop_count in response.pairs:
            if device.cdi_table.update(
                response.item, chunk_id, hop_count + 1, response.sender_id, ttl
            ):
                improved += 1
        trace = device.sim.trace
        if trace.enabled and improved:
            trace.emit(
                "cdi_update",
                node=device.node_id,
                item=_item_key(response.item),
                improved=improved,
                pairs=len(response.pairs),
                via=response.sender_id,
            )
        if not addressed:
            return
        # LQT lookup: route improved pairs toward lingering CDI queries.
        out_pairs: Dict[int, int] = {}
        receivers: Set[NodeId] = set()
        matched_query_ids: List[int] = []
        for entry in self.lqt.live_entries():
            query = entry.query
            if not isinstance(query, CdiQuery) or query.item != response.item:
                continue
            if entry.is_origin:
                continue
            entry_pairs = []
            for chunk_id, _ in response.pairs:
                best = self._best_known_hop(response.item, chunk_id)
                if best is None:
                    continue
                prev = entry.best_hop_sent.get(chunk_id)
                if prev is None or best < prev:
                    entry.best_hop_sent[chunk_id] = best
                    entry_pairs.append((chunk_id, best))
            if not entry_pairs:
                continue
            receivers.add(entry.upstream)
            matched_query_ids.append(query.message_id)
            for chunk_id, hop in entry_pairs:
                existing = out_pairs.get(chunk_id)
                out_pairs[chunk_id] = hop if existing is None else min(existing, hop)
        if not receivers or not out_pairs:
            return
        forwarded = response.rewritten(
            sender_id=device.node_id,
            receiver_ids=frozenset(receivers),
            pairs=tuple(sorted(out_pairs.items())),
            query_ids=tuple(matched_query_ids),
        )
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=forwarded.receiver_ids,
            kind="cdi_response",
            reliable=True,
        )

    def _best_known_hop(self, item: DataDescriptor, chunk_id: int) -> Optional[int]:
        device = self.device
        if device.store.has_chunk(item.chunk_descriptor(chunk_id)):
            return 0
        return device.cdi_table.best_hop(item, chunk_id)


class ChunkEngine:
    """Phase 2: recursive, load-balanced chunk retrieval."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.lqt = LingeringQueryTable(
            clock=lambda: device.sim.now,
            trace=device.sim.trace,
            node=device.node_id,
        )
        self.recent = RecentResponses()

    def observe_state(self) -> dict:
        """Flight-recorder view: live lingering chunk queries (read-only)."""
        return self.lqt.observe_state()

    def _emit_assignment(
        self,
        item: DataDescriptor,
        assignment: Dict[NodeId, Set[int]],
        options: Dict[int, List[Tuple[NodeId, int]]],
        requested: int,
        divided: bool,
        query_id: Optional[int] = None,
    ) -> None:
        trace = self.device.sim.trace
        if trace.enabled and assignment:
            # Candidate (neighbor, hop) options and the chosen split ride
            # along so the offline audit can recompute the greedy least-hop
            # baseline and prove the chosen load never exceeds it.
            trace.emit(
                "chunk_assignment",
                node=self.device.node_id,
                item=_item_key(item),
                query_id=query_id,
                requested=requested,
                assigned=sum(len(ids) for ids in assignment.values()),
                neighbors=len(assignment),
                max_per_neighbor=max(len(ids) for ids in assignment.values()),
                divided=divided,
                options={
                    str(cid): [[n, h] for n, h in pairs]
                    for cid, pairs in sorted(options.items())
                },
                assignment={
                    str(n): sorted(ids) for n, ids in sorted(assignment.items())
                },
            )

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def request_chunks(
        self,
        item: DataDescriptor,
        chunk_ids: Set[int],
        ttl: Optional[float] = None,
    ) -> Dict[NodeId, Set[int]]:
        """Assign ``chunk_ids`` to nearest neighbors and send the queries.

        Returns:
            The assignment used (neighbor → chunk ids); chunks with no CDI
            entry are absent and must be retried after CDI refresh.
        """
        device = self.device
        item = item.item_descriptor()
        if ttl is None:
            ttl = device.config.protocol.query_ttl_s
        options = self._options(item, chunk_ids, exclude=None)
        assignment = assign_chunks(options, device.rng)
        self._emit_assignment(
            item, assignment, options, len(chunk_ids), divided=False
        )
        expires_at = device.sim.now + ttl
        trace = device.sim.trace
        for neighbor, ids in assignment.items():
            message_id = next_message_id()
            query = ChunkQuery(
                message_id=message_id,
                sender_id=device.node_id,
                receiver_ids=frozenset({neighbor}),
                item=item,
                chunk_ids=frozenset(ids),
                origin_id=device.node_id,
                expires_at=expires_at,
                root_id=message_id,
            )
            self.lqt.insert(
                LingeringEntry(
                    query=query,
                    upstream=device.node_id,
                    expires_at=expires_at,
                    is_origin=True,
                ),
                query.message_id,
            )
            if trace.enabled:
                trace.emit(
                    "chunk_request",
                    node=device.node_id,
                    query_id=query.message_id,
                    root=query.root_id,
                    parent=None,
                    consumer=device.node_id,
                    neighbor=neighbor,
                    item=_item_key(item),
                    chunks=sorted(ids),
                    expires_at=expires_at,
                )
            device.face.send(
                query,
                query.wire_size(),
                receivers=query.receiver_ids,
                kind="chunk_query",
                reliable=True,
            )
        return assignment

    def _options(
        self,
        item: DataDescriptor,
        chunk_ids: Set[int],
        exclude: Optional[NodeId],
    ) -> Dict[int, List[Tuple[NodeId, int]]]:
        """CDI-table candidates per chunk, optionally excluding a neighbor."""
        device = self.device
        options: Dict[int, List[Tuple[NodeId, int]]] = {}
        for chunk_id in chunk_ids:
            entries = device.cdi_table.best_entries(item, chunk_id)
            candidates = [
                (entry.neighbor, entry.hop_count)
                for entry in entries
                if entry.neighbor != exclude
            ]
            if candidates:
                options[chunk_id] = candidates
        return options

    # ------------------------------------------------------------------
    # Query processing (recursive division)
    # ------------------------------------------------------------------
    def handle_query(self, query: ChunkQuery, addressed: bool) -> None:
        """Serve held chunks; recursively divide the rest per CDI (§IV-B)."""
        device = self.device
        now = device.sim.now
        if self.lqt.exists(query.message_id):
            return
        entry = LingeringEntry(
            query=query, upstream=query.sender_id, expires_at=query.expires_at
        )
        self.lqt.insert(entry, query.message_id)

        if not addressed or now >= query.expires_at:
            # Chunk queries are directed; overhearers only remember them so
            # they can route overheard chunks, never answer or divide.
            return

        # Serve chunks held locally.
        trace = device.sim.trace
        remaining: Set[int] = set()
        served = 0
        for chunk_id in query.chunk_ids:
            chunk = device.store.get_chunk(query.item.chunk_descriptor(chunk_id))
            if chunk is not None:
                entry.forwarded_keys.add(chunk_id)
                served += 1
                self._emit_chunk(chunk, frozenset({query.sender_id}))
            else:
                remaining.add(chunk_id)
        if trace.enabled and served:
            trace.emit(
                "chunk_served",
                node=device.node_id,
                item=_item_key(query.item),
                query_id=query.message_id,
                root=query.root_id or query.message_id,
                parent=query.parent_id or None,
                consumer=query.origin_id,
                served=served,
                requested=len(query.chunk_ids),
            )
        if not remaining:
            return

        # Recursive division of the rest among nearest next neighbors,
        # never back toward the upstream.
        options = self._options(query.item, remaining, exclude=query.sender_id)
        assignment = assign_chunks(options, device.rng)
        self._emit_assignment(
            query.item,
            assignment,
            options,
            len(remaining),
            divided=True,
            query_id=query.message_id,
        )
        for neighbor, ids in assignment.items():
            sub_query = query.divided(
                sender_id=device.node_id,
                receiver=neighbor,
                chunk_ids=frozenset(ids),
            )
            if trace.enabled:
                trace.emit(
                    "chunk_request",
                    node=device.node_id,
                    query_id=sub_query.message_id,
                    root=sub_query.root_id,
                    parent=query.message_id,
                    consumer=query.origin_id,
                    neighbor=neighbor,
                    item=_item_key(query.item),
                    chunks=sorted(ids),
                    expires_at=sub_query.expires_at,
                )
            device.face.send(
                sub_query,
                sub_query.wire_size(),
                receivers=sub_query.receiver_ids,
                kind="chunk_query",
                reliable=True,
            )

    def _emit_chunk(self, chunk, receivers: FrozenSet[NodeId]) -> None:
        device = self.device
        response = ChunkResponse(
            message_id=next_message_id(),
            sender_id=device.node_id,
            receiver_ids=receivers,
            chunk=chunk,
        )
        self.recent.seen_before(response.message_id)
        device.face.send(
            response,
            response.wire_size(),
            receivers=receivers,
            kind="chunk_response",
            reliable=True,
        )

    # ------------------------------------------------------------------
    # Response processing (reverse-path relay + caching)
    # ------------------------------------------------------------------
    def handle_response(self, response: ChunkResponse, addressed: bool) -> None:
        """Cache the chunk and relay it along lingering reverse paths."""
        device = self.device
        if self.recent.seen_before(response.message_id):
            return
        protocol = device.config.protocol
        for_me = self._is_for_me(response)
        if addressed:
            if protocol.cache_relayed_chunks or for_me:
                device.cache_chunk(response.chunk, pin=for_me)
        elif protocol.cache_overheard_chunks:
            device.cache_chunk(response.chunk)
        if for_me and addressed:
            trace = device.sim.trace
            if trace.enabled:
                trace.emit(
                    "chunk_received",
                    node=device.node_id,
                    response_id=response.message_id,
                    item=_item_key(response.chunk.item_descriptor),
                    chunk_id=response.chunk.chunk_id,
                )
        if not addressed:
            return
        chunk = response.chunk
        receivers: Set[NodeId] = set()
        for entry in self.lqt.live_entries():
            query = entry.query
            if not isinstance(query, ChunkQuery):
                continue
            if query.item != chunk.item_descriptor:
                continue
            if chunk.chunk_id not in query.chunk_ids:
                continue
            if chunk.chunk_id in entry.forwarded_keys:
                continue
            entry.forwarded_keys.add(chunk.chunk_id)
            if entry.is_origin:
                continue
            receivers.add(entry.upstream)
        if not receivers:
            return
        forwarded = response.rewritten(
            sender_id=device.node_id, receiver_ids=frozenset(receivers)
        )
        device.face.send(
            forwarded,
            forwarded.wire_size(),
            receivers=forwarded.receiver_ids,
            kind="chunk_response",
            reliable=True,
        )

    def _is_for_me(self, response: ChunkResponse) -> bool:
        chunk = response.chunk
        for entry in self.lqt.live_entries():
            query = entry.query
            if (
                isinstance(query, ChunkQuery)
                and entry.is_origin
                and query.item == chunk.item_descriptor
                and chunk.chunk_id in query.chunk_ids
            ):
                return True
        return False
