"""Consumer-side sessions: the application-facing API of PDS.

* :class:`DiscoverySession` — multi-round PDD (§III): repeatedly floods a
  lingering query, collects metadata entries (or small data items), and
  stops when a round yields (almost) nothing new.
* :class:`RetrievalSession` — two-phase PDR (§IV): gathers CDI, then
  recursively requests chunks from nearest neighbors, with stall-driven
  recovery until every chunk arrived.
* :class:`MdrSession` — the multi-round data retrieval baseline (§VI-B-3).

Sessions attach listeners to their device, track everything needed for the
paper's metrics (recall set, last-new arrival for latency, round count) and
call ``on_complete`` when done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.bloom.bloom_filter import NullFilter, make_round_filter
from repro.core.messages import (
    CdiResponse,
    ChunkResponse,
    DiscoveryResponse,
)
from repro.core.rounds import RoundConfig, RoundController
from repro.data import attributes as attr
from repro.data.descriptor import DataDescriptor
from repro.data.item import Chunk
from repro.data.predicate import QuerySpec
from repro.errors import ConfigurationError
from repro.node.device import Device
from repro.obs.memprof import memory_phase
from repro.sim.process import Timer


@dataclass
class SessionResult:
    """Outcome of one consumer session (inputs to the paper's metrics)."""

    started_at: float
    finished_at: float = 0.0
    last_new_at: Optional[float] = None
    received: int = 0
    rounds: int = 0
    completed: bool = False

    @property
    def latency(self) -> float:
        """Query sent → last new entry/chunk arrival (§VI-A)."""
        if self.last_new_at is None:
            return 0.0
        return self.last_new_at - self.started_at


class DiscoverySession:
    """Multi-round pervasive data discovery for one consumer."""

    def __init__(
        self,
        device: Device,
        spec: Optional[QuerySpec] = None,
        round_config: Optional[RoundConfig] = None,
        want_payload: bool = False,
        redundancy_detection: Optional[bool] = None,
        on_complete: Optional[Callable[["DiscoverySession"], None]] = None,
    ) -> None:
        self.device = device
        self.spec = spec if spec is not None else QuerySpec()
        self.round_config = round_config if round_config is not None else RoundConfig()
        self.want_payload = want_payload
        if redundancy_detection is None:
            redundancy_detection = device.config.protocol.redundancy_detection
        self.redundancy_detection = redundancy_detection
        self.on_complete = on_complete
        self.controller = RoundController(
            device.sim, self.round_config, self._round_ended, node=device.node_id
        )
        self.received: Set[DataDescriptor] = set()
        self.received_payloads: Dict[DataDescriptor, Chunk] = {}
        self.result: Optional[SessionResult] = None
        self._round_new = 0
        self._running = False
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed from the local store and send the first round's query."""
        if self._started:
            raise ConfigurationError("session already started")
        self._started = True
        self._running = True
        memory_phase("discovery")
        device = self.device
        self.result = SessionResult(started_at=device.sim.now)
        device.metadata_listeners.append(self._on_metadata)
        device.chunk_listeners.append(self._on_chunk)
        device.response_listeners.append(self._on_response)
        # Entries already held locally count as received (Fig. 7's last
        # consumer had cached >95% before sending its own query).
        if self.want_payload:
            for chunk in device.store.match_chunks(self.spec):
                self.received.add(chunk.descriptor)
                self.received_payloads[chunk.descriptor] = chunk
        else:
            for descriptor in device.store.match_metadata(self.spec):
                self.received.add(descriptor)
        self._begin_round()

    @property
    def done(self) -> bool:
        """Whether the session has completed."""
        return self._finished

    # ------------------------------------------------------------------
    def _begin_round(self) -> None:
        round_index = self.controller.begin_round()
        self._round_new = 0
        if self.redundancy_detection:
            bloom = make_round_filter(
                (d.stable_key() for d in self.received),
                round_index,
                self.device.config.protocol.bloom_false_positive_rate,
                self.device.config.protocol.bloom_max_bits,
            )
        else:
            bloom = NullFilter()
        self.device.discovery.issue_query(
            self.spec,
            bloom,
            round_index=round_index,
            want_payload=self.want_payload,
        )

    def _round_ended(self) -> None:
        assert self.result is not None
        self.result.rounds = self.controller.round_index
        total = len(self.received)
        if self.controller.should_start_new_round(self._round_new, total):
            self._begin_round()
        else:
            self._finish()

    def _finish(self) -> None:
        assert self.result is not None
        self._running = False
        self._finished = True
        self.controller.stop()
        self.result.finished_at = self.device.sim.now
        self.result.received = len(self.received)
        self.result.completed = True
        self._detach()
        if self.on_complete is not None:
            self.on_complete(self)

    def _detach(self) -> None:
        device = self.device
        for listeners, cb in (
            (device.metadata_listeners, self._on_metadata),
            (device.chunk_listeners, self._on_chunk),
            (device.response_listeners, self._on_response),
        ):
            if cb in listeners:
                listeners.remove(cb)

    # ------------------------------------------------------------------
    def _on_metadata(self, descriptor: DataDescriptor) -> None:
        if self.want_payload or not self._running:
            return
        if descriptor in self.received or not self.spec.matches(descriptor):
            return
        self.received.add(descriptor)
        self._record_new()

    def _on_chunk(self, chunk: Chunk) -> None:
        if not self.want_payload or not self._running:
            return
        if chunk.descriptor in self.received or not self.spec.matches(
            chunk.descriptor
        ):
            return
        self.received.add(chunk.descriptor)
        self.received_payloads[chunk.descriptor] = chunk
        self._record_new()

    def _record_new(self) -> None:
        assert self.result is not None
        self._round_new += 1
        self.result.last_new_at = self.device.sim.now

    def _on_response(self, message: object) -> None:
        if self._running and isinstance(message, DiscoveryResponse):
            self.controller.record_response()


class RetrievalSession:
    """Two-phase PDR for one large data item."""

    def __init__(
        self,
        device: Device,
        item: DataDescriptor,
        total_chunks: Optional[int] = None,
        round_config: Optional[RoundConfig] = None,
        stall_timeout_s: float = 5.0,
        max_attempts: int = 15,
        on_complete: Optional[Callable[["RetrievalSession"], None]] = None,
    ) -> None:
        self.device = device
        self.item = item.item_descriptor()
        if total_chunks is None:
            declared = item.get(attr.TOTAL_CHUNKS)
            if declared is None:
                raise ConfigurationError(
                    "total_chunks not given and item descriptor lacks the "
                    "total_chunks attribute"
                )
            total_chunks = int(declared)
        self.total_chunks = total_chunks
        self.round_config = round_config if round_config is not None else RoundConfig()
        self.stall_timeout_s = stall_timeout_s
        self.max_attempts = max_attempts
        self.on_complete = on_complete
        self.controller = RoundController(
            device.sim, self.round_config, self._cdi_round_ended, node=device.node_id
        )
        self.have: Set[int] = set()
        self.result: Optional[SessionResult] = None
        self.phase = "idle"  # idle -> cdi -> chunks -> done
        self._attempts = 0
        self._stall_timer = Timer(device.sim, self._stalled)
        self._running = False
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin retrieval (phase 1 unless CDI or data already present)."""
        if self._started:
            raise ConfigurationError("session already started")
        self._started = True
        self._running = True
        memory_phase("retrieval")
        device = self.device
        self.result = SessionResult(started_at=device.sim.now)
        device.chunk_listeners.append(self._on_chunk)
        device.response_listeners.append(self._on_response)
        self.have = set(
            cid
            for cid in device.store.chunk_ids_of(self.item)
            if cid < self.total_chunks
        )
        if len(self.have) >= self.total_chunks:
            self._finish(completed=True)
            return
        if self._cdi_covers_missing():
            self._enter_chunk_phase()
        else:
            self._enter_cdi_phase()

    @property
    def done(self) -> bool:
        """Whether the session has completed (fully or given up)."""
        return self._finished

    @property
    def missing(self) -> Set[int]:
        """Chunk ids not yet received."""
        return set(range(self.total_chunks)) - self.have

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _enter_cdi_phase(self) -> None:
        self.phase = "cdi"
        self.controller.begin_round()
        self.device.cdi.issue_query(self.item)

    def _cdi_round_ended(self) -> None:
        if self.phase == "cdi":
            self._enter_chunk_phase()

    def _cdi_covers_missing(self) -> bool:
        table = self.device.cdi_table
        return all(
            table.best_hop(self.item, chunk_id) is not None
            for chunk_id in self.missing
        )

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def _enter_chunk_phase(self) -> None:
        self.phase = "chunks"
        missing = self.missing
        if not missing:
            self._finish(completed=True)
            return
        self.device.chunks.request_chunks(self.item, missing)
        self._stall_timer.start(self.stall_timeout_s)

    def _stalled(self) -> None:
        """No chunk arrived for a while: retry or refresh CDI."""
        if not self._running or self.phase != "chunks":
            return
        missing = self.missing
        if not missing:
            self._finish(completed=True)
            return
        self._attempts += 1
        if self._attempts > self.max_attempts:
            self._finish(completed=False)
            return
        # Every third stall (or when routes are missing) refresh the CDI;
        # otherwise just re-request along current routes.
        if self._attempts % 3 == 0 or not self._cdi_covers_missing():
            self._enter_cdi_phase()
        else:
            self._enter_chunk_phase()

    # ------------------------------------------------------------------
    def _on_chunk(self, chunk: Chunk) -> None:
        if not self._running:
            return
        if chunk.item_descriptor != self.item:
            return
        chunk_id = chunk.chunk_id
        if chunk_id in self.have or chunk_id >= self.total_chunks:
            return
        self.have.add(chunk_id)
        assert self.result is not None
        self.result.last_new_at = self.device.sim.now
        if len(self.have) >= self.total_chunks:
            self._finish(completed=True)
        elif self.phase == "chunks":
            self._stall_timer.start(self.stall_timeout_s)

    def _on_response(self, message: object) -> None:
        if self._running and self.phase == "cdi" and isinstance(message, CdiResponse):
            self.controller.record_response()

    # ------------------------------------------------------------------
    def _finish(self, completed: bool) -> None:
        assert self.result is not None
        self._running = False
        self._finished = True
        self.phase = "done"
        self._stall_timer.cancel()
        self.controller.stop()
        self.result.finished_at = self.device.sim.now
        self.result.received = len(self.have)
        self.result.completed = completed
        self.result.rounds = self._attempts + 1
        device = self.device
        if self._on_chunk in device.chunk_listeners:
            device.chunk_listeners.remove(self._on_chunk)
        if self._on_response in device.response_listeners:
            device.response_listeners.remove(self._on_response)
        if self.on_complete is not None:
            self.on_complete(self)


class MdrSession:
    """Multi-round data retrieval baseline for one large data item."""

    def __init__(
        self,
        device: Device,
        item: DataDescriptor,
        total_chunks: Optional[int] = None,
        round_config: Optional[RoundConfig] = None,
        max_empty_rounds: int = 3,
        on_complete: Optional[Callable[["MdrSession"], None]] = None,
    ) -> None:
        self.device = device
        self.item = item.item_descriptor()
        if total_chunks is None:
            declared = item.get(attr.TOTAL_CHUNKS)
            if declared is None:
                raise ConfigurationError(
                    "total_chunks not given and item descriptor lacks the "
                    "total_chunks attribute"
                )
            total_chunks = int(declared)
        self.total_chunks = total_chunks
        self.round_config = round_config if round_config is not None else RoundConfig()
        self.max_empty_rounds = max_empty_rounds
        self.on_complete = on_complete
        self.controller = RoundController(
            device.sim, self.round_config, self._round_ended, node=device.node_id
        )
        self.have: Set[int] = set()
        self.result: Optional[SessionResult] = None
        self._round_new = 0
        self._empty_rounds = 0
        self._running = False
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the first MDR round."""
        if self._started:
            raise ConfigurationError("session already started")
        self._started = True
        self._running = True
        memory_phase("mdr_retrieval")
        device = self.device
        self.result = SessionResult(started_at=device.sim.now)
        device.chunk_listeners.append(self._on_chunk)
        device.response_listeners.append(self._on_response)
        self.have = set(
            cid
            for cid in device.store.chunk_ids_of(self.item)
            if cid < self.total_chunks
        )
        if len(self.have) >= self.total_chunks:
            self._finish(completed=True)
            return
        self._begin_round()

    @property
    def done(self) -> bool:
        """Whether the session has completed (fully or given up)."""
        return self._finished

    @property
    def missing(self) -> Set[int]:
        """Chunk ids not yet received."""
        return set(range(self.total_chunks)) - self.have

    # ------------------------------------------------------------------
    def _begin_round(self) -> None:
        round_index = self.controller.begin_round()
        self._round_new = 0
        self.device.mdr.issue_round(
            self.item, self.total_chunks, self.have, round_index
        )

    def _round_ended(self) -> None:
        if not self._running:
            return
        assert self.result is not None
        self.result.rounds = self.controller.round_index
        if not self.missing:
            self._finish(completed=True)
            return
        if self._round_new == 0:
            self._empty_rounds += 1
        else:
            self._empty_rounds = 0
        if self._empty_rounds >= self.max_empty_rounds:
            self._finish(completed=False)
            return
        self._begin_round()

    # ------------------------------------------------------------------
    def _on_chunk(self, chunk: Chunk) -> None:
        if not self._running:
            return
        if chunk.item_descriptor != self.item:
            return
        chunk_id = chunk.chunk_id
        if chunk_id in self.have or chunk_id >= self.total_chunks:
            return
        self.have.add(chunk_id)
        self._round_new += 1
        assert self.result is not None
        self.result.last_new_at = self.device.sim.now
        if len(self.have) >= self.total_chunks:
            self._finish(completed=True)

    def _on_response(self, message: object) -> None:
        if self._running and isinstance(message, ChunkResponse):
            self.controller.record_response()

    # ------------------------------------------------------------------
    def _finish(self, completed: bool) -> None:
        assert self.result is not None
        self._running = False
        self._finished = True
        self.controller.stop()
        self.result.finished_at = self.device.sim.now
        self.result.received = len(self.have)
        self.result.completed = completed
        device = self.device
        if self._on_chunk in device.chunk_listeners:
            device.chunk_listeners.remove(self._on_chunk)
        if self._on_response in device.response_listeners:
            device.response_listeners.remove(self._on_response)
        if self.on_complete is not None:
            self.on_complete(self)
