"""Workload generators for the evaluation (§VI-A).

Metadata entries model crowdsensed samples (data type, time, location —
≈30 bytes each in the compact wire coding); large data items are chunked
videos (256 KB chunks).  Entries and chunks are distributed uniformly at
random, with configurable *redundancy* (copies per entry/chunk).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.data import attributes as attr
from repro.data.descriptor import DataDescriptor
from repro.data.item import DEFAULT_CHUNK_SIZE, DataItem
from repro.net.topology import NodeId
from repro.node.device import Device

#: Data types cycled through by the sample generator.
SAMPLE_TYPES = ("nox", "pm25", "noise", "temp")


def sensor_descriptor(index: int) -> DataDescriptor:
    """A compact sample descriptor (~30 B on the wire)."""
    return DataDescriptor(
        {
            attr.NAMESPACE: "env",
            attr.DATA_TYPE: SAMPLE_TYPES[index % len(SAMPLE_TYPES)],
            attr.TIME: float(index),
            attr.LOCATION_X: float(index % 120),
            attr.LOCATION_Y: float((index * 7) % 120),
        }
    )


def generate_metadata(count: int) -> List[DataDescriptor]:
    """``count`` distinct sample descriptors."""
    return [sensor_descriptor(index) for index in range(count)]


def distribute_metadata(
    devices: Dict[NodeId, Device],
    entries: Sequence[DataDescriptor],
    rng: random.Random,
    redundancy: int = 1,
    exclude: Sequence[NodeId] = (),
) -> Dict[DataDescriptor, List[NodeId]]:
    """Place each entry on ``redundancy`` distinct uniform-random nodes.

    Args:
        exclude: Nodes that must not hold initial copies (e.g. consumers
            when measuring pure discovery).

    Returns:
        The placement, for ground-truth checks.
    """
    candidates = [node_id for node_id in devices if node_id not in exclude]
    if not candidates:
        raise ValueError("no nodes left to hold data after exclusions")
    placement: Dict[DataDescriptor, List[NodeId]] = {}
    copies = min(redundancy, len(candidates))
    for entry in entries:
        holders = rng.sample(candidates, copies)
        for node_id in holders:
            devices[node_id].add_metadata(entry)
        placement[entry] = holders
    return placement


def make_video_item(
    size_bytes: int,
    name: str = "festival-clip",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> DataItem:
    """A large shared data item (e.g. a video clip, §VI-B-3)."""
    return DataItem(
        DataDescriptor(
            {
                attr.NAMESPACE: "media",
                attr.DATA_TYPE: "video",
                attr.NAME: name,
            }
        ),
        size=size_bytes,
        chunk_size=chunk_size,
    )


def distribute_chunks(
    devices: Dict[NodeId, Device],
    item: DataItem,
    rng: random.Random,
    redundancy: int = 1,
    exclude: Sequence[NodeId] = (),
) -> Dict[int, List[NodeId]]:
    """Place each chunk of ``item`` on ``redundancy`` uniform-random nodes.

    Returns:
        chunk_id → holder node ids, for ground-truth checks.
    """
    candidates = [node_id for node_id in devices if node_id not in exclude]
    if not candidates:
        raise ValueError("no nodes left to hold chunks after exclusions")
    placement: Dict[int, List[NodeId]] = {}
    copies = min(redundancy, len(candidates))
    for chunk in item.chunks():
        holders = rng.sample(candidates, copies)
        for node_id in holders:
            devices[node_id].add_chunk(chunk)
        placement[chunk.chunk_id] = holders
    return placement


def distribute_small_items(
    devices: Dict[NodeId, Device],
    items: Sequence[DataItem],
    rng: random.Random,
    redundancy: int = 1,
    exclude: Sequence[NodeId] = (),
) -> Dict[DataDescriptor, List[NodeId]]:
    """Place whole small items (single-chunk) with payloads on nodes."""
    placement: Dict[DataDescriptor, List[NodeId]] = {}
    for item in items:
        chunk_placement = distribute_chunks(
            devices, item, rng, redundancy=redundancy, exclude=exclude
        )
        placement[item.descriptor] = chunk_placement.get(0, [])
    return placement
