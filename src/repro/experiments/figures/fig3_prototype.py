"""Figure 3: single-hop reception — raw UDP vs leaky bucket vs +ack.

Paper shape: raw ≈ 10–14% (internal buffer overflow); leaky bucket alone
40–90%, decreasing with concurrent senders; leaky bucket + ack 85–99%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.phone.prototype import MODES, PrototypeConfig, run_prototype

#: Fig. 3 x-axis: concurrent senders to one receiver phone.
DEFAULT_SENDER_COUNTS = (1, 2, 3, 4)


def _trial(point: Dict[str, object], seed: int) -> Dict[str, float]:
    """One seeded prototype run at one (mode, senders) (picklable)."""
    config = PrototypeConfig(
        n_senders=point["n_senders"],
        mode=point["mode"],
        packets_per_sender=point["packets_per_sender"],
    )
    return {"reception": run_prototype(config, seed).reception_rate}


def run(
    sender_counts: Sequence[int] = DEFAULT_SENDER_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    packets_per_sender: int = 6000,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per (mode, sender count) with the mean reception rate."""
    points = [
        {
            "mode": mode,
            "n_senders": n_senders,
            "packets_per_sender": packets_per_sender,
        }
        for mode in MODES
        for n_senders in sender_counts
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['mode']} x{p['n_senders']}",
    )
    rows = []
    for sweep_point in sweep:
        rows.append(
            {
                "mode": sweep_point.point["mode"],
                "senders": sweep_point.point["n_senders"],
                "reception": point_mean(sweep_point, "reception", 3),
            }
        )
    return rows


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 3 — single-hop reception rate (raw / bucket / bucket+ack)",
        ["mode", "senders", "reception"],
        rows,
    )


if __name__ == "__main__":
    print(main())
