"""Figure 3: single-hop reception — raw UDP vs leaky bucket vs +ack.

Paper shape: raw ≈ 10–14% (internal buffer overflow); leaky bucket alone
40–90%, decreasing with concurrent senders; leaky bucket + ack 85–99%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import configured_seeds, render_table
from repro.phone.prototype import MODES, PrototypeConfig, run_prototype

#: Fig. 3 x-axis: concurrent senders to one receiver phone.
DEFAULT_SENDER_COUNTS = (1, 2, 3, 4)


def run(
    sender_counts: Sequence[int] = DEFAULT_SENDER_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    packets_per_sender: int = 6000,
) -> List[Dict[str, object]]:
    """One row per (mode, sender count) with the mean reception rate."""
    if seeds is None:
        seeds = configured_seeds()
    rows = []
    for mode in MODES:
        for n_senders in sender_counts:
            rates = []
            for seed in seeds:
                config = PrototypeConfig(
                    n_senders=n_senders,
                    mode=mode,
                    packets_per_sender=packets_per_sender,
                )
                rates.append(run_prototype(config, seed).reception_rate)
            rows.append(
                {
                    "mode": mode,
                    "senders": n_senders,
                    "reception": round(sum(rates) / len(rates), 3),
                }
            )
    return rows


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 3 — single-hop reception rate (raw / bucket / bucket+ack)",
        ["mode", "senders", "reception"],
        rows,
    )


if __name__ == "__main__":
    print(main())
