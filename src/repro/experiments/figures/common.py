"""Shared drivers for the figure experiments.

Each paper figure varies one knob of two canonical experiments:

* :func:`pdd_experiment` — metadata discovery on a scenario, with one or
  more consumers (single / sequential / simultaneous);
* :func:`retrieval_experiment` — large-item retrieval via PDR or the MDR
  baseline, again with one or more consumers.

Both return per-consumer results plus network totals, from which the
figure modules derive their rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.consumer import (
    DiscoverySession,
    MdrSession,
    RetrievalSession,
    SessionResult,
)
from repro.core.rounds import RoundConfig
from repro.data.item import DataItem
from repro.errors import ConfigurationError
from repro.experiments.metrics import TrialMetrics
from repro.experiments.scenario import Scenario, build_grid_scenario
from repro.experiments.workload import (
    distribute_chunks,
    distribute_metadata,
    generate_metadata,
)
from repro.net.reliability import ReliabilityConfig
from repro.net.radio import RadioConfig
from repro.node.config import DeviceConfig, ProtocolConfig

#: Wall-clock cap (simulated seconds) for any single experiment.
DEFAULT_SIM_CAP_S = 600.0

#: Consumer start modes.
MODES = ("single", "sequential", "simultaneous")


def experiment_device_config(
    ack: bool = True,
    redundancy_detection: bool = True,
) -> DeviceConfig:
    """Multi-hop device config with toggles for the ablation benches."""
    return DeviceConfig(
        protocol=ProtocolConfig(redundancy_detection=redundancy_detection),
        radio=RadioConfig(os_buffer_bytes=8_000_000),
        reliability=ReliabilityConfig(enabled=ack),
    )


@dataclass
class ConsumerOutcome:
    """One consumer's session result plus its overhead window.

    ``overhead_bytes`` attributes the network-wide traffic to consumers
    without double counting: sequential consumers own the bytes between
    their launch and the next launch (or end of run); single/simultaneous
    consumers split the shared window evenly.  Summing over consumers
    always gives the network total.  ``launched`` is False for a
    sequential consumer whose turn never came before the simulation cap —
    its result and overhead are placeholders, not measurements.
    """

    node_id: int
    result: SessionResult
    recall: float
    overhead_bytes: int
    launched: bool = True


@dataclass
class ExperimentOutcome:
    """Everything a figure module needs from one run."""

    consumers: List[ConsumerOutcome]
    total_overhead_bytes: int
    scenario: Scenario

    @property
    def first(self) -> ConsumerOutcome:
        return self.consumers[0]

    def to_trial_metrics(self) -> TrialMetrics:
        """Single-consumer convenience conversion."""
        outcome = self.first
        return TrialMetrics(
            recall=outcome.recall,
            latency_s=outcome.result.latency,
            overhead_bytes=self.total_overhead_bytes,
            rounds=outcome.result.rounds,
            completed=outcome.result.completed,
        )


def _drive_sessions(
    scenario: Scenario,
    sessions: List[object],
    mode: str,
    recall_fn: Callable[[object], float],
    sim_cap_s: float,
    start_at: float = 0.0,
) -> ExperimentOutcome:
    """Start sessions per ``mode`` and run the simulation to completion."""
    if mode not in MODES:
        raise ConfigurationError(f"mode must be one of {MODES}, got {mode}")
    sim = scenario.sim
    stats = scenario.stats
    overhead_marks = {}
    launched = set()

    def launch(index: int) -> None:
        overhead_marks[index] = stats.bytes_sent
        launched.add(index)
        sessions[index].start()

    if mode == "sequential":
        # Chain: each next consumer starts when the previous completes.
        for index, session in enumerate(sessions):
            next_index = index + 1
            if next_index < len(sessions):
                session.on_complete = (
                    lambda s, i=next_index: sim.schedule(0.0, launch, i)
                )
        sim.schedule(start_at, launch, 0)
    else:
        jitter = scenario.rngs.stream("session-jitter")
        for index in range(len(sessions)):
            sim.schedule(start_at + jitter.uniform(0.0, 0.05), launch, index)

    sim.run(until=start_at + sim_cap_s)

    total_bytes = stats.bytes_sent
    per_consumer: dict = {}
    if mode == "sequential":
        # Per-consumer overhead = bytes between this start and the next
        # launch (or end of run).  A consumer whose turn never came before
        # the cap gets 0 and is flagged via ``launched=False`` below.
        marks = [overhead_marks.get(i, total_bytes) for i in range(len(sessions))]
        marks.append(total_bytes)
        for index in range(len(sessions)):
            per_consumer[index] = (
                marks[index + 1] - marks[index] if index in launched else 0
            )
    else:
        # single/simultaneous: every consumer shares the same window, so
        # the network total is split evenly — attributing each byte to
        # exactly one consumer instead of to all of them at once.
        started = [index for index in range(len(sessions)) if index in launched]
        if started:
            share, remainder = divmod(total_bytes, len(started))
            for position, index in enumerate(started):
                per_consumer[index] = share + (1 if position < remainder else 0)

    consumers = []
    for index, session in enumerate(sessions):
        result = session.result
        if result is None:
            result = SessionResult(started_at=sim.now, finished_at=sim.now)
        consumers.append(
            ConsumerOutcome(
                node_id=session.device.node_id,
                result=result,
                recall=recall_fn(session),
                overhead_bytes=per_consumer.get(index, 0),
                launched=index in launched,
            )
        )
    return ExperimentOutcome(
        consumers=consumers,
        total_overhead_bytes=total_bytes,
        scenario=scenario,
    )


# ----------------------------------------------------------------------
# PDD
# ----------------------------------------------------------------------
def pdd_experiment(
    seed: int,
    rows: int = 10,
    cols: int = 10,
    metadata_count: int = 5000,
    redundancy: int = 1,
    round_config: Optional[RoundConfig] = None,
    ack: bool = True,
    redundancy_detection: bool = True,
    n_consumers: int = 1,
    mode: str = "single",
    sim_cap_s: float = DEFAULT_SIM_CAP_S,
    scenario: Optional[Scenario] = None,
    start_at: float = 0.0,
) -> ExperimentOutcome:
    """Metadata discovery on a grid (or a supplied scenario)."""
    if round_config is None:
        round_config = RoundConfig()
    if scenario is None:
        scenario = build_grid_scenario(
            rows=rows,
            cols=cols,
            seed=seed,
            device_config=experiment_device_config(ack, redundancy_detection),
            n_consumers=n_consumers,
        )
    entries = generate_metadata(metadata_count)

    def place() -> None:
        distribute_metadata(
            scenario.devices,
            entries,
            scenario.workload_rng(),
            redundancy=redundancy,
        )

    if start_at > 0:
        # Mobile scenarios warm up before the query; distributing at query
        # time places data on nodes actually present, so recall measures
        # the protocol rather than data that already walked away.
        scenario.sim.at(max(0.0, start_at - 0.5), place)
    else:
        place()
    total = len(entries)

    sessions: List[DiscoverySession] = [
        DiscoverySession(
            scenario.device(node_id),
            round_config=round_config,
            redundancy_detection=redundancy_detection,
        )
        for node_id in scenario.consumers
    ]

    def recall(session: DiscoverySession) -> float:
        return len(session.received) / total if total else 1.0

    return _drive_sessions(scenario, sessions, mode, recall, sim_cap_s, start_at)


# ----------------------------------------------------------------------
# PDR / MDR
# ----------------------------------------------------------------------
def retrieval_experiment(
    seed: int,
    item: DataItem,
    method: str = "pdr",
    rows: int = 10,
    cols: int = 10,
    redundancy: int = 1,
    round_config: Optional[RoundConfig] = None,
    n_consumers: int = 1,
    mode: str = "single",
    sim_cap_s: float = DEFAULT_SIM_CAP_S,
    scenario: Optional[Scenario] = None,
    start_at: float = 0.0,
) -> ExperimentOutcome:
    """Large-item retrieval on a grid (or a supplied scenario)."""
    if method not in ("pdr", "mdr"):
        raise ConfigurationError(f"method must be pdr or mdr, got {method}")
    if round_config is None:
        # MDR rounds deliver 256 KB chunks whose service time under load
        # far exceeds the metadata-tuned 1 s window; a round that ends
        # while chunks are still in flight re-floods, every cached copy
        # re-serves, and the duplicate traffic snowballs.  Scale the
        # silence window with the number of chunks in flight.
        if method == "pdr":
            round_config = RoundConfig()
        else:
            item_chunks = item.total_chunks
            round_config = RoundConfig(window_s=max(8.0, 0.25 * item_chunks))
    if scenario is None:
        scenario = build_grid_scenario(
            rows=rows,
            cols=cols,
            seed=seed,
            device_config=experiment_device_config(),
            n_consumers=n_consumers,
        )
    def place() -> None:
        distribute_chunks(
            scenario.devices,
            item,
            scenario.workload_rng(),
            redundancy=redundancy,
            exclude=scenario.consumers,
        )

    if start_at > 0:
        scenario.sim.at(max(0.0, start_at - 0.5), place)
    else:
        place()
    total = item.total_chunks

    sessions: List[object] = []
    for node_id in scenario.consumers:
        if method == "pdr":
            sessions.append(
                RetrievalSession(
                    scenario.device(node_id),
                    item.descriptor,
                    total_chunks=total,
                    round_config=round_config,
                )
            )
        else:
            sessions.append(
                MdrSession(
                    scenario.device(node_id),
                    item.descriptor,
                    total_chunks=total,
                    round_config=round_config,
                )
            )

    def recall(session: object) -> float:
        return len(session.have) / total if total else 1.0

    return _drive_sessions(scenario, sessions, mode, recall, sim_cap_s, start_at)
