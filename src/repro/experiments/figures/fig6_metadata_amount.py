"""Figure 6: multi-round PDD vs metadata amount (normal → stress load).

Paper shape: recall stays 100% from 5,000 to 20,000 entries; latency
grows sublinearly 5.6 s → 11.2 s; overhead grows ≈linearly 5.13 MB →
22.21 MB.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep

DEFAULT_AMOUNTS = (5000, 10000, 15000, 20000)


def _trial(point: Dict[str, int], seed: int) -> Dict[str, float]:
    """One seeded run at one metadata amount (module-level: picklable)."""
    outcome = pdd_experiment(
        seed,
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        metadata_count=point["amount"],
        round_config=RoundConfig(),
        sim_cap_s=240.0,
    )
    return {
        "recall": outcome.first.recall,
        "latency_s": outcome.first.result.latency,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
        "rounds": outcome.first.result.rounds,
    }


def run(
    amounts: Sequence[int] = DEFAULT_AMOUNTS,
    seeds: Optional[Sequence[int]] = None,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per metadata amount with the best controller parameters."""
    points = [{"amount": amount, "rows_cols": rows_cols} for amount in amounts]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['amount']} entries",
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "entries": sweep_point.point["amount"],
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
                "rounds": point_mean(sweep_point, "rounds", 1),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 6 — multi-round PDD vs metadata amount",
        ["entries", "recall", "latency_s", "overhead_mb", "rounds"],
        rows,
    )


if __name__ == "__main__":
    print(main())
