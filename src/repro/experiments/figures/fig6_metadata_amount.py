"""Figure 6: multi-round PDD vs metadata amount (normal → stress load).

Paper shape: recall stays 100% from 5,000 to 20,000 entries; latency
grows sublinearly 5.6 s → 11.2 s; overhead grows ≈linearly 5.13 MB →
22.21 MB.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import configured_seeds, render_table

DEFAULT_AMOUNTS = (5000, 10000, 15000, 20000)


def run(
    amounts: Sequence[int] = DEFAULT_AMOUNTS,
    seeds: Optional[Sequence[int]] = None,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """One row per metadata amount with the best controller parameters."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    for amount in amounts:
        recalls, latencies, overheads, rounds = [], [], [], []
        for seed in seeds:
            outcome = pdd_experiment(
                seed,
                rows=rows_cols,
                cols=rows_cols,
                metadata_count=amount,
                round_config=RoundConfig(),
                sim_cap_s=240.0,
            )
            recalls.append(outcome.first.recall)
            latencies.append(outcome.first.result.latency)
            overheads.append(outcome.total_overhead_bytes / 1e6)
            rounds.append(outcome.first.result.rounds)
        n = len(seeds)
        table.append(
            {
                "entries": amount,
                "recall": round(sum(recalls) / n, 3),
                "latency_s": round(sum(latencies) / n, 2),
                "overhead_mb": round(sum(overheads) / n, 2),
                "rounds": round(sum(rounds) / n, 1),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 6 — multi-round PDD vs metadata amount",
        ["entries", "recall", "latency_s", "overhead_mb", "rounds"],
        rows,
    )


if __name__ == "__main__":
    print(main())
