"""§VI-B preamble: single-round PDD saturation scan (no ack).

Paper shape: without ack/retransmission, a single round's recall sits
around 0.35 (one copy) / 0.55 (two copies) and degrades past ≈10,000
total entries — motivating 5,000 entries as the normal load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import configured_seeds, render_table

DEFAULT_AMOUNTS = (2500, 5000, 10000, 20000)
DEFAULT_REDUNDANCIES = (1, 2)


def run(
    amounts: Sequence[int] = DEFAULT_AMOUNTS,
    redundancies: Sequence[int] = DEFAULT_REDUNDANCIES,
    seeds: Optional[Sequence[int]] = None,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """Recall of one round, no ack, per (amount, redundancy)."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    single_round = RoundConfig(max_rounds=1)
    for redundancy in redundancies:
        for amount in amounts:
            recalls = []
            for seed in seeds:
                outcome = pdd_experiment(
                    seed,
                    rows=rows_cols,
                    cols=rows_cols,
                    metadata_count=amount,
                    redundancy=redundancy,
                    round_config=single_round,
                    ack=False,
                    redundancy_detection=True,
                    sim_cap_s=120.0,
                )
                recalls.append(outcome.first.recall)
            table.append(
                {
                    "entries": amount,
                    "redundancy": redundancy,
                    "recall": round(sum(recalls) / len(recalls), 3),
                }
            )
    return table


def main() -> str:
    """Render the saturation table."""
    rows = run()
    return render_table(
        "§VI-B — single-round PDD (no ack): recall vs metadata amount",
        ["entries", "redundancy", "recall"],
        rows,
    )


if __name__ == "__main__":
    print(main())
