"""§VI-B preamble: single-round PDD saturation scan (no ack).

Paper shape: without ack/retransmission, a single round's recall sits
around 0.35 (one copy) / 0.55 (two copies) and degrades past ≈10,000
total entries — motivating 5,000 entries as the normal load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep

DEFAULT_AMOUNTS = (2500, 5000, 10000, 20000)
DEFAULT_REDUNDANCIES = (1, 2)


def _trial(point: Dict[str, int], seed: int) -> Dict[str, float]:
    """One seeded single-round PDD run, no ack (module-level: picklable)."""
    outcome = pdd_experiment(
        seed,
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        metadata_count=point["amount"],
        redundancy=point["redundancy"],
        round_config=RoundConfig(max_rounds=1),
        ack=False,
        redundancy_detection=True,
        sim_cap_s=120.0,
    )
    return {"recall": outcome.first.recall}


def run(
    amounts: Sequence[int] = DEFAULT_AMOUNTS,
    redundancies: Sequence[int] = DEFAULT_REDUNDANCIES,
    seeds: Optional[Sequence[int]] = None,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Recall of one round, no ack, per (amount, redundancy)."""
    points = [
        {"amount": amount, "redundancy": redundancy, "rows_cols": rows_cols}
        for redundancy in redundancies
        for amount in amounts
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['amount']} entries r={p['redundancy']}",
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "entries": sweep_point.point["amount"],
                "redundancy": sweep_point.point["redundancy"],
                "recall": point_mean(sweep_point, "recall", 3),
            }
        )
    return table


def main() -> str:
    """Render the saturation table."""
    rows = run()
    return render_table(
        "§VI-B — single-round PDD (no ack): recall vs metadata amount",
        ["entries", "redundancy", "recall"],
        rows,
    )


if __name__ == "__main__":
    print(main())
