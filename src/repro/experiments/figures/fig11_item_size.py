"""Figure 11: PDR latency and overhead vs data item size.

Paper shape: recall 100% for all sizes; latency and overhead grow
≈linearly from 8.2 s / 4.83 MB at 1 MB to 46.1 s / 54.22 MB at 20 MB;
overhead is ≈2–3× the item size (chunks travel several hops).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import configured_seeds, render_table
from repro.experiments.workload import make_video_item

MB = 1024 * 1024
DEFAULT_SIZES = (1 * MB, 5 * MB, 10 * MB, 20 * MB)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Optional[Sequence[int]] = None,
    rows_cols: int = 10,
    redundancy: int = 1,
) -> List[Dict[str, object]]:
    """One row per item size: recall, latency, overhead, overhead ratio."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    for size in sizes:
        recalls, latencies, overheads = [], [], []
        for seed in seeds:
            item = make_video_item(size)
            outcome = retrieval_experiment(
                seed,
                item,
                method="pdr",
                rows=rows_cols,
                cols=rows_cols,
                redundancy=redundancy,
                sim_cap_s=600.0,
            )
            recalls.append(outcome.first.recall)
            latencies.append(outcome.first.result.latency)
            overheads.append(outcome.total_overhead_bytes / 1e6)
        n = len(seeds)
        mean_overhead = sum(overheads) / n
        table.append(
            {
                "size_mb": round(size / MB, 1),
                "recall": round(sum(recalls) / n, 3),
                "latency_s": round(sum(latencies) / n, 2),
                "overhead_mb": round(mean_overhead, 2),
                "overhead_ratio": round(mean_overhead / (size / 1e6), 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 11 — PDR vs data item size",
        ["size_mb", "recall", "latency_s", "overhead_mb", "overhead_ratio"],
        rows,
    )


if __name__ == "__main__":
    print(main())
