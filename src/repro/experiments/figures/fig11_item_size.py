"""Figure 11: PDR latency and overhead vs data item size.

Paper shape: recall 100% for all sizes; latency and overhead grow
≈linearly from 8.2 s / 4.83 MB at 1 MB to 46.1 s / 54.22 MB at 20 MB;
overhead is ≈2–3× the item size (chunks travel several hops).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.experiments.workload import make_video_item

MB = 1024 * 1024
DEFAULT_SIZES = (1 * MB, 5 * MB, 10 * MB, 20 * MB)


def _trial(point: Dict[str, int], seed: int) -> Dict[str, float]:
    """One seeded retrieval at one item size (module-level: picklable)."""
    item = make_video_item(point["size"])
    outcome = retrieval_experiment(
        seed,
        item,
        method="pdr",
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        redundancy=point["redundancy"],
        sim_cap_s=600.0,
    )
    return {
        "recall": outcome.first.recall,
        "latency_s": outcome.first.result.latency,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Optional[Sequence[int]] = None,
    rows_cols: int = 10,
    redundancy: int = 1,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per item size: recall, latency, overhead, overhead ratio."""
    points = [
        {"size": size, "rows_cols": rows_cols, "redundancy": redundancy}
        for size in sizes
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['size'] // MB} MB",
    )
    table = []
    for sweep_point in sweep:
        size = sweep_point.point["size"]
        mean_overhead = point_mean(sweep_point, "overhead_mb")
        table.append(
            {
                "size_mb": round(size / MB, 1),
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": round(mean_overhead, 2),
                "overhead_ratio": round(mean_overhead / (size / 1e6), 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 11 — PDR vs data item size",
        ["size_mb", "recall", "latency_s", "overhead_mb", "overhead_ratio"],
        rows,
    )


if __name__ == "__main__":
    print(main())
