"""Figure 7: PDD with multiple *sequential* consumers.

Paper shape: every consumer reaches ≈100% recall; latency shrinks for
later consumers (5–7 s for the first two, then 4.8 s, 3.2 s, and only
0.2 s for the last, which had already cached >95% of entries through
overhearing).  Overhead follows the same trend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import configured_seeds, render_table


def run(
    n_consumers: int = 5,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """One row per consumer position (1st..nth), averaged over seeds."""
    if seeds is None:
        seeds = configured_seeds()
    per_position: Dict[int, Dict[str, List[float]]] = {
        index: {"recall": [], "latency": [], "overhead": []}
        for index in range(n_consumers)
    }
    for seed in seeds:
        outcome = pdd_experiment(
            seed,
            rows=rows_cols,
            cols=rows_cols,
            metadata_count=metadata_count,
            round_config=RoundConfig(),
            n_consumers=n_consumers,
            mode="sequential",
            sim_cap_s=400.0,
        )
        for index, consumer in enumerate(outcome.consumers):
            per_position[index]["recall"].append(consumer.recall)
            per_position[index]["latency"].append(consumer.result.latency)
            per_position[index]["overhead"].append(consumer.overhead_bytes / 1e6)
    table = []
    for index in range(n_consumers):
        data = per_position[index]
        n = len(data["recall"])
        table.append(
            {
                "consumer": index + 1,
                "recall": round(sum(data["recall"]) / n, 3),
                "latency_s": round(sum(data["latency"]) / n, 2),
                "overhead_mb": round(sum(data["overhead"]) / n, 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 7 — PDD with sequential consumers",
        ["consumer", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
