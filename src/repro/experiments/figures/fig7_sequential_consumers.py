"""Figure 7: PDD with multiple *sequential* consumers.

Paper shape: every consumer reaches ≈100% recall; latency shrinks for
later consumers (5–7 s for the first two, then 4.8 s, 3.2 s, and only
0.2 s for the last, which had already cached >95% of entries through
overhearing).  Overhead follows the same trend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import render_table, run_sweep


def _trial(point: Dict[str, int], seed: int) -> List[Dict[str, float]]:
    """One seeded run; returns one dict per consumer position."""
    outcome = pdd_experiment(
        seed,
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        metadata_count=point["metadata_count"],
        round_config=RoundConfig(),
        n_consumers=point["n_consumers"],
        mode="sequential",
        sim_cap_s=400.0,
    )
    return [
        {
            "recall": consumer.recall,
            "latency": consumer.result.latency,
            "overhead": consumer.overhead_bytes / 1e6,
        }
        for consumer in outcome.consumers
    ]


def run(
    n_consumers: int = 5,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per consumer position (1st..nth), averaged over seeds."""
    point = {
        "n_consumers": n_consumers,
        "metadata_count": metadata_count,
        "rows_cols": rows_cols,
    }
    sweep = run_sweep(
        _trial,
        [point],
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['n_consumers']} sequential",
    )
    per_seed = sweep[0].results
    table = []
    for index in range(n_consumers):
        recalls = [consumers[index]["recall"] for consumers in per_seed]
        latencies = [consumers[index]["latency"] for consumers in per_seed]
        overheads = [consumers[index]["overhead"] for consumers in per_seed]
        n = len(recalls)
        table.append(
            {
                "consumer": index + 1,
                "recall": round(sum(recalls) / n, 3) if n else float("nan"),
                "latency_s": round(sum(latencies) / n, 2) if n else float("nan"),
                "overhead_mb": round(sum(overheads) / n, 2) if n else float("nan"),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 7 — PDD with sequential consumers",
        ["consumer", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
