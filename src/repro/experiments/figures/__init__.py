"""One module per figure/table of the paper's evaluation.

``REGISTRY`` maps experiment ids (as used in DESIGN.md/EXPERIMENTS.md)
to their modules; every module exposes ``run(...) -> list[dict]`` and
``main() -> str`` (a rendered table).
"""

from repro.experiments.figures import (
    fig3_prototype,
    fig4_grid_size,
    fig5_round_params,
    fig6_metadata_amount,
    fig7_sequential_consumers,
    fig8_simultaneous_consumers,
    fig9_10_mobility_pdd,
    fig11_item_size,
    fig12_mobility_pdr,
    fig13_14_redundancy,
    fig15_sequential_pdr,
    fig16_simultaneous_pdr,
    leaky_bucket_params,
    retransmission_params,
    saturation,
)

REGISTRY = {
    "fig3": fig3_prototype,
    "lbparams": leaky_bucket_params,
    "retrparams": retransmission_params,
    "saturation": saturation,
    "fig4": fig4_grid_size,
    "fig5": fig5_round_params,
    "fig6": fig6_metadata_amount,
    "fig7": fig7_sequential_consumers,
    "fig8": fig8_simultaneous_consumers,
    "fig9_10": fig9_10_mobility_pdd,
    "fig11": fig11_item_size,
    "fig12": fig12_mobility_pdr,
    "fig13_14": fig13_14_redundancy,
    "fig15": fig15_sequential_pdr,
    "fig16": fig16_simultaneous_pdr,
}

__all__ = ["REGISTRY"]
