"""Figure 5: multi-round PDD recall vs window T, for T_d ∈ {0, 0.3}.

Paper shape (T_r = 0): recall rises with T and stabilises once T reaches
0.6–0.8 s; T_d = 0 reaches recall ≈ 1 while T_d = 0.3 stops early
(≈0.95); smaller T_d costs more rounds, latency and overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import configured_seeds, render_table

DEFAULT_WINDOWS = (0.2, 0.4, 0.6, 0.8, 1.0)
DEFAULT_TDS = (0.0, 0.3)


def run(
    windows: Sequence[float] = DEFAULT_WINDOWS,
    tds: Sequence[float] = DEFAULT_TDS,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """One row per (T, T_d): recall, latency, overhead, rounds."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    for td in tds:
        for window in windows:
            recalls, latencies, overheads, rounds = [], [], [], []
            for seed in seeds:
                outcome = pdd_experiment(
                    seed,
                    rows=rows_cols,
                    cols=rows_cols,
                    metadata_count=metadata_count,
                    round_config=RoundConfig(
                        window_s=window, stop_ratio=0.0, continue_ratio=td
                    ),
                    sim_cap_s=180.0,
                )
                recalls.append(outcome.first.recall)
                latencies.append(outcome.first.result.latency)
                overheads.append(outcome.total_overhead_bytes / 1e6)
                rounds.append(outcome.first.result.rounds)
            n = len(seeds)
            table.append(
                {
                    "T_s": window,
                    "T_d": td,
                    "recall": round(sum(recalls) / n, 3),
                    "latency_s": round(sum(latencies) / n, 2),
                    "overhead_mb": round(sum(overheads) / n, 2),
                    "rounds": round(sum(rounds) / n, 1),
                }
            )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 5 — multi-round PDD: recall vs T and T_d (T_r = 0)",
        ["T_s", "T_d", "recall", "latency_s", "overhead_mb", "rounds"],
        rows,
    )


if __name__ == "__main__":
    print(main())
