"""Figure 5: multi-round PDD recall vs window T, for T_d ∈ {0, 0.3}.

Paper shape (T_r = 0): recall rises with T and stabilises once T reaches
0.6–0.8 s; T_d = 0 reaches recall ≈ 1 while T_d = 0.3 stops early
(≈0.95); smaller T_d costs more rounds, latency and overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep

DEFAULT_WINDOWS = (0.2, 0.4, 0.6, 0.8, 1.0)
DEFAULT_TDS = (0.0, 0.3)


def _trial(point: Dict[str, object], seed: int) -> Dict[str, float]:
    """One seeded run at one (T, T_d) point (module-level: picklable)."""
    outcome = pdd_experiment(
        seed,
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        metadata_count=point["metadata_count"],
        round_config=RoundConfig(
            window_s=point["window"], stop_ratio=0.0, continue_ratio=point["td"]
        ),
        sim_cap_s=180.0,
    )
    return {
        "recall": outcome.first.recall,
        "latency_s": outcome.first.result.latency,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
        "rounds": outcome.first.result.rounds,
    }


def run(
    windows: Sequence[float] = DEFAULT_WINDOWS,
    tds: Sequence[float] = DEFAULT_TDS,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per (T, T_d): recall, latency, overhead, rounds."""
    points = [
        {
            "window": window,
            "td": td,
            "metadata_count": metadata_count,
            "rows_cols": rows_cols,
        }
        for td in tds
        for window in windows
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"T={p['window']} Td={p['td']}",
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "T_s": sweep_point.point["window"],
                "T_d": sweep_point.point["td"],
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
                "rounds": point_mean(sweep_point, "rounds", 1),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 5 — multi-round PDD: recall vs T and T_d (T_r = 0)",
        ["T_s", "T_d", "recall", "latency_s", "overhead_mb", "rounds"],
        rows,
    )


if __name__ == "__main__":
    print(main())
