"""Figures 13–14: PDR vs MDR as chunk redundancy grows.

Paper shape (20 MB item): both reach 100% recall.  With a single copy MDR
is slightly *better* (10.7 s / 51.34 MB vs PDR's 13.5 s / 54.22 MB — no
CDI phase to pay for).  As redundancy grows 1→5, MDR's latency/overhead
rise almost linearly (27.6 s / 94.23 MB at 5 — duplicates on different
reverse paths), while PDR stays flat or slightly *decreases*
(11.9 s / 45.98 MB — the nearest copy gets closer).  The crossover is the
headline result of the two-phase design.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import configured_seeds, render_table
from repro.experiments.workload import make_video_item

MB = 1024 * 1024
DEFAULT_REDUNDANCIES = (1, 2, 3, 4, 5)


def run(
    redundancies: Sequence[int] = DEFAULT_REDUNDANCIES,
    seeds: Optional[Sequence[int]] = None,
    item_size: int = 20 * MB,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """One row per (method, redundancy)."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    for method in ("pdr", "mdr"):
        for redundancy in redundancies:
            recalls, latencies, overheads = [], [], []
            for seed in seeds:
                item = make_video_item(item_size)
                outcome = retrieval_experiment(
                    seed,
                    item,
                    method=method,
                    rows=rows_cols,
                    cols=rows_cols,
                    redundancy=redundancy,
                    sim_cap_s=600.0,
                )
                recalls.append(outcome.first.recall)
                latencies.append(outcome.first.result.latency)
                overheads.append(outcome.total_overhead_bytes / 1e6)
            n = len(seeds)
            table.append(
                {
                    "method": method,
                    "redundancy": redundancy,
                    "recall": round(sum(recalls) / n, 3),
                    "latency_s": round(sum(latencies) / n, 2),
                    "overhead_mb": round(sum(overheads) / n, 2),
                }
            )
    return table


def main() -> str:
    """Render the figures' table."""
    rows = run()
    return render_table(
        "Figs. 13-14 — PDR vs MDR under chunk redundancy (20 MB item)",
        ["method", "redundancy", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
