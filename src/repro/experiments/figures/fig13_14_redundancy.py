"""Figures 13–14: PDR vs MDR as chunk redundancy grows.

Paper shape (20 MB item): both reach 100% recall.  With a single copy MDR
is slightly *better* (10.7 s / 51.34 MB vs PDR's 13.5 s / 54.22 MB — no
CDI phase to pay for).  As redundancy grows 1→5, MDR's latency/overhead
rise almost linearly (27.6 s / 94.23 MB at 5 — duplicates on different
reverse paths), while PDR stays flat or slightly *decreases*
(11.9 s / 45.98 MB — the nearest copy gets closer).  The crossover is the
headline result of the two-phase design.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.experiments.workload import make_video_item

MB = 1024 * 1024
DEFAULT_REDUNDANCIES = (1, 2, 3, 4, 5)


def _trial(point: Dict[str, object], seed: int) -> Dict[str, float]:
    """One seeded retrieval at one (method, redundancy) (picklable)."""
    item = make_video_item(point["item_size"])
    outcome = retrieval_experiment(
        seed,
        item,
        method=point["method"],
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        redundancy=point["redundancy"],
        sim_cap_s=600.0,
    )
    return {
        "recall": outcome.first.recall,
        "latency_s": outcome.first.result.latency,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
    }


def run(
    redundancies: Sequence[int] = DEFAULT_REDUNDANCIES,
    seeds: Optional[Sequence[int]] = None,
    item_size: int = 20 * MB,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per (method, redundancy)."""
    points = [
        {
            "method": method,
            "redundancy": redundancy,
            "item_size": item_size,
            "rows_cols": rows_cols,
        }
        for method in ("pdr", "mdr")
        for redundancy in redundancies
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['method']} r={p['redundancy']}",
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "method": sweep_point.point["method"],
                "redundancy": sweep_point.point["redundancy"],
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
            }
        )
    return table


def main() -> str:
    """Render the figures' table."""
    rows = run()
    return render_table(
        "Figs. 13-14 — PDR vs MDR under chunk redundancy (20 MB item)",
        ["method", "redundancy", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
