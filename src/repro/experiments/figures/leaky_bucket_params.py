"""§V-4 parameter exploration: LeakingRate and BucketCapacity.

Paper shape: as LeakingRate grows 1→5 Mbps reception stays high (>97%)
then drops once the rate exceeds what the radio can broadcast; a large
BucketCapacity also lowers reception by overestimating the OS buffer.
Best balance: 300 KB capacity, 4.5 Mbps leak rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.net.leaky_bucket import LeakyBucketConfig
from repro.phone.prototype import PrototypeConfig, run_prototype

#: LeakingRate sweep (bps), §V-4 explores 1–5 Mbps; we extend past the MAC
#: rate to show the cliff.
DEFAULT_LEAK_RATES = (1e6, 2e6, 3e6, 4e6, 4.5e6, 5e6, 6.5e6, 8e6)

#: BucketCapacity sweep (bytes).
DEFAULT_CAPACITIES = (
    100 * 1024,
    300 * 1024,
    600 * 1024,
    1200 * 1024,
    2400 * 1024,
)


def _trial(point: Dict[str, object], seed: int) -> Dict[str, float]:
    """One seeded bucket-mode prototype run (module-level: picklable)."""
    config = PrototypeConfig(
        n_senders=point["n_senders"],
        mode="bucket",
        packets_per_sender=point["packets_per_sender"],
        bucket=LeakyBucketConfig(
            capacity_bytes=point["capacity_bytes"],
            leak_rate_bps=point["leak_rate_bps"],
        ),
    )
    return {"reception": run_prototype(config, seed).reception_rate}


def run(
    leak_rates: Sequence[float] = DEFAULT_LEAK_RATES,
    capacities: Sequence[int] = DEFAULT_CAPACITIES,
    seeds: Optional[Sequence[int]] = None,
    packets_per_sender: int = 4000,
    n_senders: int = 2,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Two sweeps: reception vs leak rate (at 300 KB) and vs capacity
    (at 4.5 Mbps), with concurrent senders so contention matters."""
    points = [
        {
            "sweep": "leak_rate",
            "capacity_bytes": 300 * 1024,
            "leak_rate_bps": leak_rate,
            "n_senders": n_senders,
            "packets_per_sender": packets_per_sender,
        }
        for leak_rate in leak_rates
    ]
    points += [
        {
            "sweep": "capacity",
            "capacity_bytes": capacity,
            "leak_rate_bps": 4.5e6,
            "n_senders": n_senders,
            "packets_per_sender": packets_per_sender,
        }
        for capacity in capacities
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: (
            f"{p['sweep']} {p['leak_rate_bps'] / 1e6:g}Mbps"
            f"/{p['capacity_bytes'] // 1024}KB"
        ),
    )
    rows = []
    for sweep_point in sweep:
        point = sweep_point.point
        rows.append(
            {
                "sweep": point["sweep"],
                "leak_mbps": round(point["leak_rate_bps"] / 1e6, 1),
                "capacity_kb": point["capacity_bytes"] // 1024,
                "reception": point_mean(sweep_point, "reception", 3),
            }
        )
    return rows


def main() -> str:
    """Render the sweep tables."""
    rows = run()
    return render_table(
        "§V-4 — leaky bucket parameter exploration (reception rate)",
        ["sweep", "leak_mbps", "capacity_kb", "reception"],
        rows,
    )


if __name__ == "__main__":
    print(main())
