"""§V-4 parameter exploration: LeakingRate and BucketCapacity.

Paper shape: as LeakingRate grows 1→5 Mbps reception stays high (>97%)
then drops once the rate exceeds what the radio can broadcast; a large
BucketCapacity also lowers reception by overestimating the OS buffer.
Best balance: 300 KB capacity, 4.5 Mbps leak rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import configured_seeds, render_table
from repro.net.leaky_bucket import LeakyBucketConfig
from repro.phone.prototype import PrototypeConfig, run_prototype

#: LeakingRate sweep (bps), §V-4 explores 1–5 Mbps; we extend past the MAC
#: rate to show the cliff.
DEFAULT_LEAK_RATES = (1e6, 2e6, 3e6, 4e6, 4.5e6, 5e6, 6.5e6, 8e6)

#: BucketCapacity sweep (bytes).
DEFAULT_CAPACITIES = (
    100 * 1024,
    300 * 1024,
    600 * 1024,
    1200 * 1024,
    2400 * 1024,
)


def run(
    leak_rates: Sequence[float] = DEFAULT_LEAK_RATES,
    capacities: Sequence[int] = DEFAULT_CAPACITIES,
    seeds: Optional[Sequence[int]] = None,
    packets_per_sender: int = 4000,
    n_senders: int = 2,
) -> List[Dict[str, object]]:
    """Two sweeps: reception vs leak rate (at 300 KB) and vs capacity
    (at 4.5 Mbps), with concurrent senders so contention matters."""
    if seeds is None:
        seeds = configured_seeds()
    rows = []
    for leak_rate in leak_rates:
        rates = []
        for seed in seeds:
            config = PrototypeConfig(
                n_senders=n_senders,
                mode="bucket",
                packets_per_sender=packets_per_sender,
                bucket=LeakyBucketConfig(
                    capacity_bytes=300 * 1024, leak_rate_bps=leak_rate
                ),
            )
            rates.append(run_prototype(config, seed).reception_rate)
        rows.append(
            {
                "sweep": "leak_rate",
                "leak_mbps": round(leak_rate / 1e6, 1),
                "capacity_kb": 300,
                "reception": round(sum(rates) / len(rates), 3),
            }
        )
    for capacity in capacities:
        rates = []
        for seed in seeds:
            config = PrototypeConfig(
                n_senders=n_senders,
                mode="bucket",
                packets_per_sender=packets_per_sender,
                bucket=LeakyBucketConfig(
                    capacity_bytes=capacity, leak_rate_bps=4.5e6
                ),
            )
            rates.append(run_prototype(config, seed).reception_rate)
        rows.append(
            {
                "sweep": "capacity",
                "leak_mbps": 4.5,
                "capacity_kb": capacity // 1024,
                "reception": round(sum(rates) / len(rates), 3),
            }
        )
    return rows


def main() -> str:
    """Render the sweep tables."""
    rows = run()
    return render_table(
        "§V-4 — leaky bucket parameter exploration (reception rate)",
        ["sweep", "leak_mbps", "capacity_kb", "reception"],
        rows,
    )


if __name__ == "__main__":
    print(main())
