"""§V-4 parameter exploration: RetrTimeout and MaxRetrTime.

Paper shape (two concurrent senders → one receiver): reception improves
with both knobs and plateaus beyond ≈0.2 s RetrTimeout and ≈4 retries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import configured_seeds, render_table
from repro.net.reliability import ReliabilityConfig
from repro.phone.prototype import PrototypeConfig, run_prototype

DEFAULT_TIMEOUTS = (0.05, 0.1, 0.2, 0.3, 0.4)
DEFAULT_MAX_RETRIES = (0, 1, 2, 4, 6)


def run(
    timeouts: Sequence[float] = DEFAULT_TIMEOUTS,
    max_retries: Sequence[int] = DEFAULT_MAX_RETRIES,
    seeds: Optional[Sequence[int]] = None,
    packets_per_sender: int = 4000,
    n_senders: int = 2,
) -> List[Dict[str, object]]:
    """Two sweeps with the other knob held at the paper's best value."""
    if seeds is None:
        seeds = configured_seeds()
    rows = []
    for timeout in timeouts:
        rates = []
        for seed in seeds:
            config = PrototypeConfig(
                n_senders=n_senders,
                mode="bucket_ack",
                packets_per_sender=packets_per_sender,
                reliability=ReliabilityConfig(
                    retr_timeout_s=timeout, max_retransmissions=4
                ),
            )
            rates.append(run_prototype(config, seed).reception_rate)
        rows.append(
            {
                "sweep": "retr_timeout",
                "timeout_s": timeout,
                "max_retr": 4,
                "reception": round(sum(rates) / len(rates), 3),
            }
        )
    for retries in max_retries:
        rates = []
        for seed in seeds:
            config = PrototypeConfig(
                n_senders=n_senders,
                mode="bucket_ack",
                packets_per_sender=packets_per_sender,
                reliability=ReliabilityConfig(
                    retr_timeout_s=0.2, max_retransmissions=retries
                ),
            )
            rates.append(run_prototype(config, seed).reception_rate)
        rows.append(
            {
                "sweep": "max_retr",
                "timeout_s": 0.2,
                "max_retr": retries,
                "reception": round(sum(rates) / len(rates), 3),
            }
        )
    return rows


def main() -> str:
    """Render the sweep tables."""
    rows = run()
    return render_table(
        "§V-4 — ack/retransmission parameter exploration (reception rate)",
        ["sweep", "timeout_s", "max_retr", "reception"],
        rows,
    )


if __name__ == "__main__":
    print(main())
