"""§V-4 parameter exploration: RetrTimeout and MaxRetrTime.

Paper shape (two concurrent senders → one receiver): reception improves
with both knobs and plateaus beyond ≈0.2 s RetrTimeout and ≈4 retries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.net.reliability import ReliabilityConfig
from repro.phone.prototype import PrototypeConfig, run_prototype

DEFAULT_TIMEOUTS = (0.05, 0.1, 0.2, 0.3, 0.4)
DEFAULT_MAX_RETRIES = (0, 1, 2, 4, 6)


def _trial(point: Dict[str, object], seed: int) -> Dict[str, float]:
    """One seeded bucket+ack prototype run (module-level: picklable)."""
    config = PrototypeConfig(
        n_senders=point["n_senders"],
        mode="bucket_ack",
        packets_per_sender=point["packets_per_sender"],
        reliability=ReliabilityConfig(
            retr_timeout_s=point["retr_timeout_s"],
            max_retransmissions=point["max_retransmissions"],
        ),
    )
    return {"reception": run_prototype(config, seed).reception_rate}


def run(
    timeouts: Sequence[float] = DEFAULT_TIMEOUTS,
    max_retries: Sequence[int] = DEFAULT_MAX_RETRIES,
    seeds: Optional[Sequence[int]] = None,
    packets_per_sender: int = 4000,
    n_senders: int = 2,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Two sweeps with the other knob held at the paper's best value."""
    points = [
        {
            "sweep": "retr_timeout",
            "retr_timeout_s": timeout,
            "max_retransmissions": 4,
            "n_senders": n_senders,
            "packets_per_sender": packets_per_sender,
        }
        for timeout in timeouts
    ]
    points += [
        {
            "sweep": "max_retr",
            "retr_timeout_s": 0.2,
            "max_retransmissions": retries,
            "n_senders": n_senders,
            "packets_per_sender": packets_per_sender,
        }
        for retries in max_retries
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: (
            f"{p['sweep']} t={p['retr_timeout_s']}"
            f" r={p['max_retransmissions']}"
        ),
    )
    rows = []
    for sweep_point in sweep:
        point = sweep_point.point
        rows.append(
            {
                "sweep": point["sweep"],
                "timeout_s": point["retr_timeout_s"],
                "max_retr": point["max_retransmissions"],
                "reception": point_mean(sweep_point, "reception", 3),
            }
        )
    return rows


def main() -> str:
    """Render the sweep tables."""
    rows = run()
    return render_table(
        "§V-4 — ack/retransmission parameter exploration (reception rate)",
        ["sweep", "timeout_s", "max_retr", "reception"],
        rows,
    )


if __name__ == "__main__":
    print(main())
