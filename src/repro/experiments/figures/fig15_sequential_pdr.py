"""Figure 15: PDR with multiple *sequential* consumers.

Paper shape (20 MB item): recall 100% for every consumer; latency drops
46.1 s → 38.1 s from the 1st to the 5th consumer and overhead drops
sharply 54.22 MB → 23.11 MB, because chunks cached during earlier
retrievals sit much closer to later consumers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import configured_seeds, render_table
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def run(
    n_consumers: int = 5,
    seeds: Optional[Sequence[int]] = None,
    item_size: int = 20 * MB,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """One row per consumer position, averaged over seeds."""
    if seeds is None:
        seeds = configured_seeds()
    per_position: Dict[int, Dict[str, List[float]]] = {
        index: {"recall": [], "latency": [], "overhead": []}
        for index in range(n_consumers)
    }
    for seed in seeds:
        item = make_video_item(item_size)
        outcome = retrieval_experiment(
            seed,
            item,
            method="pdr",
            rows=rows_cols,
            cols=rows_cols,
            redundancy=1,
            n_consumers=n_consumers,
            mode="sequential",
            sim_cap_s=1200.0,
        )
        for index, consumer in enumerate(outcome.consumers):
            per_position[index]["recall"].append(consumer.recall)
            per_position[index]["latency"].append(consumer.result.latency)
            per_position[index]["overhead"].append(consumer.overhead_bytes / 1e6)
    table = []
    for index in range(n_consumers):
        data = per_position[index]
        n = len(data["recall"])
        table.append(
            {
                "consumer": index + 1,
                "recall": round(sum(data["recall"]) / n, 3),
                "latency_s": round(sum(data["latency"]) / n, 2),
                "overhead_mb": round(sum(data["overhead"]) / n, 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 15 — PDR with sequential consumers (20 MB item)",
        ["consumer", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
