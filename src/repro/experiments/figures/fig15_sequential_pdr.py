"""Figure 15: PDR with multiple *sequential* consumers.

Paper shape (20 MB item): recall 100% for every consumer; latency drops
46.1 s → 38.1 s from the 1st to the 5th consumer and overhead drops
sharply 54.22 MB → 23.11 MB, because chunks cached during earlier
retrievals sit much closer to later consumers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import render_table, run_sweep
from repro.experiments.workload import make_video_item

MB = 1024 * 1024


def _trial(point: Dict[str, int], seed: int) -> List[Dict[str, float]]:
    """One seeded run; returns one dict per consumer position."""
    item = make_video_item(point["item_size"])
    outcome = retrieval_experiment(
        seed,
        item,
        method="pdr",
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        redundancy=1,
        n_consumers=point["n_consumers"],
        mode="sequential",
        sim_cap_s=1200.0,
    )
    return [
        {
            "recall": consumer.recall,
            "latency": consumer.result.latency,
            "overhead": consumer.overhead_bytes / 1e6,
        }
        for consumer in outcome.consumers
    ]


def run(
    n_consumers: int = 5,
    seeds: Optional[Sequence[int]] = None,
    item_size: int = 20 * MB,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per consumer position, averaged over seeds."""
    point = {
        "n_consumers": n_consumers,
        "item_size": item_size,
        "rows_cols": rows_cols,
    }
    sweep = run_sweep(
        _trial,
        [point],
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['n_consumers']} sequential pdr",
    )
    per_seed = sweep[0].results
    table = []
    for index in range(n_consumers):
        recalls = [consumers[index]["recall"] for consumers in per_seed]
        latencies = [consumers[index]["latency"] for consumers in per_seed]
        overheads = [consumers[index]["overhead"] for consumers in per_seed]
        n = len(recalls)
        table.append(
            {
                "consumer": index + 1,
                "recall": round(sum(recalls) / n, 3) if n else float("nan"),
                "latency_s": round(sum(latencies) / n, 2) if n else float("nan"),
                "overhead_mb": round(sum(overheads) / n, 2) if n else float("nan"),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 15 — PDR with sequential consumers (20 MB item)",
        ["consumer", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
