"""Figure 12: PDR under real-world mobility (student center).

A 20 MB item retrieved while people join, leave and move.  Paper shape:
latency stays roughly flat (42–48 s) across 0.5×–2× mobility scaling;
overhead 24–27 MB; recall always 100%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.experiments.scenario import build_campus_scenario
from repro.experiments.workload import make_video_item
from repro.mobility.campus import STUDENT_CENTER, CampusScenario

MB = 1024 * 1024
DEFAULT_SCALES = (0.5, 1.0, 1.5, 2.0)
QUERY_START_S = 20.0


def _trial(point: Dict[str, object], seed: int) -> Dict[str, float]:
    """One seeded mobile retrieval at one frequency scale (picklable)."""
    scenario = build_campus_scenario(
        point["spec"],
        seed=seed,
        frequency_scale=point["scale"],
        duration_s=point["duration_s"],
    )
    item = make_video_item(point["item_size"])
    outcome = retrieval_experiment(
        seed,
        item,
        method="pdr",
        redundancy=point["redundancy"],
        scenario=scenario,
        start_at=QUERY_START_S,
        sim_cap_s=point["duration_s"] - QUERY_START_S,
    )
    return {
        "recall": outcome.first.recall,
        "latency_s": outcome.first.result.latency,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
    }


def run(
    scales: Sequence[float] = DEFAULT_SCALES,
    seeds: Optional[Sequence[int]] = None,
    item_size: int = 20 * MB,
    scenario_spec: CampusScenario = STUDENT_CENTER,
    redundancy: int = 2,
    duration_s: float = 240.0,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> List[Dict[str, object]]:
    """One row per mobility scale: recall, latency, overhead.

    Redundancy 2 by default: with single copies a leaving node can carry
    away the only copy of a chunk, which the paper's scenario avoids by
    having copies cached during prior sharing.

    ``store`` (default: the ``REPRO_STORE`` env knob / ``--store``) makes
    the sweep durable and resumable; the scenario spec dataclass is part
    of each trial's content address, so different specs never collide.
    """
    points = [
        {
            "spec": scenario_spec,
            "scale": scale,
            "item_size": item_size,
            "redundancy": redundancy,
            "duration_s": duration_s,
        }
        for scale in scales
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['spec'].name} x{p['scale']}",
        store=store,
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "scenario": scenario_spec.name,
                "mobility_scale": sweep_point.point["scale"],
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 12 — PDR under mobility (student center, 20 MB item)",
        ["scenario", "mobility_scale", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
