"""Figure 4: single-round PDD recall vs network radius.

Grids from 3×3 to 11×11 (max hop count 1–5 from the central consumer),
keeping the average load at 50 entries per node.  Paper shape: recall
drops 100% → 72.3% as hops grow 1 → 5; latency/overhead grow from
0.3 s / 0.04 MB to 3.5 s / 1.71 MB.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import configured_seeds, render_table, scale_factor
from repro.obs.profile import active_profiler

DEFAULT_GRID_SIZES = (3, 5, 7, 9, 11)

#: §VI-B-1: "We keep the average metadata entries at each node to 50".
ENTRIES_PER_NODE = 50


def run(
    grid_sizes: Sequence[int] = DEFAULT_GRID_SIZES,
    seeds: Optional[Sequence[int]] = None,
    entries_per_node: int = ENTRIES_PER_NODE,
) -> List[Dict[str, object]]:
    """One row per grid size: recall, latency, overhead of one round."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    single_round = RoundConfig(max_rounds=1)
    profiler = active_profiler()
    for size in grid_sizes:
        recalls, latencies, overheads = [], [], []
        for seed in seeds:
            labelled = (
                profiler.label(f"{size}x{size} seed {seed}")
                if profiler is not None
                else nullcontext()
            )
            with labelled:
                outcome = pdd_experiment(
                    seed,
                    rows=size,
                    cols=size,
                    metadata_count=entries_per_node * size * size,
                    round_config=single_round,
                    ack=True,
                    sim_cap_s=120.0,
                )
            recalls.append(outcome.first.recall)
            latencies.append(outcome.first.result.latency)
            overheads.append(outcome.total_overhead_bytes / 1e6)
        n = len(seeds)
        table.append(
            {
                "grid": f"{size}x{size}",
                "max_hops": (size - 1) // 2 if size > 1 else 0,
                "recall": round(sum(recalls) / n, 3),
                "latency_s": round(sum(latencies) / n, 2),
                "overhead_mb": round(sum(overheads) / n, 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table (honours ``REPRO_SCALE`` / ``--scale``)."""
    entries = max(10, round(ENTRIES_PER_NODE * scale_factor()))
    rows = run(entries_per_node=entries)
    return render_table(
        "Fig. 4 — single-round PDD (with ack) vs grid size",
        ["grid", "max_hops", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
