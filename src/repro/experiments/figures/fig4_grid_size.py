"""Figure 4: single-round PDD recall vs network radius.

Grids from 3×3 to 11×11 (max hop count 1–5 from the central consumer),
keeping the average load at 50 entries per node.  Paper shape: recall
drops 100% → 72.3% as hops grow 1 → 5; latency/overhead grow from
0.3 s / 0.04 MB to 3.5 s / 1.71 MB.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import (
    point_mean,
    render_table,
    run_sweep,
    scale_factor,
)

DEFAULT_GRID_SIZES = (3, 5, 7, 9, 11)

#: §VI-B-1: "We keep the average metadata entries at each node to 50".
ENTRIES_PER_NODE = 50


def _trial(point: Dict[str, int], seed: int) -> Dict[str, float]:
    """One seeded run at one grid size (module-level: pool-picklable)."""
    size = point["size"]
    outcome = pdd_experiment(
        seed,
        rows=size,
        cols=size,
        metadata_count=point["entries_per_node"] * size * size,
        round_config=RoundConfig(max_rounds=1),
        ack=True,
        sim_cap_s=120.0,
    )
    return {
        "recall": outcome.first.recall,
        "latency_s": outcome.first.result.latency,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
    }


def run(
    grid_sizes: Sequence[int] = DEFAULT_GRID_SIZES,
    seeds: Optional[Sequence[int]] = None,
    entries_per_node: int = ENTRIES_PER_NODE,
    jobs: Optional[int] = None,
    store: Optional[object] = None,
) -> List[Dict[str, object]]:
    """One row per grid size: recall, latency, overhead of one round.

    ``store`` (default: the ``REPRO_STORE`` env knob / ``--store``) makes
    the sweep durable and resumable; ``entries_per_node`` is scale-baked
    into each point before keying, so trials at different ``--scale``
    values never collide in the store.
    """
    points = [
        {"size": size, "entries_per_node": entries_per_node}
        for size in grid_sizes
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['size']}x{p['size']}",
        store=store,
    )
    table = []
    for sweep_point in sweep:
        size = sweep_point.point["size"]
        table.append(
            {
                "grid": f"{size}x{size}",
                "max_hops": (size - 1) // 2 if size > 1 else 0,
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table (honours ``REPRO_SCALE`` / ``--scale``)."""
    entries = max(10, round(ENTRIES_PER_NODE * scale_factor()))
    rows = run(entries_per_node=entries)
    return render_table(
        "Fig. 4 — single-round PDD (with ack) vs grid size",
        ["grid", "max_hops", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
