"""Figures 9–10: PDD under real-world mobility (student center).

Mobility traces are generated from the paper's 8-hour observations and
the join/leave/move frequencies are scaled 0.5×–2×.  Paper shape: recall
stays ≈100% and latency within ≈2 s (overhead within ≈3 MB) across the
whole range; the classroom scenario behaves similarly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import configured_seeds, render_table
from repro.experiments.scenario import build_campus_scenario
from repro.mobility.campus import CLASSROOMS, STUDENT_CENTER, CampusScenario

DEFAULT_SCALES = (0.5, 1.0, 1.5, 2.0)

#: Discovery starts after the trace has run for a while, so joins/leaves
#: have already perturbed the initial placement.
QUERY_START_S = 20.0


def run(
    scales: Sequence[float] = DEFAULT_SCALES,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    scenario_spec: CampusScenario = STUDENT_CENTER,
    duration_s: float = 120.0,
) -> List[Dict[str, object]]:
    """One row per mobility scale: recall, latency, overhead."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    for scale in scales:
        recalls, latencies, overheads = [], [], []
        for seed in seeds:
            scenario = build_campus_scenario(
                scenario_spec,
                seed=seed,
                frequency_scale=scale,
                duration_s=duration_s,
            )
            outcome = pdd_experiment(
                seed,
                metadata_count=metadata_count,
                round_config=RoundConfig(),
                scenario=scenario,
                start_at=QUERY_START_S,
                sim_cap_s=duration_s - QUERY_START_S,
            )
            recalls.append(outcome.first.recall)
            latencies.append(outcome.first.result.latency)
            overheads.append(outcome.total_overhead_bytes / 1e6)
        n = len(seeds)
        table.append(
            {
                "scenario": scenario_spec.name,
                "mobility_scale": scale,
                "recall": round(sum(recalls) / n, 3),
                "latency_s": round(sum(latencies) / n, 2),
                "overhead_mb": round(sum(overheads) / n, 2),
            }
        )
    return table


def run_both_locations(
    scales: Sequence[float] = DEFAULT_SCALES,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
) -> List[Dict[str, object]]:
    """Student center (Figs. 9–10) plus the classroom variant."""
    rows = run(scales, seeds, metadata_count, STUDENT_CENTER)
    rows += run(scales, seeds, metadata_count, CLASSROOMS)
    return rows


def main() -> str:
    """Render the figures' table."""
    rows = run_both_locations()
    return render_table(
        "Figs. 9-10 — PDD under mobility (student center & classrooms)",
        ["scenario", "mobility_scale", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
