"""Figures 9–10: PDD under real-world mobility (student center).

Mobility traces are generated from the paper's 8-hour observations and
the join/leave/move frequencies are scaled 0.5×–2×.  Paper shape: recall
stays ≈100% and latency within ≈2 s (overhead within ≈3 MB) across the
whole range; the classroom scenario behaves similarly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.experiments.scenario import build_campus_scenario
from repro.mobility.campus import CLASSROOMS, STUDENT_CENTER, CampusScenario

DEFAULT_SCALES = (0.5, 1.0, 1.5, 2.0)

#: Discovery starts after the trace has run for a while, so joins/leaves
#: have already perturbed the initial placement.
QUERY_START_S = 20.0

def _trial(point: Dict[str, object], seed: int) -> Dict[str, float]:
    """One seeded mobile run at one frequency scale (picklable)."""
    scenario = build_campus_scenario(
        point["spec"],  # CampusScenario is a plain dataclass: picklable
        seed=seed,
        frequency_scale=point["scale"],
        duration_s=point["duration_s"],
    )
    outcome = pdd_experiment(
        seed,
        metadata_count=point["metadata_count"],
        round_config=RoundConfig(),
        scenario=scenario,
        start_at=QUERY_START_S,
        sim_cap_s=point["duration_s"] - QUERY_START_S,
    )
    return {
        "recall": outcome.first.recall,
        "latency_s": outcome.first.result.latency,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
    }


def run(
    scales: Sequence[float] = DEFAULT_SCALES,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    scenario_spec: CampusScenario = STUDENT_CENTER,
    duration_s: float = 120.0,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per mobility scale: recall, latency, overhead."""
    points = [
        {
            "spec": scenario_spec,
            "scale": scale,
            "metadata_count": metadata_count,
            "duration_s": duration_s,
        }
        for scale in scales
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['spec'].name} x{p['scale']}",
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "scenario": scenario_spec.name,
                "mobility_scale": sweep_point.point["scale"],
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
            }
        )
    return table


def run_both_locations(
    scales: Sequence[float] = DEFAULT_SCALES,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Student center (Figs. 9–10) plus the classroom variant."""
    rows = run(scales, seeds, metadata_count, STUDENT_CENTER, jobs=jobs)
    rows += run(scales, seeds, metadata_count, CLASSROOMS, jobs=jobs)
    return rows


def main() -> str:
    """Render the figures' table."""
    rows = run_both_locations()
    return render_table(
        "Figs. 9-10 — PDD under mobility (student center & classrooms)",
        ["scenario", "mobility_scale", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
