"""Figure 8: PDD with multiple *simultaneous* consumers.

Paper shape: recall stays 100%; per-consumer latency grows sublinearly
with the number of consumers and stabilises — one mixedcast transmission
serves several lingering queries at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep

DEFAULT_CONSUMER_COUNTS = (1, 2, 3, 4, 5)


def _trial(point: Dict[str, int], seed: int) -> Dict[str, float]:
    """One seeded run at one consumer count (module-level: picklable)."""
    outcome = pdd_experiment(
        seed,
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        metadata_count=point["metadata_count"],
        round_config=RoundConfig(),
        n_consumers=point["count"],
        mode="simultaneous",
        sim_cap_s=300.0,
    )
    n = len(outcome.consumers)
    return {
        "recall": sum(c.recall for c in outcome.consumers) / n,
        "latency_s": sum(c.result.latency for c in outcome.consumers) / n,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
    }


def run(
    consumer_counts: Sequence[int] = DEFAULT_CONSUMER_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per consumer count: mean per-consumer recall/latency."""
    points = [
        {"count": count, "metadata_count": metadata_count, "rows_cols": rows_cols}
        for count in consumer_counts
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['count']} simultaneous",
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "consumers": sweep_point.point["count"],
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 8 — PDD with simultaneous consumers",
        ["consumers", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
