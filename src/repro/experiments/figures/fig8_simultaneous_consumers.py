"""Figure 8: PDD with multiple *simultaneous* consumers.

Paper shape: recall stays 100%; per-consumer latency grows sublinearly
with the number of consumers and stabilises — one mixedcast transmission
serves several lingering queries at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.rounds import RoundConfig
from repro.experiments.figures.common import pdd_experiment
from repro.experiments.runner import configured_seeds, render_table

DEFAULT_CONSUMER_COUNTS = (1, 2, 3, 4, 5)


def run(
    consumer_counts: Sequence[int] = DEFAULT_CONSUMER_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    metadata_count: int = 5000,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """One row per consumer count: mean per-consumer recall/latency."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    for count in consumer_counts:
        recalls, latencies, overheads = [], [], []
        for seed in seeds:
            outcome = pdd_experiment(
                seed,
                rows=rows_cols,
                cols=rows_cols,
                metadata_count=metadata_count,
                round_config=RoundConfig(),
                n_consumers=count,
                mode="simultaneous",
                sim_cap_s=300.0,
            )
            recalls.append(
                sum(c.recall for c in outcome.consumers) / len(outcome.consumers)
            )
            latencies.append(
                sum(c.result.latency for c in outcome.consumers)
                / len(outcome.consumers)
            )
            overheads.append(outcome.total_overhead_bytes / 1e6)
        n = len(seeds)
        table.append(
            {
                "consumers": count,
                "recall": round(sum(recalls) / n, 3),
                "latency_s": round(sum(latencies) / n, 2),
                "overhead_mb": round(sum(overheads) / n, 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 8 — PDD with simultaneous consumers",
        ["consumers", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
