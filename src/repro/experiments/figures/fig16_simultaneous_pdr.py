"""Figure 16: PDR with multiple *simultaneous* consumers.

Paper shape (20 MB item): as simultaneous consumers grow, latency and
overhead first increase then stabilise — all consumers initially chase
the same single copies, but consumers in the same direction share each
transmission through overhearing and caching.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import configured_seeds, render_table
from repro.experiments.workload import make_video_item

MB = 1024 * 1024
DEFAULT_CONSUMER_COUNTS = (1, 2, 3, 4, 5)


def run(
    consumer_counts: Sequence[int] = DEFAULT_CONSUMER_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    item_size: int = 20 * MB,
    rows_cols: int = 10,
) -> List[Dict[str, object]]:
    """One row per consumer count: mean per-consumer recall/latency."""
    if seeds is None:
        seeds = configured_seeds()
    table = []
    for count in consumer_counts:
        recalls, latencies, overheads = [], [], []
        for seed in seeds:
            item = make_video_item(item_size)
            outcome = retrieval_experiment(
                seed,
                item,
                method="pdr",
                rows=rows_cols,
                cols=rows_cols,
                redundancy=1,
                n_consumers=count,
                mode="simultaneous",
                sim_cap_s=900.0,
            )
            recalls.append(
                sum(c.recall for c in outcome.consumers) / len(outcome.consumers)
            )
            latencies.append(
                sum(c.result.latency for c in outcome.consumers)
                / len(outcome.consumers)
            )
            overheads.append(outcome.total_overhead_bytes / 1e6)
        n = len(seeds)
        table.append(
            {
                "consumers": count,
                "recall": round(sum(recalls) / n, 3),
                "latency_s": round(sum(latencies) / n, 2),
                "overhead_mb": round(sum(overheads) / n, 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 16 — PDR with simultaneous consumers (20 MB item)",
        ["consumers", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
