"""Figure 16: PDR with multiple *simultaneous* consumers.

Paper shape (20 MB item): as simultaneous consumers grow, latency and
overhead first increase then stabilise — all consumers initially chase
the same single copies, but consumers in the same direction share each
transmission through overhearing and caching.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.common import retrieval_experiment
from repro.experiments.runner import point_mean, render_table, run_sweep
from repro.experiments.workload import make_video_item

MB = 1024 * 1024
DEFAULT_CONSUMER_COUNTS = (1, 2, 3, 4, 5)


def _trial(point: Dict[str, int], seed: int) -> Dict[str, float]:
    """One seeded run at one consumer count (module-level: picklable)."""
    item = make_video_item(point["item_size"])
    outcome = retrieval_experiment(
        seed,
        item,
        method="pdr",
        rows=point["rows_cols"],
        cols=point["rows_cols"],
        redundancy=1,
        n_consumers=point["count"],
        mode="simultaneous",
        sim_cap_s=900.0,
    )
    n = len(outcome.consumers)
    return {
        "recall": sum(c.recall for c in outcome.consumers) / n,
        "latency_s": sum(c.result.latency for c in outcome.consumers) / n,
        "overhead_mb": outcome.total_overhead_bytes / 1e6,
    }


def run(
    consumer_counts: Sequence[int] = DEFAULT_CONSUMER_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    item_size: int = 20 * MB,
    rows_cols: int = 10,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One row per consumer count: mean per-consumer recall/latency."""
    points = [
        {"count": count, "item_size": item_size, "rows_cols": rows_cols}
        for count in consumer_counts
    ]
    sweep = run_sweep(
        _trial,
        points,
        seeds=seeds,
        jobs=jobs,
        label_fn=lambda p: f"{p['count']} simultaneous pdr",
    )
    table = []
    for sweep_point in sweep:
        table.append(
            {
                "consumers": sweep_point.point["count"],
                "recall": point_mean(sweep_point, "recall", 3),
                "latency_s": point_mean(sweep_point, "latency_s", 2),
                "overhead_mb": point_mean(sweep_point, "overhead_mb", 2),
            }
        )
    return table


def main() -> str:
    """Render the figure's table."""
    rows = run()
    return render_table(
        "Fig. 16 — PDR with simultaneous consumers (20 MB item)",
        ["consumers", "recall", "latency_s", "overhead_mb"],
        rows,
    )


if __name__ == "__main__":
    print(main())
