"""The paper's metrics (§VI-A) and multi-seed aggregation.

* **Recall** — fraction of distinct entries/chunks the consumer received.
* **Latency** — query sent → last returned entry/chunk arrival.
* **Message overhead** — bytes of all messages put on the air.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class TrialMetrics:
    """One run's outcome."""

    recall: float
    latency_s: float
    overhead_bytes: int
    rounds: int = 0
    completed: bool = True
    extras: dict = field(default_factory=dict)

    @property
    def overhead_mb(self) -> float:
        """Overhead in decimal megabytes (as the paper reports)."""
        return self.overhead_bytes / 1e6


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean ± stdev over seeds."""

    recall_mean: float
    recall_std: float
    latency_mean: float
    latency_std: float
    overhead_mb_mean: float
    overhead_mb_std: float
    rounds_mean: float
    trials: int

    @classmethod
    def from_trials(cls, trials: Sequence[TrialMetrics]) -> "AggregateMetrics":
        if not trials:
            raise ValueError("cannot aggregate zero trials")
        recalls = [t.recall for t in trials]
        latencies = [t.latency_s for t in trials]
        overheads = [t.overhead_mb for t in trials]
        rounds = [t.rounds for t in trials]
        return cls(
            recall_mean=_mean(recalls),
            recall_std=_std(recalls),
            latency_mean=_mean(latencies),
            latency_std=_std(latencies),
            overhead_mb_mean=_mean(overheads),
            overhead_mb_std=_std(overheads),
            rounds_mean=_mean(rounds),
            trials=len(trials),
        )

    def as_row(self) -> Dict[str, float]:
        """Flat dict for table rendering (mean ± std, as the paper plots)."""
        return {
            "recall": round(self.recall_mean, 3),
            "recall_std": round(self.recall_std, 3),
            "latency_s": round(self.latency_mean, 2),
            "latency_std": round(self.latency_std, 2),
            "overhead_mb": round(self.overhead_mb_mean, 2),
            "overhead_mb_std": round(self.overhead_mb_std, 2),
            "rounds": round(self.rounds_mean, 1),
        }


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


def _std(values: List[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))
