"""The paper's metrics (§VI-A) and multi-seed aggregation.

* **Recall** — fraction of distinct entries/chunks the consumer received.
* **Latency** — query sent → last returned entry/chunk arrival.
* **Message overhead** — bytes of all messages put on the air.

Parallel campaigns (``run_trials(..., jobs=N)``) survive individual trial
crashes: a trial that keeps failing after its retry is recorded as a
:class:`TrialFailure` on the aggregate instead of aborting the campaign.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class TrialMetrics:
    """One run's outcome."""

    recall: float
    latency_s: float
    overhead_bytes: int
    rounds: int = 0
    completed: bool = True
    extras: dict = field(default_factory=dict)

    @property
    def overhead_mb(self) -> float:
        """Overhead in decimal megabytes (as the paper reports)."""
        return self.overhead_bytes / 1e6


@dataclass(frozen=True)
class TrialFailure:
    """One seed's trial that kept failing after its retry.

    Attributes:
        label: The trial's campaign label (e.g. ``"seed 3"``).
        seed: The seed that failed, or -1 when unknown.
        kind: ``"error"`` (trial raised), ``"timeout"`` (per-trial deadline
            hit) or ``"crash"`` (the worker process died).  A kind is only
            ever the failing task's own behaviour: a sibling sharing a
            pool with a crashing trial is requeued, never blamed.
        error: Stringified exception from the final attempt.
        attempts: Executions attributable to *this* task.  Pool-wide
            ``BrokenProcessPool`` fallout on sibling tasks is not charged
            — only runs where the task itself raised, timed out, or was
            the lone task in a broken pool count.
    """

    label: str
    seed: int
    kind: str
    error: str
    attempts: int


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean ± stdev over seeds.

    ``failures`` lists the seeds that kept failing in a crash-isolated
    parallel campaign; the statistics cover the surviving trials only.
    """

    recall_mean: float
    recall_std: float
    latency_mean: float
    latency_std: float
    overhead_mb_mean: float
    overhead_mb_std: float
    rounds_mean: float
    trials: int
    failures: Tuple[TrialFailure, ...] = ()
    #: Audit violation counts by invariant, summed over trials that put
    #: an ``extras["audit"]`` dict on their metrics (traced trials only).
    audit: Tuple[Tuple[str, int], ...] = ()
    #: How many trials carried an audit summary at all.
    audited_trials: int = 0
    #: Flight-recorder series stats folded over trials carrying an
    #: ``extras["timeline"]`` summary (recorded trials only):
    #: ``(peak_lqt, cdi_conv_s, airtime_util)``.
    timeline: Tuple[Tuple[str, float], ...] = ()
    #: How many trials carried a timeline summary at all.
    timeline_trials: int = 0
    #: Kernel-profiler stats folded over trials carrying an
    #: ``extras["profile"]`` summary (profiled trials only):
    #: ``(kernel_share,)`` — kernel time over trial wall, averaged.
    profile: Tuple[Tuple[str, float], ...] = ()
    #: Subsystem with the most attributed kernel time across all
    #: profiled trials (empty when no trial was profiled).
    hot_subsystem: str = ""
    #: How many trials carried a kernel-profile summary at all.
    profiled_trials: int = 0
    #: Trials satisfied from a campaign store instead of being executed.
    #: ``None`` when the campaign ran without a store (the column stays
    #: out of ``as_row()`` so store-less tables keep their exact shape).
    cache_hits: "int | None" = None
    #: Trials actually executed this campaign (store campaigns only):
    #: ``cache_hits + executed == trials + len(failures)``.
    executed: "int | None" = None

    @classmethod
    def from_trials(
        cls,
        trials: Sequence[TrialMetrics],
        failures: Sequence[TrialFailure] = (),
        cache_hits: "int | None" = None,
        executed: "int | None" = None,
    ) -> "AggregateMetrics":
        if not trials and not failures:
            raise ValueError("cannot aggregate zero trials")
        if not trials:
            return cls(
                recall_mean=0.0,
                recall_std=0.0,
                latency_mean=0.0,
                latency_std=0.0,
                overhead_mb_mean=0.0,
                overhead_mb_std=0.0,
                rounds_mean=0.0,
                trials=0,
                failures=tuple(failures),
                cache_hits=cache_hits,
                executed=executed,
            )
        recalls = [t.recall for t in trials]
        latencies = [t.latency_s for t in trials]
        overheads = [t.overhead_mb for t in trials]
        rounds = [t.rounds for t in trials]
        audit: Dict[str, int] = {}
        audited = 0
        for trial_metrics in trials:
            if "audit" not in trial_metrics.extras:
                continue
            audited += 1
            for invariant, count in trial_metrics.extras["audit"].items():
                audit[invariant] = audit.get(invariant, 0) + int(count)
        profiles = [
            t.extras["profile"] for t in trials if "profile" in t.extras
        ]
        profile: Tuple[Tuple[str, float], ...] = ()
        hot_subsystem = ""
        if profiles:
            # Hottest subsystem over ALL profiled trials (summed ns), not
            # a per-trial vote — one slow trial should be able to move it.
            subsystem_ns: Dict[str, int] = {}
            for summary in profiles:
                for name, ns in summary.get("subsystem_ns", {}).items():
                    subsystem_ns[name] = subsystem_ns.get(name, 0) + int(ns)
            if subsystem_ns:
                hot_subsystem = max(
                    subsystem_ns, key=lambda name: subsystem_ns[name]
                )
            profile = (
                (
                    "kernel_share",
                    _mean(
                        [float(s.get("kernel_share", 0.0)) for s in profiles]
                    ),
                ),
            )
        timelines = [
            t.extras["timeline"] for t in trials if "timeline" in t.extras
        ]
        timeline: Tuple[Tuple[str, float], ...] = ()
        if timelines:
            timeline = (
                ("peak_lqt", max(int(s.get("peak_lqt", 0)) for s in timelines)),
                (
                    "cdi_conv_s",
                    _mean([float(s.get("cdi_conv_s", 0.0)) for s in timelines]),
                ),
                (
                    "airtime_util",
                    _mean([float(s.get("airtime_util", 0.0)) for s in timelines]),
                ),
            )
        return cls(
            recall_mean=_mean(recalls),
            recall_std=_std(recalls),
            latency_mean=_mean(latencies),
            latency_std=_std(latencies),
            overhead_mb_mean=_mean(overheads),
            overhead_mb_std=_std(overheads),
            rounds_mean=_mean(rounds),
            trials=len(trials),
            failures=tuple(failures),
            audit=tuple(sorted(audit.items())),
            audited_trials=audited,
            timeline=timeline,
            timeline_trials=len(timelines),
            profile=profile,
            hot_subsystem=hot_subsystem,
            profiled_trials=len(profiles),
            cache_hits=cache_hits,
            executed=executed,
        )

    def as_row(self) -> Dict[str, float]:
        """Flat dict for table rendering (mean ± std, as the paper plots).

        Trials that ran a trace audit (``extras["audit"]``) contribute a
        total ``violations`` column plus one ``audit_<invariant>`` column
        per invariant that actually fired, so a protocol regression shows
        up in the experiment tables, not just the inspect CLI.
        """
        row: Dict[str, float] = {
            "recall": round(self.recall_mean, 3),
            "recall_std": round(self.recall_std, 3),
            "latency_s": round(self.latency_mean, 2),
            "latency_std": round(self.latency_std, 2),
            "overhead_mb": round(self.overhead_mb_mean, 2),
            "overhead_mb_std": round(self.overhead_mb_std, 2),
            "rounds": round(self.rounds_mean, 1),
        }
        if self.audited_trials:
            row["violations"] = sum(count for _, count in self.audit)
            for invariant, count in self.audit:
                if count:
                    row[f"audit_{invariant}"] = count
        if self.timeline_trials:
            for name, value in self.timeline:
                if name == "peak_lqt":
                    row[name] = int(value)
                elif name == "airtime_util":
                    row[name] = round(value, 4)
                else:
                    row[name] = round(value, 2)
        if self.profiled_trials:
            for name, value in self.profile:
                row[name] = round(value, 3)
            row["hot_subsystem"] = self.hot_subsystem
        if self.cache_hits is not None:
            # Store-backed campaigns only: how much of the table came from
            # cached trials vs fresh executions.  Intentionally absent on
            # store-less runs so their tables stay byte-identical to the
            # pre-store format.
            row["cache_hits"] = self.cache_hits
            if self.executed is not None:
                row["executed"] = self.executed
        return row


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


def _std(values: List[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))
