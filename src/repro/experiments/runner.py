"""Multi-seed trial running and table rendering.

The paper averages each point over 5 runs (§VI-A); experiment modules
define a per-seed trial function and hand it to :func:`run_trials`.
Benchmarks honour ``REPRO_SEEDS`` / ``REPRO_SCALE`` environment knobs so
full-fidelity runs and quick CI runs share the same code.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.metrics import AggregateMetrics, TrialMetrics
from repro.obs.profile import active_profiler

#: Per the paper: "results are averaged over 5 runs".
DEFAULT_SEEDS = (1, 2, 3, 4, 5)

TrialFn = Callable[[int], TrialMetrics]


def configured_seeds(default: Sequence[int] = DEFAULT_SEEDS) -> List[int]:
    """Seeds to use, honouring the ``REPRO_SEEDS`` env var (a count)."""
    raw = os.environ.get("REPRO_SEEDS")
    if not raw:
        return list(default)
    count = max(1, int(raw))
    return list(range(1, count + 1))


def scale_factor(default: float = 1.0) -> float:
    """Workload scale, honouring ``REPRO_SCALE`` (1.0 = paper scale).

    Benchmarks default to a reduced scale so the suite completes quickly;
    set ``REPRO_SCALE=1`` for paper-scale runs.
    """
    raw = os.environ.get("REPRO_SCALE")
    if not raw:
        return default
    return float(raw)


def run_trials(trial: TrialFn, seeds: Optional[Iterable[int]] = None) -> AggregateMetrics:
    """Run ``trial`` per seed and aggregate.

    When a :class:`repro.obs.profile.RunProfiler` is active (CLI
    ``--metrics``), each trial's simulator runs are labelled with its seed
    so the profile reads per-trial.
    """
    if seeds is None:
        seeds = configured_seeds()
    profiler = active_profiler()
    results = []
    for seed in seeds:
        if profiler is not None:
            with profiler.label(f"seed {seed}"):
                results.append(trial(seed))
        else:
            results.append(trial(seed))
    return AggregateMetrics.from_trials(results)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: List[Dict[str, object]],
) -> str:
    """A plain fixed-width table, one row per parameter point."""
    widths = {col: max(len(col), 10) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    lines.append(rule)
    return "\n".join(lines)
