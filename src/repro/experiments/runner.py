"""Multi-seed trial running, parallel sweeps and table rendering.

The paper averages each point over 5 runs (§VI-A); experiment modules
define a per-seed trial function and hand it to :func:`run_trials`, or a
per-(point, seed) function plus a parameter grid to :func:`run_sweep`.
Benchmarks honour ``REPRO_SEEDS`` / ``REPRO_SCALE`` environment knobs so
full-fidelity runs and quick CI runs share the same code.

Parallelism
-----------

Trials are embarrassingly parallel — each builds its own simulator and
RNGs from its seed — so both entry points take a ``jobs`` parameter
(default: the ``REPRO_JOBS`` env knob, itself defaulting to 1) backed by
:class:`concurrent.futures.ProcessPoolExecutor`.  ``jobs=1`` keeps
everything on the caller's thread, exactly as before.  With ``jobs>1``:

* results are reassembled in submission order, so tables are
  bit-identical to a serial run of the same seeds regardless of worker
  completion order;
* each trial runs under a per-trial wall-clock deadline (``timeout_s`` /
  ``REPRO_TRIAL_TIMEOUT``) enforced with ``SIGALRM`` inside the worker;
* a trial that raises, times out, or kills its worker process is retried
  once (``retries``) and then surfaced as a structured
  :class:`~repro.experiments.metrics.TrialFailure` instead of aborting
  the campaign.  After a worker *process* death the retry round runs
  each remaining trial in its own single-worker pool, so a
  deterministically crashing trial only takes itself down;
* observability survives the fan-out: workers return their
  :class:`~repro.obs.profile.RunProfiler` records, merged
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots, and (when
  profiling is configured) :class:`~repro.obs.kernelprof.KernelProfiler`
  snapshots, which the parent folds into its active profiler(s) /
  registry collector;
* process-wide JSONL trace sinks are sharded — worker ``k`` writes
  ``trace.k.jsonl`` next to the parent's ``trace.jsonl``.  Other sink
  types cannot cross a process boundary and raise
  :class:`~repro.errors.ConfigurationError` telling you to use
  ``jobs=1``.

Campaign store
--------------

Both entry points take ``store=`` (a path or
:class:`~repro.experiments.store.CampaignStore`; default: the
``REPRO_STORE`` env knob, CLI ``--store``) and ``resume=`` knobs.  With a
store, every completed trial is durably recorded under its content
address and — with ``resume=True``, the default — trials whose digest is
already present are *skipped*: their cached values slot into the
reassembly exactly where execution would have put them, so the final
tables are bit-identical to an uninterrupted run.  A campaign killed
mid-flight (even ``SIGKILL``) resumes from what it finished; in-flight
trials simply re-run.  Worker-shard hygiene rides along: each trial
attempt ends with a commit/abort marker on the worker's JSONL shards,
and after the campaign the shards are sanitized so events from failed or
abandoned attempts never double-count in merged spans/timelines.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.util
import os
import signal
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError, ReproError
from repro.experiments.metrics import AggregateMetrics, TrialFailure, TrialMetrics
from repro.experiments.store import (
    CampaignStore,
    resolve_store,
    task_digest,
    trial_id,
)
from repro.obs import fingerprint as obs_fingerprint
from repro.obs import kernelprof as obs_kernelprof
from repro.obs import memprof as obs_memprof
from repro.obs import recorder as obs_recorder
from repro.obs import trace as obs_trace
from repro.obs.audit import audit_extras
from repro.obs.metrics import MetricsRegistry, _clear_collectors, collect_registries
from repro.obs.profile import RunProfiler, _clear_active, active_profiler

#: Per the paper: "results are averaged over 5 runs".
DEFAULT_SEEDS = (1, 2, 3, 4, 5)

TrialFn = Callable[[int], TrialMetrics]
SweepTrialFn = Callable[[Any, int], Any]


class TrialTimeout(ReproError):
    """A trial exceeded its per-trial wall-clock deadline."""


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
def configured_seeds(default: Sequence[int] = DEFAULT_SEEDS) -> List[int]:
    """Seeds to use, honouring the ``REPRO_SEEDS`` env var (a count).

    Raises:
        ConfigurationError: when ``REPRO_SEEDS`` is not a positive integer.
    """
    raw = os.environ.get("REPRO_SEEDS")
    if not raw:
        return list(default)
    try:
        count = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SEEDS must be a positive integer (a seed count), "
            f"got {raw!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(
            f"REPRO_SEEDS must be a positive integer (a seed count), "
            f"got {raw!r}"
        )
    return list(range(1, count + 1))


def scale_factor(default: float = 1.0) -> float:
    """Workload scale, honouring ``REPRO_SCALE`` (1.0 = paper scale).

    Benchmarks default to a reduced scale so the suite completes quickly;
    set ``REPRO_SCALE=1`` for paper-scale runs.

    Raises:
        ConfigurationError: when ``REPRO_SCALE`` is not a positive number.
    """
    raw = os.environ.get("REPRO_SCALE")
    if not raw:
        return default
    try:
        scale = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SCALE must be a positive number, got {raw!r}"
        ) from None
    if scale <= 0:
        raise ConfigurationError(
            f"REPRO_SCALE must be a positive number, got {raw!r}"
        )
    return scale


def configured_jobs(default: int = 1) -> int:
    """Worker processes per campaign, honouring ``REPRO_JOBS``.

    ``1`` (the default) runs everything in-process; ``0`` or ``auto``
    means one worker per CPU core.

    Raises:
        ConfigurationError: when ``REPRO_JOBS`` is not a non-negative
            integer or ``auto``.
    """
    raw = os.environ.get("REPRO_JOBS")
    if not raw:
        return default
    if raw.strip().lower() == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_JOBS must be a non-negative integer or 'auto', got {raw!r}"
        ) from None
    if jobs < 0:
        raise ConfigurationError(
            f"REPRO_JOBS must be a non-negative integer or 'auto', got {raw!r}"
        )
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def configured_trial_timeout(default: Optional[float] = None) -> Optional[float]:
    """Per-trial wall-clock deadline in seconds (``REPRO_TRIAL_TIMEOUT``).

    ``None`` (unset/empty) disables the deadline.  Only enforced for
    parallel campaigns (``jobs > 1``) on platforms with ``SIGALRM``.

    Raises:
        ConfigurationError: when ``REPRO_TRIAL_TIMEOUT`` is not a
            positive number.
    """
    raw = os.environ.get("REPRO_TRIAL_TIMEOUT")
    if not raw:
        return default
    try:
        timeout = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_TRIAL_TIMEOUT must be a positive number of seconds, "
            f"got {raw!r}"
        ) from None
    if timeout <= 0:
        raise ConfigurationError(
            f"REPRO_TRIAL_TIMEOUT must be a positive number of seconds, "
            f"got {raw!r}"
        )
    return timeout


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_init(
    shard_bases: Sequence[str],
    shard_counter: Any,
    timeline_shards: bool = False,
    profile_trials: bool = False,
    fingerprint_shards: bool = False,
) -> None:
    """Per-worker-process setup.

    Forked workers inherit the parent's process-wide observability state:
    global trace sinks (whose file handles are shared with the parent),
    the active profiler (run and kernel), memory telemetry, open registry
    collectors, and open recorder collectors.  All of it belongs to the
    parent, so drop it — workers report back through their return values
    instead — then open this worker's own JSONL trace shards and re-point
    any configured timeline recording at this worker's shard.

    ``profile_trials`` carries the parent's kernel-profiling request
    across the process boundary (start-method agnostic, unlike inherited
    globals): the worker profiles its trials and ships the stats back in
    its return value.
    """
    for sink in obs_trace.global_sinks():
        # Remove without closing: under fork the file object is shared
        # with the parent, and closing here would flush its buffer twice.
        obs_trace.remove_global_sink(sink)
    _clear_active()
    obs_kernelprof._clear_active()
    obs_kernelprof.request_profiling(profile_trials)
    obs_memprof._clear_active()
    _clear_collectors()
    obs_recorder._clear_recorder_collectors()
    if shard_bases or timeline_shards or fingerprint_shards:
        with shard_counter.get_lock():
            index = shard_counter.value
            shard_counter.value += 1
        for base in shard_bases:
            stem, ext = os.path.splitext(base)
            sink = obs_trace.JsonlSink(f"{stem}.{index}{ext}")
            obs_trace.install_global_sink(sink)
            # Workers exit through os._exit (multiprocessing skips normal
            # interpreter shutdown), so buffered tail events would be lost
            # without an explicit finalizer.  (TimelineWriter registers its
            # own finalizer when the recording opens its shard.)
            multiprocessing.util.Finalize(sink, sink.close, exitpriority=10)
        if timeline_shards:
            obs_recorder.reshard_for_worker(index)
        if fingerprint_shards:
            # The inherited config's writer (if the parent already opened
            # one) is dropped, not closed — its buffer belongs to the
            # parent (pid-guarded, like trace sinks under fork).
            obs_fingerprint.reshard_for_worker(index)


def _audited_call(trial: Callable[..., Any], args: Tuple[Any, ...]) -> Any:
    """Run one trial; wire tracing/recording summaries into its extras.

    When a process-wide trace sink is active (CLI ``--trace``), the
    trial's events are also captured in memory and run through the
    :mod:`repro.obs.audit` invariants; the per-invariant violation counts
    land in ``TrialMetrics.extras["audit"]`` so they surface as
    ``violations`` / ``audit_<invariant>`` columns in the figure tables.
    When a timeline recording is configured (``timeline=`` knob, CLI
    ``--timeline`` or ``REPRO_TIMELINE``), the flight recorders the
    trial's scenarios attach are collected and their merged series summary
    lands in ``TrialMetrics.extras["timeline"]``.  When kernel profiling
    is configured (``repro profile``, ``REPRO_PROFILE``, or an active
    :class:`~repro.obs.kernelprof.KernelProfiler`), the trial runs under
    its own profiler; the per-trial summary lands in
    ``extras["profile"]`` (the ``hot_subsystem`` / ``kernel_share``
    columns) and the handler stats fold into the enclosing profiler.
    Campaigns with none of these skip all of this.
    """
    tracing = bool(obs_trace.global_sinks())
    recording = obs_recorder.configured_recording() is not None
    profiling = obs_kernelprof.configured_profiling()
    if not tracing and not recording and not profiling:
        return trial(*args)
    capture: Optional[obs_trace.ListSink] = None
    if tracing:
        capture = obs_trace.ListSink()
        obs_trace.install_global_sink(capture)
    kernel = obs_kernelprof.KernelProfiler() if profiling else None
    try:
        with obs_recorder.collect_recorders() as recorders:
            if kernel is not None:
                with kernel.activate():
                    result = trial(*args)
            else:
                result = trial(*args)
    finally:
        if capture is not None:
            obs_trace.remove_global_sink(capture)
    if kernel is not None:
        outer = obs_kernelprof.active_kernel_profiler()
        if outer is not None:
            outer.merge(kernel)
    if isinstance(result, TrialMetrics):
        if capture is not None:
            result.extras["audit"] = audit_extras(
                [event.to_json_dict() for event in capture.events]
            )
        if recorders:
            result.extras["timeline"] = obs_recorder.merge_summaries(
                [recorder.summary() for recorder in recorders]
            )
        if kernel is not None:
            result.extras["profile"] = kernel.trial_summary()
    return result


def _mark_attempt(outcome: str, label: str) -> None:
    """End one trial attempt on every open JSONL artifact of this worker.

    Writes ``{"attempt": "commit"|"abort", "label": ...}`` to the
    worker's trace shards and to the timeline/fingerprint writers *if
    they are already open* (a marker must never force an idle lazy shard
    into existence), then flushes — so once an attempt commits, its
    events survive the worker being killed during a *later* trial.
    Post-campaign sanitization keeps exactly the committed segments:
    aborted attempts, duplicate commits of the same label, and the
    unterminated tail a killed worker leaves are all dropped, which is
    what stops a retried trial's abandoned first attempt from
    double-counting in merged spans and timelines.
    """
    doc = {"attempt": outcome, "label": label}
    for sink in obs_trace.global_sinks():
        if isinstance(sink, obs_trace.JsonlSink):
            sink.write_doc(doc)
            sink.flush()
    recording = obs_recorder.configured_recording()
    if recording is not None:
        writer = recording.current_writer()
        if writer is not None:
            writer.write_doc(doc)
            writer.flush()
    fingerprint = obs_fingerprint.configured_fingerprint()
    if fingerprint is not None:
        writer = fingerprint.current_writer()
        if writer is not None:
            writer.write_doc(doc)
            writer.flush()


@contextmanager
def _trial_deadline(timeout_s: Optional[float], label: str) -> Iterator[None]:
    """Raise :class:`TrialTimeout` if the block runs longer than allowed.

    Armed with ``signal.setitimer`` (not the integer-only
    ``signal.alarm``), so sub-second deadlines like ``timeout_s=0.5``
    fire at 0.5s instead of being truncated to "never".  ``None``
    disables the deadline; a non-positive value is a configuration error,
    never a silent no-op (``alarm(0)``-style "0 disarms the timer"
    semantics would make a mistyped timeout vanish without a trace).

    Uses ``SIGALRM``, which only exists on Unix and only works on the
    main thread — both true inside a ProcessPoolExecutor worker.  On
    platforms without it the deadline is silently unenforced.
    """
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(
            f"trial timeout must be a positive number of seconds "
            f"(or None to disable), got {timeout_s!r}"
        )
    if timeout_s is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise TrialTimeout(
            f"trial {label!r} exceeded its {timeout_s:g}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_task_in_worker(
    trial: Callable[..., Any],
    args: Tuple[Any, ...],
    label: str,
    timeout_s: Optional[float],
) -> Tuple[
    Any,
    Tuple[Any, ...],
    Dict[str, Dict[str, object]],
    Optional[Dict[str, object]],
]:
    """Execute one trial out-of-process and package its observability.

    Returns ``(value, profiler_records, metrics_snapshot,
    kernel_snapshot)`` where the metrics snapshot merges every registry
    the trial's simulators created and the kernel snapshot (or ``None``
    when profiling is off) carries this trial's handler stats for the
    parent to fold into its own :class:`KernelProfiler`.
    """
    profiler = RunProfiler()
    kernel = (
        obs_kernelprof.KernelProfiler()
        if obs_kernelprof.configured_profiling()
        else None
    )
    try:
        with collect_registries() as registries:
            with profiler.activate(), profiler.label(label):
                with _trial_deadline(timeout_s, label):
                    if kernel is not None:
                        with kernel.activate():
                            value = _audited_call(trial, args)
                    else:
                        value = _audited_call(trial, args)
    except BaseException:
        # The attempt's partial shard events must not survive the merge;
        # a killed worker writes no marker, leaving an unterminated tail
        # that sanitization drops the same way.
        _mark_attempt("abort", label)
        raise
    _mark_attempt("commit", label)
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge_snapshot(registry.snapshot())
    return (
        value,
        tuple(profiler.records),
        merged.snapshot(),
        kernel.snapshot() if kernel is not None else None,
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Task:
    """One (trial, args) unit of a campaign, keyed for reassembly."""

    key: int
    seed: int
    label: str
    args: Tuple[Any, ...]


def _pool_context() -> Any:
    """Fork when available: cheap, and inherits imported trial modules."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _plan_trace_shards(context: Any) -> List[str]:
    """Decide how process-wide trace sinks behave under a fan-out.

    JSONL sinks shard (worker ``k`` writes ``<stem>.k<ext>``); anything
    else cannot cross a process boundary, so the campaign must run with
    ``jobs=1``.
    """
    bases: List[str] = []
    for sink in obs_trace.global_sinks():
        if isinstance(sink, obs_trace.JsonlSink):
            bases.append(sink.path)
        else:
            raise ConfigurationError(
                f"trace sink {type(sink).__name__} cannot follow trials into "
                f"worker processes; run with jobs=1 (--jobs 1) to keep "
                f"tracing through it"
            )
    if bases and context.get_start_method() != "fork":
        raise ConfigurationError(
            "per-worker trace shards need the 'fork' start method; run "
            "with jobs=1 (--jobs 1) to trace on this platform"
        )
    return bases


def _plan_timeline_shards(context: Any) -> bool:
    """Whether workers must shard a configured timeline recording.

    Memory-only recordings (no path) still need per-worker recorder
    collection, but summaries travel back inside the pickled trial
    results, so they work under any start method.  File-backed timelines
    shard like trace files and need ``fork``.
    """
    config = obs_recorder.configured_recording()
    if config is None:
        return False
    if config.path is not None and context.get_start_method() != "fork":
        raise ConfigurationError(
            "per-worker timeline shards need the 'fork' start method; run "
            "with jobs=1 (--jobs 1) to record a timeline on this platform"
        )
    return config.path is not None


def _plan_fingerprint_shards(context: Any) -> bool:
    """Whether workers must shard a configured fingerprint stream.

    File-backed fingerprint streams shard per worker exactly like trace
    and timeline files (fork only); a memory-only fingerprint config
    cannot follow trials into worker processes at all — its
    :class:`~repro.obs.fingerprint.EventFingerprinter` records would die
    with the worker — so it demands ``jobs=1``.
    """
    config = obs_fingerprint.configured_fingerprint()
    if config is None:
        return False
    if config.path is None:
        raise ConfigurationError(
            "an in-memory fingerprint (path=None) cannot follow trials "
            "into worker processes; give it a path or run with jobs=1 "
            "(--jobs 1)"
        )
    if context.get_start_method() != "fork":
        raise ConfigurationError(
            "per-worker fingerprint shards need the 'fork' start method; "
            "run with jobs=1 (--jobs 1) to fingerprint on this platform"
        )
    return True


def _failure_kind(error: BaseException) -> str:
    if isinstance(error, TrialTimeout):
        return "timeout"
    if isinstance(error, BrokenProcessPool):
        return "crash"
    return "error"


def _sanitize_shard(path: str, committed_labels: set) -> None:
    """Keep only committed attempt segments of one worker JSONL shard.

    A shard is a sequence of segments, each terminated by an attempt
    marker (``{"attempt": "commit"|"abort", "label": ...}``).  Aborted
    segments, the unterminated tail a killed worker leaves, truncated
    lines, and duplicate commits of a label already committed on an
    earlier shard (a worker killed between finishing a trial and
    delivering its result forces a re-run of an already-committed trial)
    are all dropped; markers themselves are stripped.  Provenance headers
    always survive.  The rewrite is atomic (temp file + rename), and a
    shard with nothing to drop is left byte-untouched.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return
    kept: List[str] = []
    segment: List[str] = []
    dirty = False
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            doc = json.loads(stripped)
        except ValueError:
            # Truncated tail of a killed writer: part of the unterminated
            # (dead) attempt — dropped with the rest of its segment.
            segment.append(line)
            continue
        if isinstance(doc, dict) and "provenance" in doc:
            kept.append(line)
            continue
        if isinstance(doc, dict) and "attempt" in doc:
            label = doc.get("label")
            if doc.get("attempt") == "commit" and label not in committed_labels:
                committed_labels.add(label)
                kept.extend(segment)
            dirty = True
            segment = []
            continue
        segment.append(line)
    if segment:
        dirty = True  # unterminated tail: the attempt died mid-write
    if not dirty:
        return
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as out:
            out.writelines(kept)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _clean_artifact_shards(base: str, count: int) -> None:
    """Post-campaign shard hygiene for one sharded JSONL artifact.

    Sanitizes this campaign's shards (``<stem>.0<ext>`` …
    ``<stem>.<count-1><ext>``) in index order — so a trial committed on
    two shards (worker killed after commit but before result delivery,
    then re-run) keeps only its first copy — and deletes shards with
    index ≥ ``count``: leftovers of an earlier, wider (or killed)
    campaign that a merged load would otherwise double-count.
    """
    stem, ext = os.path.splitext(base)
    committed_labels: set = set()
    for index in range(count):
        path = f"{stem}.{index}{ext}"
        if os.path.exists(path):
            _sanitize_shard(path, committed_labels)
    directory = os.path.dirname(base) or "."
    prefix = os.path.basename(stem) + "."
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        if not (name.startswith(prefix) and name.endswith(ext)):
            continue
        middle = name[len(prefix) : len(name) - len(ext)] if ext else name[len(prefix) :]
        if middle.isdigit() and int(middle) >= count:
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass


def _execute_parallel(
    trial: Callable[..., Any],
    tasks: Sequence[_Task],
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
) -> Tuple[Dict[int, Any], Dict[int, TrialFailure], Dict[int, Any]]:
    """Fan tasks out over worker processes with retry and crash isolation.

    Returns ``(values_by_key, failures_by_key, snapshots_by_key)`` —
    the last carries each successful trial's merged metrics snapshot so a
    campaign store can record it.  Worker profiler records are folded
    into the parent's active profiler and worker metric snapshots into a
    registry that joins any open :func:`collect_registries` block.

    Failure accounting is per-task: an attempt is only charged when the
    task itself raised, timed out, or was the lone task in a pool whose
    worker died.  When a worker death breaks a pool with several tasks in
    flight, ``BrokenProcessPool`` is raised on *every* pending future —
    including siblings that never ran on the dead worker — so those tasks
    are requeued attempt-free; the retry round runs one task per pool
    (crash isolation), where blame is unambiguous.
    """
    context = _pool_context()
    shard_bases = _plan_trace_shards(context)
    timeline_shards = _plan_timeline_shards(context)
    fingerprint_shards = _plan_fingerprint_shards(context)
    shard_counter = (
        context.Value("i", 0)
        if (shard_bases or timeline_shards or fingerprint_shards)
        else None
    )
    profiler = active_profiler()
    kernel = obs_kernelprof.active_kernel_profiler()
    profile_trials = obs_kernelprof.configured_profiling()
    # Created here so it registers with the caller's collector (if any);
    # every worker snapshot is merged into it.
    campaign_metrics = MetricsRegistry()

    values: Dict[int, Any] = {}
    failures: Dict[int, TrialFailure] = {}
    snapshots: Dict[int, Any] = {}
    attempts: Dict[int, int] = {task.key: 0 for task in tasks}
    queue: List[_Task] = list(tasks)
    isolate = False  # after a worker death, retry one task per pool

    def charge(task: _Task, error: BaseException) -> None:
        """Record one genuine execution of ``task`` that ended in ``error``."""
        attempts[task.key] += 1
        if attempts[task.key] <= retries:
            queue.append(task)
        else:
            failures[task.key] = TrialFailure(
                label=task.label,
                seed=task.seed,
                kind=_failure_kind(error),
                error=f"{type(error).__name__}: {error}",
                attempts=attempts[task.key],
            )

    while queue:
        batch, queue = queue, []
        groups = [[task] for task in batch] if isolate else [batch]
        saw_crash = False
        for group in groups:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(group)),
                mp_context=context,
                initializer=_worker_init,
                initargs=(
                    shard_bases,
                    shard_counter,
                    timeline_shards,
                    profile_trials,
                    fingerprint_shards,
                ),
            ) as pool:
                futures = {
                    pool.submit(
                        _run_task_in_worker, trial, task.args, task.label, timeout_s
                    ): task
                    for task in group
                }
                broken: List[Tuple[_Task, BaseException]] = []
                for future, task in futures.items():
                    try:
                        value, records, snapshot, kernel_snap = future.result()
                    except BaseException as error:  # noqa: BLE001 — recorded
                        if isinstance(error, BrokenProcessPool):
                            # A worker death poisons every pending future
                            # in the pool; which task actually ran on the
                            # dead worker is only knowable from the pool's
                            # composition, so attribution is deferred
                            # until the whole group has drained.
                            saw_crash = True
                            broken.append((task, error))
                        else:
                            # The exception was pickled back from the
                            # worker: this task genuinely executed (and
                            # raised or timed out), so the attempt is its
                            # own.
                            charge(task, error)
                    else:
                        values[task.key] = value
                        snapshots[task.key] = snapshot
                        if profiler is not None:
                            profiler.extend(records)
                        if kernel is not None and kernel_snap is not None:
                            kernel.merge_snapshot(kernel_snap)
                        campaign_metrics.merge_snapshot(snapshot)
            if len(broken) == 1:
                # Exactly one task was in flight when the pool broke, so
                # the dead worker was running it: the crash is its own.
                charge(broken[0][0], broken[0][1])
            elif broken:
                # Several tasks were poisoned by one worker death; the
                # innocent siblings must not be charged (a healthy trial
                # could otherwise exhaust its retries — and be recorded
                # as a "crash" — without ever failing itself).  Requeue
                # everyone attempt-free; the isolated retry round pins
                # the blame.
                queue.extend(task for task, _ in broken)
        if saw_crash:
            isolate = True

    if shard_counter is not None:
        bases = list(shard_bases)
        if timeline_shards:
            timeline_base = obs_recorder.recording_shard_base()
            if timeline_base:
                bases.append(timeline_base)
        if fingerprint_shards:
            fingerprint_config = obs_fingerprint.configured_fingerprint()
            if fingerprint_config is not None and fingerprint_config.path:
                bases.append(fingerprint_config.path)
        for base in bases:
            _clean_artifact_shards(base, shard_counter.value)

    return values, failures, snapshots


# ----------------------------------------------------------------------
# Campaign-store plumbing
# ----------------------------------------------------------------------
def _campaign_artifacts() -> Dict[str, Any]:
    """JSONL artifact base paths recorded on every store entry.

    Points a store entry back at the trace/timeline/fingerprint streams
    the campaign that executed it was writing (per-worker shards live
    next to these bases).  Cached trials emit no events in a resumed
    campaign, so its artifact files cover only the trials it executed —
    the original campaign's artifacts are named here.
    """
    artifacts: Dict[str, Any] = {}
    trace_paths = [
        sink.path
        for sink in obs_trace.global_sinks()
        if isinstance(sink, obs_trace.JsonlSink)
    ]
    if trace_paths:
        artifacts["trace"] = trace_paths
    timeline_base = obs_recorder.recording_shard_base()
    if timeline_base:
        artifacts["timeline"] = timeline_base
    fingerprint = obs_fingerprint.configured_fingerprint()
    if fingerprint is not None and fingerprint.path:
        artifacts["fingerprint"] = fingerprint.path
    return artifacts


def _run_task_serial(
    trial: Callable[..., Any], task: _Task, profiler: Optional[RunProfiler]
) -> Tuple[Any, Dict[str, Dict[str, object]]]:
    """One in-process trial plus its metrics snapshot (for the store).

    The scratch registry stays unregistered: the trial's own registries
    already joined any open collector, so a registered merge target would
    double every instrument in the caller's campaign view.
    """
    with collect_registries() as registries:
        if profiler is not None:
            with profiler.label(task.label):
                value = _audited_call(trial, task.args)
        else:
            value = _audited_call(trial, task.args)
    scratch = MetricsRegistry(register=False)
    for registry in registries:
        scratch.merge_snapshot(registry.snapshot())
    return value, scratch.snapshot()


def _run_stored_campaign(
    trial: Callable[..., Any],
    tasks: Sequence[_Task],
    store: CampaignStore,
    resume: bool,
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
) -> Tuple[Dict[int, Any], Dict[int, TrialFailure], set]:
    """Run a keyed campaign against a content-addressed store.

    Returns ``(values_by_key, failures_by_key, hit_keys)``.  With
    ``resume`` on, tasks whose digest already has a successful entry are
    satisfied from the store (their cached metrics snapshots merge into a
    registry that joins any open collector); everything else executes and
    is written through — values on success, failure records when a task
    permanently fails.  Stored *failures* never count as hits: crashes
    and timeouts are environment-dependent, so a resumed campaign re-runs
    them (a deterministic error just fails identically again, keeping the
    resumed table bit-identical).
    """
    name = trial_id(trial)
    digests = {task.key: task_digest(trial, task.args) for task in tasks}
    artifacts = _campaign_artifacts()
    # Registers with the caller's collector (if any) so cached trials'
    # metrics still reach the campaign-wide view.
    campaign_metrics = MetricsRegistry()

    values: Dict[int, Any] = {}
    failures: Dict[int, TrialFailure] = {}
    hit_keys: set = set()
    if resume:
        for task in tasks:
            entry = store.get(digests[task.key])
            if entry is None:
                continue
            values[task.key] = entry.value
            hit_keys.add(task.key)
            if entry.metrics:
                campaign_metrics.merge_snapshot(entry.metrics)

    misses = [task for task in tasks if task.key not in hit_keys]
    if jobs == 1:
        # Serial contract unchanged: exceptions propagate.  Completed
        # trials are already durably stored, so a crashed serial campaign
        # resumes from the trial it died in.
        profiler = active_profiler()
        for task in misses:
            value, snapshot = _run_task_serial(trial, task, profiler)
            store.put_value(
                digests[task.key],
                name,
                task.label,
                task.seed,
                value,
                metrics=snapshot,
                artifacts=artifacts,
            )
            values[task.key] = value
    elif misses:
        executed, failures, snapshots = _execute_parallel(
            trial, misses, jobs, timeout_s, retries
        )
        by_key = {task.key: task for task in misses}
        for key, value in executed.items():
            task = by_key[key]
            store.put_value(
                digests[key],
                name,
                task.label,
                task.seed,
                value,
                metrics=snapshots.get(key),
                artifacts=artifacts,
            )
        for key, failure in failures.items():
            store.put_failure(digests[key], name, failure, artifacts=artifacts)
        values.update(executed)
    return values, failures, hit_keys


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_trials(
    trial: TrialFn,
    seeds: Optional[Iterable[int]] = None,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    timeline: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = True,
) -> AggregateMetrics:
    """Run ``trial`` per seed and aggregate.

    With ``jobs=1`` (the default unless ``REPRO_JOBS`` says otherwise)
    trials run serially in-process and any exception propagates, exactly
    as before.  With ``jobs>1`` trials fan out over worker processes;
    a trial that keeps failing after ``retries`` extra attempts becomes a
    :class:`~repro.experiments.metrics.TrialFailure` on the returned
    aggregate and the campaign continues.  Results are aggregated in seed
    order either way, so the statistics are identical for both paths.

    ``store`` (a path or :class:`~repro.experiments.store.CampaignStore`;
    default: the ``REPRO_STORE`` env knob) makes the campaign durable:
    every completed trial is recorded under its content address, and with
    ``resume=True`` (the default) trials already in the store are skipped
    — their cached values aggregate exactly where execution would have
    put them, so the result is bit-identical to an uninterrupted run.
    The aggregate's ``cache_hits``/``executed`` fields say how much came
    from the store.

    ``timeline=True`` records a flight-recorder timeline of every trial
    in memory; ``timeline="path.jsonl"`` additionally streams it to a
    JSONL file (per-worker shards with ``jobs>1``, like trace files).
    Either way the merged series summary (peak LQT size, CDI convergence
    time, mean airtime utilization) lands on each trial's
    ``TrialMetrics.extras["timeline"]`` and surfaces as table columns.

    When a :class:`repro.obs.profile.RunProfiler` is active (CLI
    ``--metrics``), each trial's simulator runs are labelled with its seed
    so the profile reads per-trial — including trials that ran in workers.
    """
    if timeline:
        path = timeline if isinstance(timeline, str) else None
        with obs_recorder.recording(path=path):
            return run_trials(
                trial,
                seeds=seeds,
                jobs=jobs,
                timeout_s=timeout_s,
                retries=retries,
                store=store,
                resume=resume,
            )
    if seeds is None:
        seeds = configured_seeds()
    seeds = list(seeds)
    if jobs is None:
        jobs = configured_jobs()
    if timeout_s is None:
        timeout_s = configured_trial_timeout()
    campaign_store = resolve_store(store)

    if campaign_store is None:
        if jobs == 1:
            profiler = active_profiler()
            results = []
            for seed in seeds:
                if profiler is not None:
                    with profiler.label(f"seed {seed}"):
                        results.append(_audited_call(trial, (seed,)))
                else:
                    results.append(_audited_call(trial, (seed,)))
            return AggregateMetrics.from_trials(results)
        tasks = [
            _Task(key=index, seed=seed, label=f"seed {seed}", args=(seed,))
            for index, seed in enumerate(seeds)
        ]
        values, failures, _ = _execute_parallel(
            trial, tasks, jobs, timeout_s, retries
        )
        ordered = [values[key] for key in sorted(values)]
        ordered_failures = [failures[key] for key in sorted(failures)]
        return AggregateMetrics.from_trials(ordered, failures=ordered_failures)

    tasks = [
        _Task(key=index, seed=seed, label=f"seed {seed}", args=(seed,))
        for index, seed in enumerate(seeds)
    ]
    values, failures, hit_keys = _run_stored_campaign(
        trial, tasks, campaign_store, resume, jobs, timeout_s, retries
    )
    ordered = [values[key] for key in sorted(values)]
    ordered_failures = [failures[key] for key in sorted(failures)]
    return AggregateMetrics.from_trials(
        ordered,
        failures=ordered_failures,
        cache_hits=len(hit_keys),
        executed=len(tasks) - len(hit_keys),
    )


@dataclass(frozen=True)
class SweepPoint:
    """One parameter point's slice of a sweep.

    Attributes:
        point: The parameter-point object handed to :func:`run_sweep`.
        label: Human label used in profiles and failure records.
        results: Per-seed trial return values, in seed order, for the
            seeds that succeeded.
        seeds: The seeds behind ``results`` (same order).
        failures: Seeds that kept failing (parallel campaigns only).
        cache_hits: Seeds satisfied from a campaign store instead of
            being executed (``None`` when the sweep ran without a store).
        executed: Seeds actually executed this campaign (store sweeps
            only): ``cache_hits + executed == len(seeds-swept)``.
    """

    point: Any
    label: str
    results: Tuple[Any, ...]
    seeds: Tuple[int, ...]
    failures: Tuple[TrialFailure, ...] = ()
    cache_hits: Optional[int] = None
    executed: Optional[int] = None

    @property
    def ok(self) -> bool:
        """Whether at least one seed produced a result."""
        return bool(self.results)


def run_sweep(
    trial: SweepTrialFn,
    points: Sequence[Any],
    seeds: Optional[Iterable[int]] = None,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    label_fn: Optional[Callable[[Any], str]] = None,
    timeline: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = True,
) -> List[SweepPoint]:
    """Run ``trial(point, seed)`` over a whole (point × seed) grid.

    The figure modules' sweep loops are all instances of this shape; the
    grid is flattened into independent tasks so parallelism spans points
    as well as seeds (a sweep of 5 points × 5 seeds keeps 8 workers busy).
    Returns one :class:`SweepPoint` per point, in the order given,
    regardless of completion order — bit-identical between ``jobs=1`` and
    ``jobs=N``.

    ``trial`` must be picklable for parallel runs (a module-level
    function) and ``point`` must be a picklable value; figure modules
    pass plain dicts of scalars.  With ``jobs=1`` everything runs
    in-process and exceptions propagate, as the hand-rolled loops did.

    ``label_fn(point)`` names each point in profiles and failure records
    (trials are labelled ``"<point-label> seed <seed>"``).

    ``timeline`` behaves exactly as in :func:`run_trials`.

    ``store``/``resume`` behave exactly as in :func:`run_trials`: with a
    store (or ``REPRO_STORE``), every (point, seed) trial is keyed by its
    content digest, completed trials persist across process restarts, and
    a resumed sweep skips cached trials while producing bit-identical
    :class:`SweepPoint` results; each point's ``cache_hits``/``executed``
    fields say how much came from the store.
    """
    if timeline:
        path = timeline if isinstance(timeline, str) else None
        with obs_recorder.recording(path=path):
            return run_sweep(
                trial,
                points,
                seeds=seeds,
                jobs=jobs,
                timeout_s=timeout_s,
                retries=retries,
                label_fn=label_fn,
                store=store,
                resume=resume,
            )
    if seeds is None:
        seeds = configured_seeds()
    seeds = list(seeds)
    points = list(points)
    if jobs is None:
        jobs = configured_jobs()
    if timeout_s is None:
        timeout_s = configured_trial_timeout()
    labels = [
        label_fn(point) if label_fn is not None else f"point {index}"
        for index, point in enumerate(points)
    ]
    campaign_store = resolve_store(store)

    if campaign_store is None and jobs == 1:
        profiler = active_profiler()
        sweep = []
        for index, point in enumerate(points):
            results = []
            for seed in seeds:
                if profiler is not None:
                    with profiler.label(f"{labels[index]} seed {seed}"):
                        results.append(_audited_call(trial, (point, seed)))
                else:
                    results.append(_audited_call(trial, (point, seed)))
            sweep.append(
                SweepPoint(
                    point=point,
                    label=labels[index],
                    results=tuple(results),
                    seeds=tuple(seeds),
                )
            )
        return sweep

    tasks = []
    for point_index, point in enumerate(points):
        for seed_index, seed in enumerate(seeds):
            tasks.append(
                _Task(
                    key=point_index * len(seeds) + seed_index,
                    seed=seed,
                    label=f"{labels[point_index]} seed {seed}",
                    args=(point, seed),
                )
            )
    if campaign_store is None:
        values, failures_by_key, _ = _execute_parallel(
            trial, tasks, jobs, timeout_s, retries
        )
        hit_keys: set = set()
    else:
        values, failures_by_key, hit_keys = _run_stored_campaign(
            trial, tasks, campaign_store, resume, jobs, timeout_s, retries
        )

    sweep = []
    for point_index, point in enumerate(points):
        point_results = []
        point_seeds = []
        point_failures = []
        point_hits = 0
        for seed_index, seed in enumerate(seeds):
            key = point_index * len(seeds) + seed_index
            if key in values:
                point_results.append(values[key])
                point_seeds.append(seed)
            elif key in failures_by_key:
                point_failures.append(failures_by_key[key])
            if key in hit_keys:
                point_hits += 1
        sweep.append(
            SweepPoint(
                point=point,
                label=labels[point_index],
                results=tuple(point_results),
                seeds=tuple(point_seeds),
                failures=tuple(point_failures),
                cache_hits=point_hits if campaign_store is not None else None,
                executed=(
                    len(seeds) - point_hits
                    if campaign_store is not None
                    else None
                ),
            )
        )
    return sweep


def point_mean(
    sweep_point: SweepPoint, key: str, ndigits: Optional[int] = None
) -> float:
    """Mean of one field over a point's surviving per-seed result dicts.

    ``nan`` when every seed of the point failed, so a crashed point shows
    up in a rendered table as a visible hole rather than a silent zero.
    """
    values = [result[key] for result in sweep_point.results]
    if not values:
        return float("nan")
    mean = sum(values) / len(values)
    return round(mean, ndigits) if ndigits is not None else mean


def render_table(
    title: str,
    columns: Sequence[str],
    rows: List[Dict[str, object]],
) -> str:
    """A plain fixed-width table, one row per parameter point."""
    widths = {col: max(len(col), 10) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    lines.append(rule)
    return "\n".join(lines)
