"""Multi-seed trial running, parallel sweeps and table rendering.

The paper averages each point over 5 runs (§VI-A); experiment modules
define a per-seed trial function and hand it to :func:`run_trials`, or a
per-(point, seed) function plus a parameter grid to :func:`run_sweep`.
Benchmarks honour ``REPRO_SEEDS`` / ``REPRO_SCALE`` environment knobs so
full-fidelity runs and quick CI runs share the same code.

Parallelism
-----------

Trials are embarrassingly parallel — each builds its own simulator and
RNGs from its seed — so both entry points take a ``jobs`` parameter
(default: the ``REPRO_JOBS`` env knob, itself defaulting to 1) backed by
:class:`concurrent.futures.ProcessPoolExecutor`.  ``jobs=1`` keeps
everything on the caller's thread, exactly as before.  With ``jobs>1``:

* results are reassembled in submission order, so tables are
  bit-identical to a serial run of the same seeds regardless of worker
  completion order;
* each trial runs under a per-trial wall-clock deadline (``timeout_s`` /
  ``REPRO_TRIAL_TIMEOUT``) enforced with ``SIGALRM`` inside the worker;
* a trial that raises, times out, or kills its worker process is retried
  once (``retries``) and then surfaced as a structured
  :class:`~repro.experiments.metrics.TrialFailure` instead of aborting
  the campaign.  After a worker *process* death the retry round runs
  each remaining trial in its own single-worker pool, so a
  deterministically crashing trial only takes itself down;
* observability survives the fan-out: workers return their
  :class:`~repro.obs.profile.RunProfiler` records, merged
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots, and (when
  profiling is configured) :class:`~repro.obs.kernelprof.KernelProfiler`
  snapshots, which the parent folds into its active profiler(s) /
  registry collector;
* process-wide JSONL trace sinks are sharded — worker ``k`` writes
  ``trace.k.jsonl`` next to the parent's ``trace.jsonl``.  Other sink
  types cannot cross a process boundary and raise
  :class:`~repro.errors.ConfigurationError` telling you to use
  ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.util
import os
import signal
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError, ReproError
from repro.experiments.metrics import AggregateMetrics, TrialFailure, TrialMetrics
from repro.obs import fingerprint as obs_fingerprint
from repro.obs import kernelprof as obs_kernelprof
from repro.obs import memprof as obs_memprof
from repro.obs import recorder as obs_recorder
from repro.obs import trace as obs_trace
from repro.obs.audit import audit_extras
from repro.obs.metrics import MetricsRegistry, _clear_collectors, collect_registries
from repro.obs.profile import RunProfiler, _clear_active, active_profiler

#: Per the paper: "results are averaged over 5 runs".
DEFAULT_SEEDS = (1, 2, 3, 4, 5)

TrialFn = Callable[[int], TrialMetrics]
SweepTrialFn = Callable[[Any, int], Any]


class TrialTimeout(ReproError):
    """A trial exceeded its per-trial wall-clock deadline."""


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
def configured_seeds(default: Sequence[int] = DEFAULT_SEEDS) -> List[int]:
    """Seeds to use, honouring the ``REPRO_SEEDS`` env var (a count).

    Raises:
        ConfigurationError: when ``REPRO_SEEDS`` is not a positive integer.
    """
    raw = os.environ.get("REPRO_SEEDS")
    if not raw:
        return list(default)
    try:
        count = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SEEDS must be a positive integer (a seed count), "
            f"got {raw!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(
            f"REPRO_SEEDS must be a positive integer (a seed count), "
            f"got {raw!r}"
        )
    return list(range(1, count + 1))


def scale_factor(default: float = 1.0) -> float:
    """Workload scale, honouring ``REPRO_SCALE`` (1.0 = paper scale).

    Benchmarks default to a reduced scale so the suite completes quickly;
    set ``REPRO_SCALE=1`` for paper-scale runs.

    Raises:
        ConfigurationError: when ``REPRO_SCALE`` is not a positive number.
    """
    raw = os.environ.get("REPRO_SCALE")
    if not raw:
        return default
    try:
        scale = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SCALE must be a positive number, got {raw!r}"
        ) from None
    if scale <= 0:
        raise ConfigurationError(
            f"REPRO_SCALE must be a positive number, got {raw!r}"
        )
    return scale


def configured_jobs(default: int = 1) -> int:
    """Worker processes per campaign, honouring ``REPRO_JOBS``.

    ``1`` (the default) runs everything in-process; ``0`` or ``auto``
    means one worker per CPU core.

    Raises:
        ConfigurationError: when ``REPRO_JOBS`` is not a non-negative
            integer or ``auto``.
    """
    raw = os.environ.get("REPRO_JOBS")
    if not raw:
        return default
    if raw.strip().lower() == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_JOBS must be a non-negative integer or 'auto', got {raw!r}"
        ) from None
    if jobs < 0:
        raise ConfigurationError(
            f"REPRO_JOBS must be a non-negative integer or 'auto', got {raw!r}"
        )
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def configured_trial_timeout(default: Optional[float] = None) -> Optional[float]:
    """Per-trial wall-clock deadline in seconds (``REPRO_TRIAL_TIMEOUT``).

    ``None`` (unset/empty) disables the deadline.  Only enforced for
    parallel campaigns (``jobs > 1``) on platforms with ``SIGALRM``.

    Raises:
        ConfigurationError: when ``REPRO_TRIAL_TIMEOUT`` is not a
            positive number.
    """
    raw = os.environ.get("REPRO_TRIAL_TIMEOUT")
    if not raw:
        return default
    try:
        timeout = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_TRIAL_TIMEOUT must be a positive number of seconds, "
            f"got {raw!r}"
        ) from None
    if timeout <= 0:
        raise ConfigurationError(
            f"REPRO_TRIAL_TIMEOUT must be a positive number of seconds, "
            f"got {raw!r}"
        )
    return timeout


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_init(
    shard_bases: Sequence[str],
    shard_counter: Any,
    timeline_shards: bool = False,
    profile_trials: bool = False,
    fingerprint_shards: bool = False,
) -> None:
    """Per-worker-process setup.

    Forked workers inherit the parent's process-wide observability state:
    global trace sinks (whose file handles are shared with the parent),
    the active profiler (run and kernel), memory telemetry, open registry
    collectors, and open recorder collectors.  All of it belongs to the
    parent, so drop it — workers report back through their return values
    instead — then open this worker's own JSONL trace shards and re-point
    any configured timeline recording at this worker's shard.

    ``profile_trials`` carries the parent's kernel-profiling request
    across the process boundary (start-method agnostic, unlike inherited
    globals): the worker profiles its trials and ships the stats back in
    its return value.
    """
    for sink in obs_trace.global_sinks():
        # Remove without closing: under fork the file object is shared
        # with the parent, and closing here would flush its buffer twice.
        obs_trace.remove_global_sink(sink)
    _clear_active()
    obs_kernelprof._clear_active()
    obs_kernelprof.request_profiling(profile_trials)
    obs_memprof._clear_active()
    _clear_collectors()
    obs_recorder._clear_recorder_collectors()
    if shard_bases or timeline_shards or fingerprint_shards:
        with shard_counter.get_lock():
            index = shard_counter.value
            shard_counter.value += 1
        for base in shard_bases:
            stem, ext = os.path.splitext(base)
            sink = obs_trace.JsonlSink(f"{stem}.{index}{ext}")
            obs_trace.install_global_sink(sink)
            # Workers exit through os._exit (multiprocessing skips normal
            # interpreter shutdown), so buffered tail events would be lost
            # without an explicit finalizer.  (TimelineWriter registers its
            # own finalizer when the recording opens its shard.)
            multiprocessing.util.Finalize(sink, sink.close, exitpriority=10)
        if timeline_shards:
            obs_recorder.reshard_for_worker(index)
        if fingerprint_shards:
            # The inherited config's writer (if the parent already opened
            # one) is dropped, not closed — its buffer belongs to the
            # parent (pid-guarded, like trace sinks under fork).
            obs_fingerprint.reshard_for_worker(index)


def _audited_call(trial: Callable[..., Any], args: Tuple[Any, ...]) -> Any:
    """Run one trial; wire tracing/recording summaries into its extras.

    When a process-wide trace sink is active (CLI ``--trace``), the
    trial's events are also captured in memory and run through the
    :mod:`repro.obs.audit` invariants; the per-invariant violation counts
    land in ``TrialMetrics.extras["audit"]`` so they surface as
    ``violations`` / ``audit_<invariant>`` columns in the figure tables.
    When a timeline recording is configured (``timeline=`` knob, CLI
    ``--timeline`` or ``REPRO_TIMELINE``), the flight recorders the
    trial's scenarios attach are collected and their merged series summary
    lands in ``TrialMetrics.extras["timeline"]``.  When kernel profiling
    is configured (``repro profile``, ``REPRO_PROFILE``, or an active
    :class:`~repro.obs.kernelprof.KernelProfiler`), the trial runs under
    its own profiler; the per-trial summary lands in
    ``extras["profile"]`` (the ``hot_subsystem`` / ``kernel_share``
    columns) and the handler stats fold into the enclosing profiler.
    Campaigns with none of these skip all of this.
    """
    tracing = bool(obs_trace.global_sinks())
    recording = obs_recorder.configured_recording() is not None
    profiling = obs_kernelprof.configured_profiling()
    if not tracing and not recording and not profiling:
        return trial(*args)
    capture: Optional[obs_trace.ListSink] = None
    if tracing:
        capture = obs_trace.ListSink()
        obs_trace.install_global_sink(capture)
    kernel = obs_kernelprof.KernelProfiler() if profiling else None
    try:
        with obs_recorder.collect_recorders() as recorders:
            if kernel is not None:
                with kernel.activate():
                    result = trial(*args)
            else:
                result = trial(*args)
    finally:
        if capture is not None:
            obs_trace.remove_global_sink(capture)
    if kernel is not None:
        outer = obs_kernelprof.active_kernel_profiler()
        if outer is not None:
            outer.merge(kernel)
    if isinstance(result, TrialMetrics):
        if capture is not None:
            result.extras["audit"] = audit_extras(
                [event.to_json_dict() for event in capture.events]
            )
        if recorders:
            result.extras["timeline"] = obs_recorder.merge_summaries(
                [recorder.summary() for recorder in recorders]
            )
        if kernel is not None:
            result.extras["profile"] = kernel.trial_summary()
    return result


@contextmanager
def _trial_deadline(timeout_s: Optional[float], label: str) -> Iterator[None]:
    """Raise :class:`TrialTimeout` if the block runs longer than allowed.

    Armed with ``signal.setitimer`` (not the integer-only
    ``signal.alarm``), so sub-second deadlines like ``timeout_s=0.5``
    fire at 0.5s instead of being truncated to "never".  ``None``
    disables the deadline; a non-positive value is a configuration error,
    never a silent no-op (``alarm(0)``-style "0 disarms the timer"
    semantics would make a mistyped timeout vanish without a trace).

    Uses ``SIGALRM``, which only exists on Unix and only works on the
    main thread — both true inside a ProcessPoolExecutor worker.  On
    platforms without it the deadline is silently unenforced.
    """
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(
            f"trial timeout must be a positive number of seconds "
            f"(or None to disable), got {timeout_s!r}"
        )
    if timeout_s is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise TrialTimeout(
            f"trial {label!r} exceeded its {timeout_s:g}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_task_in_worker(
    trial: Callable[..., Any],
    args: Tuple[Any, ...],
    label: str,
    timeout_s: Optional[float],
) -> Tuple[
    Any,
    Tuple[Any, ...],
    Dict[str, Dict[str, object]],
    Optional[Dict[str, object]],
]:
    """Execute one trial out-of-process and package its observability.

    Returns ``(value, profiler_records, metrics_snapshot,
    kernel_snapshot)`` where the metrics snapshot merges every registry
    the trial's simulators created and the kernel snapshot (or ``None``
    when profiling is off) carries this trial's handler stats for the
    parent to fold into its own :class:`KernelProfiler`.
    """
    profiler = RunProfiler()
    kernel = (
        obs_kernelprof.KernelProfiler()
        if obs_kernelprof.configured_profiling()
        else None
    )
    with collect_registries() as registries:
        with profiler.activate(), profiler.label(label):
            with _trial_deadline(timeout_s, label):
                if kernel is not None:
                    with kernel.activate():
                        value = _audited_call(trial, args)
                else:
                    value = _audited_call(trial, args)
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge_snapshot(registry.snapshot())
    return (
        value,
        tuple(profiler.records),
        merged.snapshot(),
        kernel.snapshot() if kernel is not None else None,
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Task:
    """One (trial, args) unit of a campaign, keyed for reassembly."""

    key: int
    seed: int
    label: str
    args: Tuple[Any, ...]


def _pool_context() -> Any:
    """Fork when available: cheap, and inherits imported trial modules."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _plan_trace_shards(context: Any) -> List[str]:
    """Decide how process-wide trace sinks behave under a fan-out.

    JSONL sinks shard (worker ``k`` writes ``<stem>.k<ext>``); anything
    else cannot cross a process boundary, so the campaign must run with
    ``jobs=1``.
    """
    bases: List[str] = []
    for sink in obs_trace.global_sinks():
        if isinstance(sink, obs_trace.JsonlSink):
            bases.append(sink.path)
        else:
            raise ConfigurationError(
                f"trace sink {type(sink).__name__} cannot follow trials into "
                f"worker processes; run with jobs=1 (--jobs 1) to keep "
                f"tracing through it"
            )
    if bases and context.get_start_method() != "fork":
        raise ConfigurationError(
            "per-worker trace shards need the 'fork' start method; run "
            "with jobs=1 (--jobs 1) to trace on this platform"
        )
    return bases


def _plan_timeline_shards(context: Any) -> bool:
    """Whether workers must shard a configured timeline recording.

    Memory-only recordings (no path) still need per-worker recorder
    collection, but summaries travel back inside the pickled trial
    results, so they work under any start method.  File-backed timelines
    shard like trace files and need ``fork``.
    """
    config = obs_recorder.configured_recording()
    if config is None:
        return False
    if config.path is not None and context.get_start_method() != "fork":
        raise ConfigurationError(
            "per-worker timeline shards need the 'fork' start method; run "
            "with jobs=1 (--jobs 1) to record a timeline on this platform"
        )
    return config.path is not None


def _plan_fingerprint_shards(context: Any) -> bool:
    """Whether workers must shard a configured fingerprint stream.

    File-backed fingerprint streams shard per worker exactly like trace
    and timeline files (fork only); a memory-only fingerprint config
    cannot follow trials into worker processes at all — its
    :class:`~repro.obs.fingerprint.EventFingerprinter` records would die
    with the worker — so it demands ``jobs=1``.
    """
    config = obs_fingerprint.configured_fingerprint()
    if config is None:
        return False
    if config.path is None:
        raise ConfigurationError(
            "an in-memory fingerprint (path=None) cannot follow trials "
            "into worker processes; give it a path or run with jobs=1 "
            "(--jobs 1)"
        )
    if context.get_start_method() != "fork":
        raise ConfigurationError(
            "per-worker fingerprint shards need the 'fork' start method; "
            "run with jobs=1 (--jobs 1) to fingerprint on this platform"
        )
    return True


def _failure_kind(error: BaseException) -> str:
    if isinstance(error, TrialTimeout):
        return "timeout"
    if isinstance(error, BrokenProcessPool):
        return "crash"
    return "error"


def _execute_parallel(
    trial: Callable[..., Any],
    tasks: Sequence[_Task],
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
) -> Tuple[Dict[int, Any], Dict[int, TrialFailure]]:
    """Fan tasks out over worker processes with retry and crash isolation.

    Returns ``(values_by_key, failures_by_key)``.  Worker profiler records
    are folded into the parent's active profiler and worker metric
    snapshots into a registry that joins any open
    :func:`collect_registries` block.
    """
    context = _pool_context()
    shard_bases = _plan_trace_shards(context)
    timeline_shards = _plan_timeline_shards(context)
    fingerprint_shards = _plan_fingerprint_shards(context)
    shard_counter = (
        context.Value("i", 0)
        if (shard_bases or timeline_shards or fingerprint_shards)
        else None
    )
    profiler = active_profiler()
    kernel = obs_kernelprof.active_kernel_profiler()
    profile_trials = obs_kernelprof.configured_profiling()
    # Created here so it registers with the caller's collector (if any);
    # every worker snapshot is merged into it.
    campaign_metrics = MetricsRegistry()

    values: Dict[int, Any] = {}
    failures: Dict[int, TrialFailure] = {}
    attempts: Dict[int, int] = {task.key: 0 for task in tasks}
    queue: List[_Task] = list(tasks)
    isolate = False  # after a worker death, retry one task per pool

    while queue:
        batch, queue = queue, []
        groups = [[task] for task in batch] if isolate else [batch]
        saw_crash = False
        for group in groups:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(group)),
                mp_context=context,
                initializer=_worker_init,
                initargs=(
                    shard_bases,
                    shard_counter,
                    timeline_shards,
                    profile_trials,
                    fingerprint_shards,
                ),
            ) as pool:
                futures = {
                    pool.submit(
                        _run_task_in_worker, trial, task.args, task.label, timeout_s
                    ): task
                    for task in group
                }
                for future, task in futures.items():
                    try:
                        value, records, snapshot, kernel_snap = future.result()
                    except BaseException as error:  # noqa: BLE001 — recorded
                        if isinstance(error, BrokenProcessPool):
                            saw_crash = True
                        attempts[task.key] += 1
                        if attempts[task.key] <= retries:
                            queue.append(task)
                        else:
                            failures[task.key] = TrialFailure(
                                label=task.label,
                                seed=task.seed,
                                kind=_failure_kind(error),
                                error=f"{type(error).__name__}: {error}",
                                attempts=attempts[task.key],
                            )
                    else:
                        values[task.key] = value
                        if profiler is not None:
                            profiler.extend(records)
                        if kernel is not None and kernel_snap is not None:
                            kernel.merge_snapshot(kernel_snap)
                        campaign_metrics.merge_snapshot(snapshot)
        if saw_crash:
            isolate = True

    return values, failures


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_trials(
    trial: TrialFn,
    seeds: Optional[Iterable[int]] = None,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    timeline: Optional[Any] = None,
) -> AggregateMetrics:
    """Run ``trial`` per seed and aggregate.

    With ``jobs=1`` (the default unless ``REPRO_JOBS`` says otherwise)
    trials run serially in-process and any exception propagates, exactly
    as before.  With ``jobs>1`` trials fan out over worker processes;
    a trial that keeps failing after ``retries`` extra attempts becomes a
    :class:`~repro.experiments.metrics.TrialFailure` on the returned
    aggregate and the campaign continues.  Results are aggregated in seed
    order either way, so the statistics are identical for both paths.

    ``timeline=True`` records a flight-recorder timeline of every trial
    in memory; ``timeline="path.jsonl"`` additionally streams it to a
    JSONL file (per-worker shards with ``jobs>1``, like trace files).
    Either way the merged series summary (peak LQT size, CDI convergence
    time, mean airtime utilization) lands on each trial's
    ``TrialMetrics.extras["timeline"]`` and surfaces as table columns.

    When a :class:`repro.obs.profile.RunProfiler` is active (CLI
    ``--metrics``), each trial's simulator runs are labelled with its seed
    so the profile reads per-trial — including trials that ran in workers.
    """
    if timeline:
        path = timeline if isinstance(timeline, str) else None
        with obs_recorder.recording(path=path):
            return run_trials(
                trial, seeds=seeds, jobs=jobs, timeout_s=timeout_s, retries=retries
            )
    if seeds is None:
        seeds = configured_seeds()
    seeds = list(seeds)
    if jobs is None:
        jobs = configured_jobs()
    if timeout_s is None:
        timeout_s = configured_trial_timeout()
    if jobs == 1:
        profiler = active_profiler()
        results = []
        for seed in seeds:
            if profiler is not None:
                with profiler.label(f"seed {seed}"):
                    results.append(_audited_call(trial, (seed,)))
            else:
                results.append(_audited_call(trial, (seed,)))
        return AggregateMetrics.from_trials(results)

    tasks = [
        _Task(key=index, seed=seed, label=f"seed {seed}", args=(seed,))
        for index, seed in enumerate(seeds)
    ]
    values, failures = _execute_parallel(trial, tasks, jobs, timeout_s, retries)
    ordered = [values[key] for key in sorted(values)]
    ordered_failures = [failures[key] for key in sorted(failures)]
    return AggregateMetrics.from_trials(ordered, failures=ordered_failures)


@dataclass(frozen=True)
class SweepPoint:
    """One parameter point's slice of a sweep.

    Attributes:
        point: The parameter-point object handed to :func:`run_sweep`.
        label: Human label used in profiles and failure records.
        results: Per-seed trial return values, in seed order, for the
            seeds that succeeded.
        seeds: The seeds behind ``results`` (same order).
        failures: Seeds that kept failing (parallel campaigns only).
    """

    point: Any
    label: str
    results: Tuple[Any, ...]
    seeds: Tuple[int, ...]
    failures: Tuple[TrialFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether at least one seed produced a result."""
        return bool(self.results)


def run_sweep(
    trial: SweepTrialFn,
    points: Sequence[Any],
    seeds: Optional[Iterable[int]] = None,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    label_fn: Optional[Callable[[Any], str]] = None,
    timeline: Optional[Any] = None,
) -> List[SweepPoint]:
    """Run ``trial(point, seed)`` over a whole (point × seed) grid.

    The figure modules' sweep loops are all instances of this shape; the
    grid is flattened into independent tasks so parallelism spans points
    as well as seeds (a sweep of 5 points × 5 seeds keeps 8 workers busy).
    Returns one :class:`SweepPoint` per point, in the order given,
    regardless of completion order — bit-identical between ``jobs=1`` and
    ``jobs=N``.

    ``trial`` must be picklable for parallel runs (a module-level
    function) and ``point`` must be a picklable value; figure modules
    pass plain dicts of scalars.  With ``jobs=1`` everything runs
    in-process and exceptions propagate, as the hand-rolled loops did.

    ``label_fn(point)`` names each point in profiles and failure records
    (trials are labelled ``"<point-label> seed <seed>"``).

    ``timeline`` behaves exactly as in :func:`run_trials`.
    """
    if timeline:
        path = timeline if isinstance(timeline, str) else None
        with obs_recorder.recording(path=path):
            return run_sweep(
                trial,
                points,
                seeds=seeds,
                jobs=jobs,
                timeout_s=timeout_s,
                retries=retries,
                label_fn=label_fn,
            )
    if seeds is None:
        seeds = configured_seeds()
    seeds = list(seeds)
    points = list(points)
    if jobs is None:
        jobs = configured_jobs()
    if timeout_s is None:
        timeout_s = configured_trial_timeout()
    labels = [
        label_fn(point) if label_fn is not None else f"point {index}"
        for index, point in enumerate(points)
    ]

    if jobs == 1:
        profiler = active_profiler()
        sweep = []
        for index, point in enumerate(points):
            results = []
            for seed in seeds:
                if profiler is not None:
                    with profiler.label(f"{labels[index]} seed {seed}"):
                        results.append(_audited_call(trial, (point, seed)))
                else:
                    results.append(_audited_call(trial, (point, seed)))
            sweep.append(
                SweepPoint(
                    point=point,
                    label=labels[index],
                    results=tuple(results),
                    seeds=tuple(seeds),
                )
            )
        return sweep

    tasks = []
    for point_index, point in enumerate(points):
        for seed_index, seed in enumerate(seeds):
            tasks.append(
                _Task(
                    key=point_index * len(seeds) + seed_index,
                    seed=seed,
                    label=f"{labels[point_index]} seed {seed}",
                    args=(point, seed),
                )
            )
    values, failures_by_key = _execute_parallel(trial, tasks, jobs, timeout_s, retries)

    sweep = []
    for point_index, point in enumerate(points):
        point_results = []
        point_seeds = []
        point_failures = []
        for seed_index, seed in enumerate(seeds):
            key = point_index * len(seeds) + seed_index
            if key in values:
                point_results.append(values[key])
                point_seeds.append(seed)
            elif key in failures_by_key:
                point_failures.append(failures_by_key[key])
        sweep.append(
            SweepPoint(
                point=point,
                label=labels[point_index],
                results=tuple(point_results),
                seeds=tuple(point_seeds),
                failures=tuple(point_failures),
            )
        )
    return sweep


def point_mean(
    sweep_point: SweepPoint, key: str, ndigits: Optional[int] = None
) -> float:
    """Mean of one field over a point's surviving per-seed result dicts.

    ``nan`` when every seed of the point failed, so a crashed point shows
    up in a rendered table as a visible hole rather than a silent zero.
    """
    values = [result[key] for result in sweep_point.results]
    if not values:
        return float("nan")
    mean = sum(values) / len(values)
    return round(mean, ndigits) if ndigits is not None else mean


def render_table(
    title: str,
    columns: Sequence[str],
    rows: List[Dict[str, object]],
) -> str:
    """A plain fixed-width table, one row per parameter point."""
    widths = {col: max(len(col), 10) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    lines.append(rule)
    return "\n".join(lines)
