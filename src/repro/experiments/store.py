"""Content-addressed campaign store: resumable, reusable trial results.

The determinism substrate (exact digests, fingerprints, ``repro
diverge``) guarantees that a trial is a pure function of its inputs: the
trial function, its parameter point, its seed, the package version, the
event-kernel scheduler, and the observability profile (tracing attaches
``extras["audit"]`` to results, so it is an input too).  That makes
caching sound — a trial keyed by the canonical digest of those inputs
has exactly one correct result, so a crashed 10⁶-trial sweep can resume
from what it already computed instead of starting over, and results are
reusable across campaigns (and PRs) that re-run the same points.

Layout::

    <root>/objects/<digest[:2]>/<digest>.json   one entry per trial
    <root>/objects/**/*.tmp                     in-flight writes (ignored)

Entries are published crash-safely (temp file + ``fsync`` + ``os.replace``
via :func:`repro.obs.durable.write_json_atomic`): a killed campaign
leaves either a complete entry or an ignorable ``*.tmp`` — never a
half-written result.  An entry that is missing, truncated, unparseable,
or whose embedded key disagrees with its filename is treated as a cache
*miss* (the trial re-runs) and counted on
:attr:`CampaignStore.corrupt_seen`; ``repro campaign gc`` deletes such
files.

Wire-up: ``run_trials(store=...)`` / ``run_sweep(store=...)`` (or
``--store PATH`` / ``REPRO_STORE``) write every completed trial through
the store and, with ``resume=True`` (the default), skip trials whose
digest is already present — reassembly stays bit-identical to an
uninterrupted run because cached values are validated to round-trip
through JSON exactly at ``put`` time.  In-flight trials (no entry yet)
simply re-run.  ``repro campaign status|resume|gc`` operates on a store
from the command line.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.metrics import TrialFailure, TrialMetrics
from repro.obs.durable import provenance_doc, repro_version, write_json_atomic

#: Bump when the entry document schema changes incompatibly; entries
#: written under another schema version read as misses, not crashes.
STORE_SCHEMA = 1

#: Separator between key-material fields (same as the fingerprint
#: encoding's field separator — it cannot appear in canonical text).
_SEP = "\x1f"


# ----------------------------------------------------------------------
# Canonical key derivation
# ----------------------------------------------------------------------
def canonical_params(value: Any) -> str:
    """Deterministic canonical text of one trial parameter value.

    Scalars encode by ``repr`` (shortest-round-trip floats, so equal
    values always encode identically); bytes by length + SHA-256;
    containers recurse with dicts in sorted key order; dataclasses (the
    figure modules' scenario specs) recurse over their declared fields.
    Objects may opt in with a ``store_key()`` (or ``fingerprint()``)
    method returning a deterministic value.

    Anything else raises :class:`~repro.errors.ConfigurationError`:
    object identity (memory addresses, default reprs) must never leak
    into a content address, because a key that varies between processes
    would silently disable caching — or worse, a key that *collides*
    would return the wrong cached result.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return repr(value)
    if isinstance(value, bytes):
        return f"bytes[{len(value)}]#{hashlib.sha256(value).hexdigest()[:16]}"
    if isinstance(value, (tuple, list)):
        inner = ",".join(canonical_params(item) for item in value)
        return f"[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(canonical_params(item) for item in value))
        return f"{{{inner}}}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{canonical_params(key)}:{canonical_params(item)}"
            for key, item in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{f.name}={canonical_params(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"<{type(value).__qualname__}({inner})>"
    for protocol in ("store_key", "fingerprint"):
        custom = getattr(value, protocol, None)
        if callable(custom):
            return f"<{type(value).__qualname__}:{canonical_params(custom())}>"
    raise ConfigurationError(
        f"cannot derive a stable campaign-store key from a "
        f"{type(value).__qualname__} parameter ({value!r}); pass scalars, "
        f"containers, or dataclasses — or give the object a store_key() "
        f"method returning a deterministic value"
    )


def trial_id(trial: Callable[..., Any]) -> str:
    """``module.qualname`` identity of a trial function."""
    func = getattr(trial, "__func__", trial)
    module = getattr(func, "__module__", None) or "?"
    name = (
        getattr(func, "__qualname__", None)
        or getattr(func, "__name__", None)
        or "?"
    )
    return f"{module}.{name}"


def observability_tags() -> Tuple[str, ...]:
    """The observability profile that shapes a trial's *result*.

    Tracing attaches ``extras["audit"]``, a timeline recording attaches
    ``extras["timeline"]``, and kernel profiling attaches
    ``extras["profile"]`` to :class:`TrialMetrics` — so a result cached
    without them must not satisfy a campaign that expects them (and vice
    versa).  The core metrics are identical either way (the
    zero-perturbation contract), but the extras are part of the value.
    """
    from repro.obs import kernelprof as obs_kernelprof
    from repro.obs import recorder as obs_recorder
    from repro.obs import trace as obs_trace

    tags: List[str] = []
    if obs_trace.global_sinks():
        tags.append("trace")
    if obs_recorder.configured_recording() is not None:
        tags.append("timeline")
    if obs_kernelprof.configured_profiling():
        tags.append("profile")
    return tuple(tags)


def task_digest(trial: Callable[..., Any], args: Tuple[Any, ...]) -> str:
    """Content address of one trial execution.

    Canonical digest of ``(trial qualname, args, repro version,
    scheduler, observability profile)``.  The seed is part of ``args``
    for both campaign shapes (``(seed,)`` and ``(point, seed)``).
    """
    from repro.sim.scheduler import configured_scheduler

    material = _SEP.join(
        (
            "repro-store-v%d" % STORE_SCHEMA,
            trial_id(trial),
            canonical_params(tuple(args)),
            repro_version(),
            configured_scheduler(),
            ",".join(observability_tags()),
        )
    )
    return hashlib.blake2b(
        material.encode("utf-8"), digest_size=16
    ).hexdigest()


# ----------------------------------------------------------------------
# Entry model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreEntry:
    """One trial's durable outcome.

    Attributes:
        key: The content address (hex digest of the trial inputs).
        trial: ``module.qualname`` of the trial function.
        label: The campaign label (e.g. ``"5x5 seed 3"``).
        seed: The trial's seed.
        kind: ``"ok"`` or a failure kind (``"error"``/``"timeout"``/
            ``"crash"``).
        value: The trial's return value (``kind == "ok"`` only).
        metrics: Merged metrics-registry snapshot of the trial, if one
            was captured (merged back into the campaign view on a hit).
        failure: The :class:`TrialFailure` record (failed entries only).
        artifacts: Paths of the JSONL artifact streams (trace/timeline/
            fingerprint bases) the trial's events were written to.
    """

    key: str
    trial: str
    label: str
    seed: int
    kind: str
    value: Any = None
    metrics: Optional[Dict[str, Any]] = None
    failure: Optional[TrialFailure] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


def _encode_value(value: Any, label: str) -> Any:
    """JSON-encode a trial value, failing fast on lossy round-trips."""
    if isinstance(value, TrialMetrics):
        doc = {
            "recall": value.recall,
            "latency_s": value.latency_s,
            "overhead_bytes": value.overhead_bytes,
            "rounds": value.rounds,
            "completed": value.completed,
            "extras": value.extras,
        }
        _check_roundtrip(doc, label)
        return {"__trial_metrics__": doc}
    _check_roundtrip(value, label)
    return value


def _check_roundtrip(value: Any, label: str) -> None:
    try:
        restored = json.loads(json.dumps(value))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"trial {label!r} returned a value the campaign store cannot "
            f"serialize ({exc}); store-backed trials must return JSON "
            f"values (dicts/lists/scalars) or TrialMetrics"
        ) from None
    if restored != value:
        raise ConfigurationError(
            f"trial {label!r} returned a value that does not survive a "
            f"JSON round-trip exactly (e.g. tuples or NaN); a cached "
            f"replay would not be bit-identical, so the campaign store "
            f"refuses to record it"
        )


def _decode_value(doc: Any) -> Any:
    if isinstance(doc, dict) and "__trial_metrics__" in doc:
        fields_doc = doc["__trial_metrics__"]
        return TrialMetrics(
            recall=fields_doc["recall"],
            latency_s=fields_doc["latency_s"],
            overhead_bytes=fields_doc["overhead_bytes"],
            rounds=fields_doc.get("rounds", 0),
            completed=fields_doc.get("completed", True),
            extras=dict(fields_doc.get("extras", {})),
        )
    return doc


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class CampaignStore:
    """A directory of content-addressed trial results.

    Safe for concurrent writers: entries are published atomically and a
    digest has exactly one correct content, so overlapping campaigns can
    share one store (last write wins with identical bytes).

    Attributes:
        root: The store directory (created on first use).
        corrupt_seen: Corrupt entries encountered by ``get``/``entries``
            since this handle was created (each read as a miss).
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self._objects = os.path.join(self.root, "objects")
        try:
            os.makedirs(self._objects, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create campaign store at {self.root!r}: {exc}"
            ) from None
        self.corrupt_seen = 0

    # ------------------------------------------------------------------
    def _entry_path(self, digest: str) -> str:
        return os.path.join(self._objects, digest[:2], f"{digest}.json")

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._entry_path(digest))

    def get(
        self, digest: str, include_failures: bool = False
    ) -> Optional[StoreEntry]:
        """The entry at ``digest``, or None (missing / corrupt / failed).

        Failure records are kept for ``campaign status`` forensics but
        are not returned as cache hits by default: a crash or timeout is
        environment-dependent, so a resumed campaign re-runs the trial
        (a deterministic error just fails identically again).
        """
        path = self._entry_path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            self.corrupt_seen += 1
            return None
        entry = self._parse_entry(doc, digest)
        if entry is None:
            self.corrupt_seen += 1
            return None
        if not include_failures and not entry.ok:
            return None
        return entry

    def _parse_entry(self, doc: Any, digest: str) -> Optional[StoreEntry]:
        if not isinstance(doc, dict):
            return None
        if doc.get("store") != STORE_SCHEMA:
            return None
        if doc.get("key") != digest:
            # Digest mismatch: tampered, renamed, or bit-rotted — never
            # trust it, just re-run the trial.
            return None
        kind = doc.get("kind")
        if kind not in ("ok", "error", "timeout", "crash"):
            return None
        if kind == "ok" and "value" not in doc:
            return None
        failure = None
        if kind != "ok":
            failure_doc = doc.get("failure")
            if not isinstance(failure_doc, dict):
                return None
            failure = TrialFailure(
                label=str(failure_doc.get("label", "")),
                seed=int(failure_doc.get("seed", -1)),
                kind=str(failure_doc.get("kind", kind)),
                error=str(failure_doc.get("error", "")),
                attempts=int(failure_doc.get("attempts", 0)),
            )
        try:
            return StoreEntry(
                key=str(doc["key"]),
                trial=str(doc.get("trial", "?")),
                label=str(doc.get("label", "")),
                seed=int(doc.get("seed", -1)),
                kind=str(kind),
                value=_decode_value(doc.get("value")),
                metrics=doc.get("metrics"),
                failure=failure,
                artifacts=dict(doc.get("artifacts", {})),
            )
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    def put_value(
        self,
        digest: str,
        trial: str,
        label: str,
        seed: int,
        value: Any,
        metrics: Optional[Dict[str, Any]] = None,
        artifacts: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Durably record one successful trial under ``digest``."""
        doc = {
            "store": STORE_SCHEMA,
            "provenance": provenance_doc(),
            "key": digest,
            "trial": trial,
            "label": label,
            "seed": seed,
            "kind": "ok",
            "value": _encode_value(value, label),
            "metrics": metrics,
            "artifacts": dict(artifacts or {}),
        }
        self._publish(digest, doc)

    def put_failure(
        self,
        digest: str,
        trial: str,
        failure: TrialFailure,
        artifacts: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a permanent failure (status/forensics; never a hit)."""
        doc = {
            "store": STORE_SCHEMA,
            "provenance": provenance_doc(),
            "key": digest,
            "trial": trial,
            "label": failure.label,
            "seed": failure.seed,
            "kind": failure.kind,
            "failure": {
                "label": failure.label,
                "seed": failure.seed,
                "kind": failure.kind,
                "error": failure.error,
                "attempts": failure.attempts,
            },
            "artifacts": dict(artifacts or {}),
        }
        self._publish(digest, doc)

    def _publish(self, digest: str, doc: Dict[str, Any]) -> None:
        path = self._entry_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_json_atomic(path, doc)

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[StoreEntry]:
        """All parseable entries (corrupt files counted, not yielded)."""
        for digest, path in self._entry_files():
            entry = self.get(digest, include_failures=True)
            if entry is not None:
                yield entry

    def _entry_files(self) -> Iterator[Tuple[str, str]]:
        if not os.path.isdir(self._objects):
            return
        for bucket in sorted(os.listdir(self._objects)):
            bucket_dir = os.path.join(self._objects, bucket)
            if not os.path.isdir(bucket_dir):
                continue
            for name in sorted(os.listdir(bucket_dir)):
                if name.endswith(".json"):
                    yield name[: -len(".json")], os.path.join(bucket_dir, name)

    def _tmp_files(self) -> List[str]:
        leftovers: List[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".tmp"):
                    leftovers.append(os.path.join(dirpath, name))
        return sorted(leftovers)

    def status(self) -> Dict[str, Any]:
        """Counts and sizes for ``repro campaign status``."""
        by_kind: Dict[str, int] = {}
        by_trial: Dict[str, int] = {}
        total_bytes = 0
        corrupt = 0
        count = 0
        for digest, path in self._entry_files():
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
            before = self.corrupt_seen
            entry = self.get(digest, include_failures=True)
            if entry is None:
                corrupt += self.corrupt_seen - before
                continue
            count += 1
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
            by_trial[entry.trial] = by_trial.get(entry.trial, 0) + 1
        return {
            "root": self.root,
            "entries": count,
            "ok": by_kind.get("ok", 0),
            "failed": count - by_kind.get("ok", 0),
            "by_kind": dict(sorted(by_kind.items())),
            "by_trial": dict(sorted(by_trial.items())),
            "corrupt": corrupt,
            "tmp": len(self._tmp_files()),
            "bytes": total_bytes,
        }

    def gc(self, failed: bool = False) -> Dict[str, int]:
        """Remove junk: ``*.tmp`` leftovers and corrupt entries always,
        failure records too with ``failed=True``.  Returns removal counts.
        """
        removed = {"tmp": 0, "corrupt": 0, "failed": 0}
        for path in self._tmp_files():
            try:
                os.unlink(path)
                removed["tmp"] += 1
            except OSError:
                pass
        for digest, path in list(self._entry_files()):
            before = self.corrupt_seen
            entry = self.get(digest, include_failures=True)
            if entry is None and self.corrupt_seen > before:
                try:
                    os.unlink(path)
                    removed["corrupt"] += 1
                except OSError:
                    pass
            elif failed and entry is not None and not entry.ok:
                try:
                    os.unlink(path)
                    removed["failed"] += 1
                except OSError:
                    pass
        return removed


# ----------------------------------------------------------------------
# Resolution (knob / env)
# ----------------------------------------------------------------------
def configured_store_path(default: Optional[str] = None) -> Optional[str]:
    """The campaign-store path in effect (``REPRO_STORE`` env knob)."""
    raw = os.environ.get("REPRO_STORE")
    if not raw:
        return default
    return raw


def resolve_store(store: Any) -> Optional[CampaignStore]:
    """Normalize the ``store=`` knob: None → env, path → CampaignStore."""
    if store is None:
        store = configured_store_path()
    if store is None or store is False:
        return None
    if isinstance(store, CampaignStore):
        return store
    if isinstance(store, (str, os.PathLike)):
        return CampaignStore(os.fspath(store))
    raise ConfigurationError(
        f"store must be a path or CampaignStore, got {store!r}"
    )
