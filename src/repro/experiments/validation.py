"""Cross-cutting invariant checks for running scenarios.

Debugging distributed protocols is mostly about noticing when global
invariants quietly break.  These checkers walk a scenario's state and
report violations; integration tests run them after end-to-end flows, and
they are handy interactively when extending the protocol.

All checks return a list of human-readable violation strings (empty =
healthy) rather than raising, so a test can assert emptiness and print
everything at once.
"""

from __future__ import annotations

from typing import List

from repro.data import attributes as attr
from repro.experiments.scenario import Scenario


def check_metadata_payload_consistency(scenario: Scenario) -> List[str]:
    """Every stored chunk must be advertised by live metadata (§II-C)."""
    violations = []
    for node_id, device in scenario.devices.items():
        store = device.store
        for chunk in list(store.match_chunks(_all())):
            if not store.has_metadata(chunk.item_descriptor):
                violations.append(
                    f"node {node_id}: chunk {chunk.descriptor!r} stored but "
                    "its item metadata is missing"
                )
    return violations


def check_cdi_hop_soundness(scenario: Scenario, item) -> List[str]:
    """CDI hop counts may be stale but never wildly invalid.

    A CDI entry's neighbor must have been a known node, and hop counts
    must be non-negative and bounded by the network size.
    """
    violations = []
    bound = max(1, len(scenario.devices))
    item = item.item_descriptor()
    for node_id, device in scenario.devices.items():
        for chunk_id in device.cdi_table.known_chunks(item):
            for entry in device.cdi_table.best_entries(item, chunk_id):
                if entry.hop_count < 0 or entry.hop_count > bound:
                    violations.append(
                        f"node {node_id}: chunk {chunk_id} hop count "
                        f"{entry.hop_count} outside [0, {bound}]"
                    )
                if entry.neighbor == node_id:
                    violations.append(
                        f"node {node_id}: CDI entry points at itself"
                    )
    return violations


def check_store_chunk_ids_valid(scenario: Scenario) -> List[str]:
    """Chunk ids must be consistent with their item's declared count."""
    violations = []
    for node_id, device in scenario.devices.items():
        for chunk in device.store.match_chunks(_all()):
            declared = chunk.item_descriptor.get(attr.TOTAL_CHUNKS)
            if declared is not None and chunk.chunk_id >= int(declared):
                violations.append(
                    f"node {node_id}: chunk id {chunk.chunk_id} >= declared "
                    f"total {declared} for {chunk.item_descriptor!r}"
                )
    return violations


def check_queue_hygiene(scenario: Scenario) -> List[str]:
    """At quiescence no node should hold leftover queued traffic."""
    violations = []
    for node_id, device in scenario.devices.items():
        face = device.face
        if face.bucket.queue_length:
            violations.append(
                f"node {node_id}: {face.bucket.queue_length} frames stuck "
                "in the leaky bucket"
            )
        if face.radio.queue_length:
            violations.append(
                f"node {node_id}: {face.radio.queue_length} frames stuck "
                "in the OS buffer"
            )
        if face.sender.outstanding:
            violations.append(
                f"node {node_id}: {face.sender.outstanding} frames still "
                "awaiting acks"
            )
    return violations


def check_all(scenario: Scenario, item=None) -> List[str]:
    """Run every applicable checker."""
    violations = []
    violations += check_metadata_payload_consistency(scenario)
    violations += check_store_chunk_ids_valid(scenario)
    if item is not None:
        violations += check_cdi_hop_soundness(scenario, item)
    return violations


def _all():
    from repro.data.predicate import QuerySpec

    return QuerySpec()
