"""Experiment harness: scenarios, workloads, metrics, figure modules."""

from repro.experiments.metrics import AggregateMetrics, TrialMetrics
from repro.experiments.runner import (
    DEFAULT_SEEDS,
    configured_seeds,
    render_table,
    run_trials,
    scale_factor,
)
from repro.experiments.scenario import (
    DEFAULT_RADIO_RANGE,
    Scenario,
    build_campus_scenario,
    build_grid_scenario,
    simulation_device_config,
)
from repro.experiments.workload import (
    distribute_chunks,
    distribute_metadata,
    distribute_small_items,
    generate_metadata,
    make_video_item,
    sensor_descriptor,
)

__all__ = [
    "AggregateMetrics",
    "DEFAULT_RADIO_RANGE",
    "DEFAULT_SEEDS",
    "Scenario",
    "TrialMetrics",
    "build_campus_scenario",
    "build_grid_scenario",
    "configured_seeds",
    "distribute_chunks",
    "distribute_metadata",
    "distribute_small_items",
    "generate_metadata",
    "make_video_item",
    "render_table",
    "run_trials",
    "scale_factor",
    "sensor_descriptor",
    "simulation_device_config",
]
