"""Experiment harness: scenarios, workloads, metrics, figure modules."""

from repro.experiments.metrics import AggregateMetrics, TrialFailure, TrialMetrics
from repro.experiments.runner import (
    DEFAULT_SEEDS,
    SweepPoint,
    TrialTimeout,
    configured_jobs,
    configured_seeds,
    configured_trial_timeout,
    point_mean,
    render_table,
    run_sweep,
    run_trials,
    scale_factor,
)
from repro.experiments.store import (
    CampaignStore,
    StoreEntry,
    canonical_params,
    configured_store_path,
    resolve_store,
    task_digest,
)
from repro.experiments.scenario import (
    DEFAULT_RADIO_RANGE,
    Scenario,
    build_campus_scenario,
    build_grid_scenario,
    simulation_device_config,
)
from repro.experiments.workload import (
    distribute_chunks,
    distribute_metadata,
    distribute_small_items,
    generate_metadata,
    make_video_item,
    sensor_descriptor,
)

__all__ = [
    "AggregateMetrics",
    "CampaignStore",
    "DEFAULT_RADIO_RANGE",
    "DEFAULT_SEEDS",
    "Scenario",
    "StoreEntry",
    "SweepPoint",
    "TrialFailure",
    "TrialMetrics",
    "TrialTimeout",
    "build_campus_scenario",
    "build_grid_scenario",
    "canonical_params",
    "configured_jobs",
    "configured_seeds",
    "configured_store_path",
    "configured_trial_timeout",
    "distribute_chunks",
    "distribute_metadata",
    "distribute_small_items",
    "generate_metadata",
    "make_video_item",
    "point_mean",
    "render_table",
    "resolve_store",
    "run_sweep",
    "run_trials",
    "scale_factor",
    "task_digest",
    "sensor_descriptor",
    "simulation_device_config",
]
