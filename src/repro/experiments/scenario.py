"""Scenario builders: assembled simulations ready for a workload.

Two families, mirroring §VI-A:

* **static grid** — ``rows×cols`` nodes spaced so each reaches its 8
  surrounding neighbors; the consumer sits at the centre (multiple
  consumers come from the central 5×5 subgrid);
* **campus mobility** — devices placed and moved by an observation-based
  trace (student center / classrooms), with joins and leaves.

The builder owns the per-seed RNG registry so every run is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.messages import reset_message_ids
from repro.mobility.campus import CampusScenario, CampusTrace, generate_campus_trace
from repro.mobility.trace import TracePlayer
from repro.net.medium import BroadcastMedium
from repro.net.message import reset_frame_ids
from repro.net.radio import RadioConfig
from repro.net.stats import NetworkStats
from repro.net.topology import (
    NodeId,
    Topology,
    build_grid,
    center_node,
    center_subgrid,
)
from repro.node.config import DeviceConfig
from repro.node.device import Device
from repro.obs.memprof import memory_phase
from repro.obs.recorder import FlightRecorder, configured_recording
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator

#: Radio range used throughout the evaluation scenarios.
DEFAULT_RADIO_RANGE = 40.0

#: Campus scenarios use outdoor-WiFi range: 20 random nodes in 120×120 m²
#: stay connected w.h.p. at 55 m, matching the paper's ≈100% mobile recall
#: (at 40 m the random placement partitions regularly, which the paper's
#: observations evidently did not).
CAMPUS_RADIO_RANGE = 55.0


def simulation_device_config() -> DeviceConfig:
    """Device config for multi-hop simulations.

    The prototype-measured leaky bucket and ack parameters are kept; the
    radio queue is deepened (the paper ports measured *rates* into NS-3
    rather than the 1 MB Android buffer, and NS-3's WiFi queues are ample).
    The leaky bucket still bounds bursts.
    """
    return DeviceConfig(radio=RadioConfig(os_buffer_bytes=8_000_000))


@dataclass
class Scenario:
    """A ready-to-run simulation: kernel, medium, devices, consumers."""

    sim: Simulator
    topology: Topology
    medium: BroadcastMedium
    devices: Dict[NodeId, Device]
    consumers: List[NodeId]
    rngs: RngRegistry
    seed: int
    trace_player: Optional[TracePlayer] = None
    extras: dict = field(default_factory=dict)

    @property
    def stats(self) -> NetworkStats:
        """The shared transmission counters (message-overhead metric)."""
        return self.medium.stats

    def device(self, node_id: NodeId) -> Device:
        """The device of one node."""
        return self.devices[node_id]

    def workload_rng(self) -> random.Random:
        """The RNG stream for workload placement."""
        return self.rngs.stream("workload")


def _attach_recorder(scenario: Scenario) -> Scenario:
    """Start a flight recorder on the scenario when recording is configured.

    No-op (and no simulator events scheduled) otherwise — the zero-cost
    contract for unrecorded runs lives here.  Both builders funnel their
    finished world through here, which also makes it the ``setup`` phase
    boundary for memory telemetry — and the point where the per-run id
    spaces (message ids, frame ids) rewind, so every run mints the same
    deterministic id sequence regardless of what else ran in the process
    first (the determinism fingerprint depends on this).
    """
    reset_message_ids()
    reset_frame_ids()
    config = configured_recording()
    if config is not None:
        recorder = FlightRecorder(
            scenario.sim,
            scenario.topology,
            scenario.medium,
            scenario.devices,
            interval_s=config.interval_s,
            keyframe_every=config.keyframe_every,
            writer=config.writer(),
        )
        scenario.extras["recorder"] = recorder.start()
    memory_phase("setup")
    return scenario


def _make_device(
    scenario_parts: dict,
    node_id: NodeId,
    rngs: RngRegistry,
    config: DeviceConfig,
) -> Device:
    return Device(
        scenario_parts["sim"],
        scenario_parts["medium"],
        node_id,
        rngs.stream(f"device-{node_id}"),
        config,
    )


def build_grid_scenario(
    rows: int = 10,
    cols: int = 10,
    seed: int = 0,
    radio_range: float = DEFAULT_RADIO_RANGE,
    device_config: Optional[DeviceConfig] = None,
    n_consumers: int = 1,
) -> Scenario:
    """The paper's static scenario (§VI-A).

    One consumer sits at the grid centre; additional consumers are drawn
    from the central 5×5 subgrid at random.
    """
    if device_config is None:
        device_config = simulation_device_config()
    rngs = RngRegistry(seed)
    sim = Simulator()
    topology, node_ids = build_grid(rows, cols, radio_range=radio_range)
    medium = BroadcastMedium(sim, topology, rngs.stream("medium"))
    parts = {"sim": sim, "medium": medium}
    devices = {
        node_id: _make_device(parts, node_id, rngs, device_config)
        for node_id in node_ids
    }
    consumers = [center_node(rows, cols, node_ids)]
    if n_consumers > 1:
        pool = [
            node_id
            for node_id in center_subgrid(rows, cols, node_ids, sub=5)
            if node_id not in consumers
        ]
        picker = rngs.stream("consumers")
        extra = picker.sample(pool, min(n_consumers - 1, len(pool)))
        consumers.extend(extra)
    return _attach_recorder(
        Scenario(
            sim=sim,
            topology=topology,
            medium=medium,
            devices=devices,
            consumers=consumers,
            rngs=rngs,
            seed=seed,
        )
    )


def build_campus_scenario(
    campus: CampusScenario,
    seed: int = 0,
    frequency_scale: float = 1.0,
    duration_s: float = 300.0,
    radio_range: float = CAMPUS_RADIO_RANGE,
    device_config: Optional[DeviceConfig] = None,
    n_consumers: int = 1,
) -> Scenario:
    """A mobile scenario driven by an observation-based campus trace.

    Consumers are picked uniformly from the initially present nodes
    ("consumers are picked randomly from all nodes", §VI-A).
    """
    if device_config is None:
        device_config = simulation_device_config()
    rngs = RngRegistry(seed)
    sim = Simulator()
    topology = Topology(radio_range=radio_range)
    medium = BroadcastMedium(sim, topology, rngs.stream("medium"))
    parts = {"sim": sim, "medium": medium}

    trace: CampusTrace = generate_campus_trace(
        campus,
        duration_s=duration_s,
        rng=rngs.stream("mobility"),
        frequency_scale=frequency_scale,
    )
    devices: Dict[NodeId, Device] = {}
    for node_id in trace.initial_nodes:
        topology.add_node(node_id, trace.initial_positions[node_id])
        devices[node_id] = _make_device(parts, node_id, rngs, device_config)

    def factory(node_id: NodeId) -> Device:
        return _make_device(parts, node_id, rngs, device_config)

    player = TracePlayer(sim, topology, devices, device_factory=factory)
    player.schedule(trace.events)

    picker = rngs.stream("consumers")
    consumers = picker.sample(
        trace.initial_nodes, min(n_consumers, len(trace.initial_nodes))
    )
    return _attach_recorder(
        Scenario(
            sim=sim,
            topology=topology,
            medium=medium,
            devices=devices,
            consumers=consumers,
            rngs=rngs,
            seed=seed,
            trace_player=player,
            extras={"trace": trace},
        )
    )
