"""EXPERIMENTS.md generator: paper targets vs measured tables.

Benchmarks write one rendered table per figure to
``benchmarks/results/<id>.txt``; this module assembles them, together with
the paper's reported numbers and the qualitative shape each figure must
exhibit, into the repository's EXPERIMENTS.md.

Regenerate with::

    python -m repro.experiments.report [results_dir] [output_md]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: Per-figure reproduction contract: what the paper reports, and which
#: qualitative shape our tables must show.
@dataclass(frozen=True)
class FigureTarget:
    figure_id: str
    title: str
    paper_reports: str
    shape: str


TARGETS: List[FigureTarget] = [
    FigureTarget(
        "fig3",
        "Fig. 3 — single-hop reception (prototype)",
        "raw UDP ≈10–14%; leaky bucket 40–90% falling with senders; "
        "bucket+ack 85–99%.",
        "raw crushed by OS-buffer overflow; bucket degrades with "
        "contention; ack recovers most losses.",
    ),
    FigureTarget(
        "lbparams",
        "§V-4 — LeakingRate / BucketCapacity exploration",
        "reception >97% until the leak rate exceeds the broadcast budget, "
        "then drops; large capacities overflow the OS buffer; best "
        "300 KB / 4.5 Mbps.",
        "cliff past the MAC rate on the leak-rate sweep; monotone decline "
        "on the capacity sweep.",
    ),
    FigureTarget(
        "retrparams",
        "§V-4 — RetrTimeout / MaxRetrTime exploration",
        "reception improves then plateaus beyond ≈0.2 s timeout and "
        "≈4 retries.",
        "more retries help with diminishing returns.",
    ),
    FigureTarget(
        "saturation",
        "§VI-B — single-round PDD saturation scan (no ack)",
        "recall ≈0.35 (1 copy) / ≈0.55 (2 copies ≤5k entries), degrading "
        "beyond ≈10,000 entries.",
        "recall declines with load; redundancy helps; never complete.",
    ),
    FigureTarget(
        "fig4",
        "Fig. 4 — single-round PDD vs grid size",
        "recall 100% → 72.3% for 3×3 → 11×11 (1–5 hops); latency/overhead "
        "0.3 s/0.04 MB → 3.5 s/1.71 MB.",
        "recall falls and cost rises monotonically with network radius.",
    ),
    FigureTarget(
        "fig5",
        "Fig. 5 — multi-round PDD vs T and T_d (T_r = 0)",
        "recall stabilises for T ≥ 0.6–0.8 s; T_d=0 reaches 1.0 vs ≈0.95 "
        "at T_d=0.3; smaller T_d costs more rounds/latency/overhead "
        "(5.6 s/5.13 MB vs 3.4 s/3.85 MB).",
        "T_d=0 maximises recall at extra cost; larger windows help.",
    ),
    FigureTarget(
        "fig6",
        "Fig. 6 — multi-round PDD vs metadata amount",
        "recall 100% from 5k to 20k entries; latency 5.6 → 11.2 s "
        "(sublinear); overhead 5.13 → 22.21 MB (≈linear).",
        "full recall under stress; sublinear latency; linear overhead.",
    ),
    FigureTarget(
        "fig7",
        "Fig. 7 — PDD with sequential consumers",
        "≈100% recall for all; latency 5–7 s (first two) shrinking to "
        "0.2 s for the 5th, which had cached >95% beforehand.",
        "later consumers are drastically faster (overheard caching).",
    ),
    FigureTarget(
        "fig8",
        "Fig. 8 — PDD with simultaneous consumers",
        "100% recall; per-consumer latency grows sublinearly then "
        "stabilises (mixedcast).",
        "5 consumers cost far less than 5 independent discoveries.",
    ),
    FigureTarget(
        "fig9_10",
        "Figs. 9–10 — PDD under mobility",
        "recall ≈100%, latency ≤2 s, overhead ≤3 MB at every churn scale "
        "0.5×–2× in both locations.",
        "flat recall/latency across the mobility range.",
    ),
    FigureTarget(
        "fig11",
        "Fig. 11 — PDR vs item size",
        "recall 100%; 8.2 s/4.83 MB at 1 MB → 46.1 s/54.22 MB at 20 MB "
        "(≈linear); overhead ≈2–3× item size.",
        "≈linear growth; overhead a small multiple of the item size.",
    ),
    FigureTarget(
        "fig12",
        "Fig. 12 — PDR under mobility (20 MB)",
        "latency ≈42–48 s flat across 0.5×–2× mobility; overhead "
        "24–27 MB; recall 100%.",
        "no blow-up as churn doubles.",
    ),
    FigureTarget(
        "fig13_14",
        "Figs. 13–14 — PDR vs MDR under redundancy (20 MB)",
        "r=1: MDR slightly better (10.7 s/51.34 MB vs 13.5 s/54.22 MB); "
        "r=5: MDR 27.6 s/94.23 MB vs PDR 11.9 s/45.98 MB — MDR ≈linear "
        "growth, PDR flat/decreasing, ending ≈half of MDR.",
        "crossover at low redundancy; MDR grows, PDR flat or better.",
    ),
    FigureTarget(
        "fig15",
        "Fig. 15 — PDR with sequential consumers (20 MB)",
        "recall 100%; latency 46.1 → 38.1 s; overhead 54.22 → 23.11 MB "
        "from 1st to 5th consumer.",
        "later consumers far cheaper (chunks cached closer).",
    ),
    FigureTarget(
        "fig16",
        "Fig. 16 — PDR with simultaneous consumers (20 MB)",
        "latency and overhead first increase then stabilise with more "
        "consumers.",
        "growth flattens as consumers share transmissions.",
    ),
]

#: Extension ablations (not paper figures) included for completeness.
ABLATIONS = [
    ("ablation_redundancy_detection", "Bloom redundancy detection on/off"),
    ("ablation_ack", "per-hop ack/retransmission on/off"),
    ("ablation_caching", "opportunistic chunk caching on/off"),
    ("ablation_lingering_vs_interest", "lingering queries vs one-shot Interests (§VIII)"),
]

HEADER = """# EXPERIMENTS — paper vs measured

Every table below is regenerated by `pytest benchmarks/ --benchmark-only`
(tables land in `benchmarks/results/`).  The numbers shown here come from
a paper-scale run (`REPRO_SCALE=1 REPRO_SEEDS=2`), snapshotted in
`benchmarks/results_paper_scale/`; the benchmark suite's default is a
reduced scale (`REPRO_SCALE=0.25`) for quick turnaround.  Rebuild this
file with `python -m repro.experiments.report benchmarks/results_paper_scale
EXPERIMENTS.md` after a fresh paper-scale run.

**How to read this document.**  Absolute values are *not* expected to
match the paper — the substrate is an event-driven medium model calibrated
to the prototype's single-hop parameters, not the authors' NS-3 + testbed
(see DESIGN.md §2 and §6).  What must match, and does, is each figure's
*shape*: who wins, monotonicity, crossovers, and robustness claims.
Notable systematic offsets: our multi-hop overhead ratios run ≈2× the
paper's (more conservative spatial reuse in the medium model), and
large-item latencies are correspondingly higher.
"""


def read_results(results_dir: Path) -> Dict[str, str]:
    """Load every recorded table, keyed by figure id."""
    tables = {}
    if results_dir.is_dir():
        for path in sorted(results_dir.glob("*.txt")):
            tables[path.stem] = path.read_text().rstrip()
    return tables


def build_experiments_md(results_dir: Path) -> str:
    """Assemble the full EXPERIMENTS.md text."""
    tables = read_results(results_dir)
    parts = [HEADER]
    parts.append("## Paper figures\n")
    for target in TARGETS:
        parts.append(f"### {target.title}\n")
        parts.append(f"**Paper reports:** {target.paper_reports}\n")
        parts.append(f"**Shape to reproduce:** {target.shape}\n")
        table = tables.get(target.figure_id)
        if table:
            parts.append("**Measured:**\n")
            parts.append("```")
            parts.append(table)
            parts.append("```\n")
        else:
            parts.append(
                "_No recorded table — run "
                f"`pytest benchmarks/ --benchmark-only -k {target.figure_id}`._\n"
            )
    parts.append("## Extension ablations (beyond the paper)\n")
    for figure_id, description in ABLATIONS:
        parts.append(f"### {description}\n")
        table = tables.get(figure_id)
        if table:
            parts.append("```")
            parts.append(table)
            parts.append("```\n")
        else:
            parts.append("_No recorded table yet._\n")
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    results_dir = Path(args[0]) if args else Path("benchmarks/results")
    output = Path(args[1]) if len(args) > 1 else Path("EXPERIMENTS.md")
    output.write_text(build_experiments_md(results_dir))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
