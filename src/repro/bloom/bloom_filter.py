"""The Bloom filter carried inside PDS queries (§III-B-2, §V-3).

The filter supports the operations the protocol needs:

* membership insert/test on arbitrary byte keys (descriptor stable keys),
* a *seed* identifying the hash family, varied per discovery round,
* in-place union (used when a node merges knowledge into a lingering
  query's cached filter),
* wire-size accounting for message-overhead metrics.

Bloom filters guarantee no false negatives; false positives occur at a
controlled rate.  Property tests in ``tests/bloom`` verify both.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bloom.hashing import indexes
from repro.bloom.sizing import (
    DEFAULT_FALSE_POSITIVE_RATE,
    expected_false_positive_rate,
    optimal_parameters,
)
from repro.errors import ConfigurationError


class BloomFilter:
    """A fixed-size Bloom filter over byte-string keys."""

    __slots__ = ("m_bits", "k_hashes", "seed", "_bits", "count")

    def __init__(self, m_bits: int, k_hashes: int, seed: int = 0) -> None:
        if m_bits <= 0:
            raise ConfigurationError(f"m_bits must be positive, got {m_bits}")
        if k_hashes <= 0:
            raise ConfigurationError(f"k_hashes must be positive, got {k_hashes}")
        self.m_bits = m_bits
        self.k_hashes = k_hashes
        self.seed = seed
        self._bits = bytearray((m_bits + 7) // 8)
        #: Number of insert() calls (an upper bound on distinct elements).
        self.count = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_capacity(
        cls,
        expected_elements: int,
        false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
        seed: int = 0,
    ) -> "BloomFilter":
        """Build an optimally sized filter for the expected load."""
        m_bits, k_hashes = optimal_parameters(expected_elements, false_positive_rate)
        return cls(m_bits, k_hashes, seed)

    @classmethod
    def empty(cls, seed: int = 0) -> "BloomFilter":
        """A minimal filter representing the empty set."""
        return cls.for_capacity(0, seed=seed)

    # ------------------------------------------------------------------
    def insert(self, key: bytes) -> None:
        """Add ``key`` to the set."""
        for index in indexes(key, self.seed, self.k_hashes, self.m_bits):
            self._bits[index >> 3] |= 1 << (index & 7)
        self.count += 1

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[index >> 3] & (1 << (index & 7))
            for index in indexes(key, self.seed, self.k_hashes, self.m_bits)
        )

    def insert_all(self, keys: Iterable[bytes]) -> None:
        """Add every key in ``keys``."""
        for key in keys:
            self.insert(key)

    def union_update(self, other: "BloomFilter") -> None:
        """In-place union with a filter of identical geometry and seed.

        Raises:
            ConfigurationError: on geometry/seed mismatch (the union of
                differently hashed filters is not meaningful).
        """
        if (
            other.m_bits != self.m_bits
            or other.k_hashes != self.k_hashes
            or other.seed != self.seed
        ):
            raise ConfigurationError("cannot union Bloom filters of different geometry")
        for i, byte in enumerate(other._bits):
            self._bits[i] |= byte
        self.count += other.count

    def copy(self) -> "BloomFilter":
        """An independent copy."""
        clone = BloomFilter(self.m_bits, self.k_hashes, self.seed)
        clone._bits = bytearray(self._bits)
        clone.count = self.count
        return clone

    # ------------------------------------------------------------------
    def wire_size(self) -> int:
        """Serialized size in bytes: bit array + small fixed header."""
        return len(self._bits) + 6  # m(3B), k(1B), seed(2B) in a compact coding

    def trace_fields(self) -> dict:
        """JSON-safe snapshot (geometry + bit array) for trace events.

        The offline audit rebuilds the filter from these fields to test
        membership exactly — Bloom filters have no false negatives, so a
        key found *inside* a query's issued filter that still appears in a
        response is a certain redundancy violation.
        """
        return {
            "bloom_m": self.m_bits,
            "bloom_k": self.k_hashes,
            "bloom_seed": self.seed,
            "bloom_bits": bytes(self._bits).hex(),
        }

    @classmethod
    def from_trace_fields(cls, fields: dict) -> "BloomFilter":
        """Rebuild a filter from :meth:`trace_fields` output."""
        bloom = cls(
            int(fields["bloom_m"]),
            int(fields["bloom_k"]),
            int(fields.get("bloom_seed", 0)),
        )
        bloom._bits = bytearray.fromhex(str(fields["bloom_bits"]))
        return bloom

    def estimated_false_positive_rate(self) -> float:
        """Analytical FP rate at the current load."""
        return expected_false_positive_rate(self.m_bits, self.k_hashes, self.count)

    def fill_ratio(self) -> float:
        """Fraction of bits set (diagnostic)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.m_bits

    def __repr__(self) -> str:
        return (
            f"BloomFilter(m={self.m_bits}, k={self.k_hashes}, "
            f"seed={self.seed}, count={self.count})"
        )


class NullFilter:
    """A filter that contains nothing and ignores inserts.

    Used when redundancy detection is disabled (e.g. single-round PDD
    baselines) so protocol code can treat the filter uniformly.
    """

    seed = 0

    def insert(self, key: bytes) -> None:
        """Ignore the key (the null set absorbs nothing)."""
        pass

    def insert_all(self, keys: Iterable[bytes]) -> None:  # noqa: D102
        pass

    def __contains__(self, key: bytes) -> bool:
        return False

    def copy(self) -> "NullFilter":  # noqa: D102
        return self

    def wire_size(self) -> int:  # noqa: D102
        return 0

    def trace_fields(self) -> dict:  # noqa: D102
        return {}


#: Either a real Bloom filter or the null object.
FilterLike = object


#: Capacity headroom for en-route insertions (§III-B-2): every node on a
#: flood path inserts the entries it just sent into the query's filter, so
#: the filter must be sized for more than the consumer's received set or
#: it overfills mid-path and false positives silently suppress responses.
DEFAULT_ENROUTE_HEADROOM = 600


def make_round_filter(
    received_keys: Iterable[bytes],
    round_index: int,
    false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
    max_bits: Optional[int] = None,
    headroom: int = DEFAULT_ENROUTE_HEADROOM,
) -> BloomFilter:
    """Build the per-round query filter over already-received entries.

    The seed is the round index, so every round uses a different hash family
    (§V-3).  ``max_bits`` caps the filter size; with per-round seeds the
    residual false-positive probability still decays across rounds.
    ``headroom`` reserves capacity for the entries relay nodes will insert
    en-route (roughly one path's worth of responses).
    """
    keys = list(received_keys)
    m_bits, k_hashes = optimal_parameters(
        len(keys) + max(0, headroom), false_positive_rate
    )
    if max_bits is not None and m_bits > max_bits:
        m_bits = max_bits
        k_hashes = max(1, int(round(m_bits / max(1, len(keys) + headroom) * 0.693)))
    bloom = BloomFilter(m_bits, k_hashes, seed=round_index)
    bloom.insert_all(keys)
    return bloom
