"""The Bloom filter carried inside PDS queries (§III-B-2, §V-3).

The filter supports the operations the protocol needs:

* membership insert/test on arbitrary byte keys (descriptor stable keys),
* a *seed* identifying the hash family, varied per discovery round,
* in-place union (used when a node merges knowledge into a lingering
  query's cached filter),
* wire-size accounting for message-overhead metrics.

Bloom filters guarantee no false negatives; false positives occur at a
controlled rate.  Property tests in ``tests/bloom`` verify both.

The bit array is a single Python ``int`` bitmask: insert is one ``|=`` of
the key's precomputed probe mask, membership one subset test, union one
``|`` — all C-speed big-int operations instead of a per-probe Python loop.
Bit ``i`` of the int is bit ``i`` of the filter, i.e. byte ``i // 8`` bit
``i % 8`` of the little-endian serialized array, so wire bytes are
unchanged from the historical ``bytearray`` implementation bit for bit
(``tests/bloom`` proves equivalence against a bytearray reference).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bloom.hashing import bit_mask, indexes  # noqa: F401  (indexes: reference API)
from repro.bloom.sizing import (
    DEFAULT_FALSE_POSITIVE_RATE,
    optimal_parameters,
)
from repro.errors import ConfigurationError

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - older interpreters
    def _popcount(value: int) -> int:
        return bin(value).count("1")


class BloomFilter:
    """A fixed-size Bloom filter over byte-string keys.

    ``count`` is an *upper bound on the number of distinct keys the filter
    holds*: inserting a key that already tests positive does not increment
    it (so duplicate inserts no longer inflate it), and an in-place union
    sums the two bounds (exact when the operands are disjoint, still an
    upper bound otherwise, since ``|A ∪ B| <= |A| + |B|``).
    """

    __slots__ = ("m_bits", "k_hashes", "seed", "_int", "count")

    def __init__(self, m_bits: int, k_hashes: int, seed: int = 0) -> None:
        if m_bits <= 0:
            raise ConfigurationError(f"m_bits must be positive, got {m_bits}")
        if k_hashes <= 0:
            raise ConfigurationError(f"k_hashes must be positive, got {k_hashes}")
        self.m_bits = m_bits
        self.k_hashes = k_hashes
        self.seed = seed
        self._int = 0
        #: Upper bound on distinct keys inserted (see class docstring).
        self.count = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_capacity(
        cls,
        expected_elements: int,
        false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
        seed: int = 0,
    ) -> "BloomFilter":
        """Build an optimally sized filter for the expected load."""
        m_bits, k_hashes = optimal_parameters(expected_elements, false_positive_rate)
        return cls(m_bits, k_hashes, seed)

    @classmethod
    def empty(cls, seed: int = 0) -> "BloomFilter":
        """A minimal filter representing the empty set."""
        return cls.for_capacity(0, seed=seed)

    # ------------------------------------------------------------------
    def insert(self, key: bytes) -> bool:
        """Add ``key`` to the set.

        Returns:
            True if the filter changed (the key was not already present);
            only such inserts bump ``count``.
        """
        mask = bit_mask(key, self.seed, self.k_hashes, self.m_bits)
        bits = self._int
        if bits & mask == mask:
            return False
        self._int = bits | mask
        self.count += 1
        return True

    def __contains__(self, key: bytes) -> bool:
        mask = bit_mask(key, self.seed, self.k_hashes, self.m_bits)
        return self._int & mask == mask

    def insert_all(self, keys: Iterable[bytes]) -> None:
        """Add every key in ``keys``."""
        for key in keys:
            self.insert(key)

    def union_update(self, other: "BloomFilter") -> None:
        """In-place union with a filter of identical geometry and seed.

        ``count`` becomes the sum of both bounds — an upper bound on the
        union's distinct keys, exact when the key sets are disjoint.

        Raises:
            ConfigurationError: on geometry/seed mismatch (the union of
                differently hashed filters is not meaningful).
        """
        if (
            other.m_bits != self.m_bits
            or other.k_hashes != self.k_hashes
            or other.seed != self.seed
        ):
            raise ConfigurationError("cannot union Bloom filters of different geometry")
        self._int |= other._int
        self.count += other.count

    def copy(self) -> "BloomFilter":
        """An independent copy."""
        clone = BloomFilter(self.m_bits, self.k_hashes, self.seed)
        clone._int = self._int
        clone.count = self.count
        return clone

    # ------------------------------------------------------------------
    # Serialization views
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The bit array as wire bytes (bit ``i`` → byte ``i//8`` bit ``i%8``)."""
        return self._int.to_bytes((self.m_bits + 7) // 8, "little")

    def load_bytes(self, data: bytes) -> None:
        """Restore the bit array from :meth:`to_bytes` output."""
        self._int = int.from_bytes(data, "little")

    @property
    def _bits(self) -> bytearray:
        """Legacy ``bytearray`` view of the bit array (compatibility)."""
        return bytearray(self.to_bytes())

    @_bits.setter
    def _bits(self, value) -> None:
        self.load_bytes(bytes(value))

    # ------------------------------------------------------------------
    def wire_size(self) -> int:
        """Serialized size in bytes: bit array + small fixed header."""
        return (self.m_bits + 7) // 8 + 6  # m(3B), k(1B), seed(2B) compact coding

    def trace_fields(self) -> dict:
        """JSON-safe snapshot (geometry + bit array) for trace events.

        The offline audit rebuilds the filter from these fields to test
        membership exactly — Bloom filters have no false negatives, so a
        key found *inside* a query's issued filter that still appears in a
        response is a certain redundancy violation.
        """
        return {
            "bloom_m": self.m_bits,
            "bloom_k": self.k_hashes,
            "bloom_seed": self.seed,
            "bloom_bits": self.to_bytes().hex(),
        }

    @classmethod
    def from_trace_fields(cls, fields: dict) -> "BloomFilter":
        """Rebuild a filter from :meth:`trace_fields` output."""
        bloom = cls(
            int(fields["bloom_m"]),
            int(fields["bloom_k"]),
            int(fields.get("bloom_seed", 0)),
        )
        bloom.load_bytes(bytes.fromhex(str(fields["bloom_bits"])))
        return bloom

    def estimated_false_positive_rate(self) -> float:
        """FP probability at the *actual* current fill.

        ``(set_bits / m) ** k`` — the chance an absent key's ``k`` probes
        all land on set bits.  Computed from the bit array itself, so it
        stays truthful after unions and duplicate inserts, where any
        count-based analytic estimate misreports.
        """
        return (_popcount(self._int) / self.m_bits) ** self.k_hashes

    def fill_ratio(self) -> float:
        """Fraction of bits set (diagnostic)."""
        return _popcount(self._int) / self.m_bits

    def __repr__(self) -> str:
        return (
            f"BloomFilter(m={self.m_bits}, k={self.k_hashes}, "
            f"seed={self.seed}, count={self.count})"
        )


class NullFilter:
    """A filter that contains nothing and ignores inserts.

    Used when redundancy detection is disabled (e.g. single-round PDD
    baselines) so protocol code can treat the filter uniformly.
    """

    seed = 0

    def insert(self, key: bytes) -> bool:
        """Ignore the key (the null set absorbs nothing)."""
        return False

    def insert_all(self, keys: Iterable[bytes]) -> None:  # noqa: D102
        pass

    def __contains__(self, key: bytes) -> bool:
        return False

    def copy(self) -> "NullFilter":  # noqa: D102
        return self

    def wire_size(self) -> int:  # noqa: D102
        return 0

    def trace_fields(self) -> dict:  # noqa: D102
        return {}


#: Either a real Bloom filter or the null object.
FilterLike = object


#: Capacity headroom for en-route insertions (§III-B-2): every node on a
#: flood path inserts the entries it just sent into the query's filter, so
#: the filter must be sized for more than the consumer's received set or
#: it overfills mid-path and false positives silently suppress responses.
DEFAULT_ENROUTE_HEADROOM = 600


def make_round_filter(
    received_keys: Iterable[bytes],
    round_index: int,
    false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
    max_bits: Optional[int] = None,
    headroom: int = DEFAULT_ENROUTE_HEADROOM,
) -> BloomFilter:
    """Build the per-round query filter over already-received entries.

    The seed is the round index, so every round uses a different hash family
    (§V-3).  ``max_bits`` caps the filter size; with per-round seeds the
    residual false-positive probability still decays across rounds.
    ``headroom`` reserves capacity for the entries relay nodes will insert
    en-route (roughly one path's worth of responses).
    """
    keys = list(received_keys)
    m_bits, k_hashes = optimal_parameters(
        len(keys) + max(0, headroom), false_positive_rate
    )
    if max_bits is not None and m_bits > max_bits:
        m_bits = max_bits
        k_hashes = max(1, int(round(m_bits / max(1, len(keys) + headroom) * 0.693)))
    bloom = BloomFilter(m_bits, k_hashes, seed=round_index)
    bloom.insert_all(keys)
    return bloom
