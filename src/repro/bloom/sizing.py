"""Optimal Bloom-filter sizing (§V-3).

Given an expected number of elements ``n`` and a target false-positive rate
``p``, the textbook-optimal parameters are::

    m = -n * ln(p) / (ln 2)^2        (bits)
    k = (m / n) * ln 2               (hash functions)

PDS computes a fresh, small filter per round from the number of entries
already received.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ConfigurationError

#: Default target false-positive probability the consumer aims for (§V-3).
DEFAULT_FALSE_POSITIVE_RATE = 0.01

#: Lower bound so degenerate inputs still produce a working filter.
MIN_BITS = 64


def optimal_parameters(
    expected_elements: int,
    false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
) -> Tuple[int, int]:
    """Return ``(m_bits, k_hashes)`` for the requested operating point.

    Raises:
        ConfigurationError: for non-positive rates or rates >= 1.
    """
    if not 0.0 < false_positive_rate < 1.0:
        raise ConfigurationError(
            f"false positive rate must be in (0, 1), got {false_positive_rate}"
        )
    if expected_elements <= 0:
        return MIN_BITS, 1
    m = -expected_elements * math.log(false_positive_rate) / (math.log(2) ** 2)
    m_bits = max(MIN_BITS, int(math.ceil(m)))
    k = (m_bits / expected_elements) * math.log(2)
    # Cap k: past ~32 hashes the FP gain is nil and per-probe cost real
    # (only reachable when the MIN_BITS floor dwarfs a tiny element count).
    k_hashes = max(1, min(32, int(round(k))))
    return m_bits, k_hashes


def expected_false_positive_rate(m_bits: int, k_hashes: int, elements: int) -> float:
    """The analytical false-positive probability after ``elements`` inserts."""
    if elements <= 0:
        return 0.0
    if m_bits <= 0:
        return 1.0
    fill = 1.0 - math.exp(-k_hashes * elements / m_bits)
    return fill**k_hashes
