"""Bloom filters with per-round hash families (§III-B-2, §V-3)."""

from repro.bloom.bloom_filter import BloomFilter, NullFilter, make_round_filter
from repro.bloom.sizing import (
    DEFAULT_FALSE_POSITIVE_RATE,
    expected_false_positive_rate,
    optimal_parameters,
)

__all__ = [
    "BloomFilter",
    "DEFAULT_FALSE_POSITIVE_RATE",
    "NullFilter",
    "expected_false_positive_rate",
    "make_round_filter",
    "optimal_parameters",
]
