"""Hash family for Bloom filters.

Uses the Kirsch–Mitzenmacher double-hashing construction: two independent
base hashes ``h1`` and ``h2`` combine as ``h1 + i*h2`` to simulate ``k``
independent hash functions.  The bases are seed-chained CRC32/Adler32
values (C-speed; these filters are consulted millions of times per
simulation run), where the *seed* selects the hash family — this is how
PDS varies hash functions across discovery rounds so Bloom-filter false
positives decay geometrically (§V-3).

Hot paths use :func:`bit_mask`, which batches the ``k`` probes of a key
into one integer bitmask (bit ``i`` of the mask set ⇔ bit position ``i``
of the filter probed).  Insert is then a single ``|=`` and membership a
single subset test on the filter's int-backed bit array, and the mask is
memoized per ``(key, seed, k, m)`` so re-probing a key costs one dict hit.
:func:`indexes` remains as the one-probe-at-a-time reference; the two are
definitionally identical.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Iterator

#: Golden-ratio odd constants for seed dispersion.
_SEED_MIX_1 = 0x9E3779B1
_SEED_MIX_2 = 0x85EBCA77


@lru_cache(maxsize=1 << 17)
def _base_hashes(data: bytes, seed: int) -> tuple:
    """Two seed-dependent 32-bit hashes of ``data``."""
    s1 = (seed * _SEED_MIX_1 + 1) & 0xFFFFFFFF
    s2 = (seed * _SEED_MIX_2 + 0x6B43A9B5) & 0xFFFFFFFF
    h1 = zlib.crc32(data, s1)
    # Adler32 of short uniform keys is weak on its own; fold in a second
    # CRC pass under the other seed for dispersion.
    h2 = (zlib.adler32(data, s2 | 1) ^ zlib.crc32(data, s2)) & 0xFFFFFFFF
    # h2 must be odd so strides never degenerate to zero.
    return h1, h2 | 1


def indexes(data: bytes, seed: int, k: int, m: int) -> Iterator[int]:
    """Yield the ``k`` bit positions of ``data`` in a filter of ``m`` bits."""
    h1, h2 = _base_hashes(data, seed)
    for i in range(k):
        yield (h1 + i * h2) % m


@lru_cache(maxsize=1 << 17)
def bit_mask(data: bytes, seed: int, k: int, m: int) -> int:
    """The ``k`` probe positions of ``data`` as one integer bitmask.

    Exactly ``{1 << i for i in indexes(data, seed, k, m)}`` OR-ed together
    (duplicate probe positions collapse, as they do in the bit array).
    """
    h1, h2 = _base_hashes(data, seed)
    mask = 0
    for i in range(k):
        mask |= 1 << ((h1 + i * h2) % m)
    return mask
