"""Trace playback: applies mobility events to a running simulation.

The :class:`TracePlayer` schedules every event of a trace on the simulator.
Moves update the topology; joins create fresh devices (via a caller-supplied
factory, so workload/ protocol configuration stays with the experiment);
leaves tear devices down and remove their nodes — carrying their
un-replicated data away with them, as in the paper's scenario model.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.mobility.model import MobilityEvent, MobilityEventKind
from repro.net.topology import NodeId, Position, Topology
from repro.sim.simulator import Simulator

#: Factory invoked on JOIN: receives the node id, returns the new device.
DeviceFactory = Callable[[NodeId], object]


class TracePlayer:
    """Schedules mobility events onto the simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        devices: Dict[NodeId, object],
        device_factory: Optional[DeviceFactory] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.devices = devices
        self.device_factory = device_factory
        self.joins = 0
        self.leaves = 0
        self.moves = 0

    def schedule(self, events: Iterable[MobilityEvent]) -> int:
        """Schedule all events at their absolute trace times.

        Returns:
            Number of events scheduled.
        """
        count = 0
        for event in events:
            if event.time < self.sim.now:
                continue
            self.sim.at(event.time, self._apply, event)
            count += 1
        return count

    # ------------------------------------------------------------------
    def _apply(self, event: MobilityEvent) -> None:
        if event.kind is MobilityEventKind.MOVE:
            self._move(event.node_id, event.position)
        elif event.kind is MobilityEventKind.JOIN:
            self._join(event.node_id, event.position)
        elif event.kind is MobilityEventKind.LEAVE:
            self._leave(event.node_id)

    def _move(self, node_id: NodeId, position: Position) -> None:
        if node_id in self.topology:
            self.topology.move(node_id, position)
            self.moves += 1

    def _join(self, node_id: NodeId, position: Position) -> None:
        if node_id in self.topology:
            return
        self.topology.add_node(node_id, position)
        self.joins += 1
        if self.device_factory is not None and node_id not in self.devices:
            self.devices[node_id] = self.device_factory(node_id)

    def _leave(self, node_id: NodeId) -> None:
        device = self.devices.pop(node_id, None)
        if device is not None and hasattr(device, "leave"):
            device.leave()
        if node_id in self.topology:
            self.topology.remove_node(node_id)
            self.leaves += 1
