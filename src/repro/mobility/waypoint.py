"""Random-waypoint mobility (a standard synthetic baseline).

Not used by the paper's headline figures (those use the observation-based
campus traces), but useful for sensitivity studies and examples: every node
alternates between pausing and walking to a uniformly random destination.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from repro.mobility.campus import MOVE_STEP_S, WALK_SPEED
from repro.mobility.model import AreaSpec, MobilityEvent, MobilityEventKind
from repro.net.topology import NodeId, Position


def generate_waypoint_trace(
    node_ids: List[NodeId],
    initial_positions: Dict[NodeId, Position],
    area: AreaSpec,
    duration_s: float,
    rng: random.Random,
    speed: float = WALK_SPEED,
    pause_min_s: float = 5.0,
    pause_max_s: float = 60.0,
) -> List[MobilityEvent]:
    """Generate MOVE events for all nodes over ``duration_s`` seconds."""
    events: List[MobilityEvent] = []
    for node_id in node_ids:
        t = rng.uniform(0.0, pause_max_s)
        position = initial_positions[node_id]
        while t < duration_s:
            if speed <= 0:
                break  # an immobile node generates no move events
            dest = (rng.uniform(0, area.width), rng.uniform(0, area.height))
            distance = math.hypot(dest[0] - position[0], dest[1] - position[1])
            travel = distance / speed
            steps = max(1, int(travel / MOVE_STEP_S))
            for step in range(1, steps + 1):
                frac = step / steps
                when = t + frac * travel
                if when >= duration_s:
                    break
                waypoint = (
                    position[0] + frac * (dest[0] - position[0]),
                    position[1] + frac * (dest[1] - position[1]),
                )
                events.append(
                    MobilityEvent(when, MobilityEventKind.MOVE, node_id, waypoint)
                )
            position = dest
            t += travel + rng.uniform(pause_min_s, pause_max_s)
    events.sort(key=lambda e: e.time)
    return events
