"""Mobility: campus observation traces, random waypoint, trace playback."""

from repro.mobility.campus import (
    CLASSROOMS,
    STUDENT_CENTER,
    CampusScenario,
    CampusTrace,
    generate_campus_trace,
)
from repro.mobility.model import AreaSpec, MobilityEvent, MobilityEventKind
from repro.mobility.static import place_uniform
from repro.mobility.trace import TracePlayer
from repro.mobility.waypoint import generate_waypoint_trace

__all__ = [
    "AreaSpec",
    "CLASSROOMS",
    "CampusScenario",
    "CampusTrace",
    "MobilityEvent",
    "MobilityEventKind",
    "STUDENT_CENTER",
    "TracePlayer",
    "generate_campus_trace",
    "generate_waypoint_trace",
    "place_uniform",
]
