"""Mobility event model.

Mobility is expressed as a stream of timed :class:`MobilityEvent` objects —
join, leave, and movement steps — applied to a :class:`Topology` (and, for
joins/leaves, to the device population) by a driver.  Generators
(:mod:`repro.mobility.campus`, :mod:`repro.mobility.waypoint`) produce
traces; :class:`repro.mobility.trace.TracePlayer` replays them in a
simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.net.topology import NodeId, Position


class MobilityEventKind(enum.Enum):
    """What happened."""

    JOIN = "join"
    LEAVE = "leave"
    MOVE = "move"


@dataclass(frozen=True)
class MobilityEvent:
    """One timed mobility event.

    Attributes:
        time: Absolute trace time in seconds.
        kind: join / leave / move.
        node_id: The affected node.
        position: Where the node is (JOIN and MOVE; ignored for LEAVE).
    """

    time: float
    kind: MobilityEventKind
    node_id: NodeId
    position: Position = (0.0, 0.0)


@dataclass(frozen=True)
class AreaSpec:
    """A rectangular congregation area (§VI-B: student center, classroom)."""

    width: float
    height: float

    def contains(self, position: Position) -> bool:
        x, y = position
        return 0.0 <= x <= self.width and 0.0 <= y <= self.height

    def clamp(self, position: Position) -> Position:
        x, y = position
        return (min(max(x, 0.0), self.width), min(max(y, 0.0), self.height))
