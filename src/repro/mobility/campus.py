"""Observation-based campus mobility traces (§VI-B-2).

The paper observed two university locations for 8 hours total and reports:

* **Student Center** — 120×120 m², ≈20 people present; per minute ≈1
  person joins, ≈1 leaves, ≈4 move within the area.
* **Classrooms** — 20×20 m², ≈30 people present; per minute ≈0.5 join,
  ≈0.5 leave, ≈0.5 move.

Traces are generated from these rates as Poisson processes, with a
``frequency_scale`` knob (the paper varies 0.5×–2×).  Movement is a walk
to a uniformly random destination at pedestrian speed, discretised into
per-second steps so connectivity changes smoothly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.mobility.model import AreaSpec, MobilityEvent, MobilityEventKind
from repro.net.topology import NodeId

#: Pedestrian walking speed in m/s.
WALK_SPEED = 1.2

#: Seconds between interpolated positions of a walking node.
MOVE_STEP_S = 1.0


@dataclass(frozen=True)
class CampusScenario:
    """Observed parameters of one location (§VI-B-2)."""

    name: str
    area: AreaSpec
    population: int
    joins_per_minute: float
    leaves_per_minute: float
    moves_per_minute: float


STUDENT_CENTER = CampusScenario(
    name="student_center",
    area=AreaSpec(120.0, 120.0),
    population=20,
    joins_per_minute=1.0,
    leaves_per_minute=1.0,
    moves_per_minute=4.0,
)

CLASSROOMS = CampusScenario(
    name="classrooms",
    area=AreaSpec(20.0, 20.0),
    population=30,
    joins_per_minute=0.5,
    leaves_per_minute=0.5,
    moves_per_minute=0.5,
)


@dataclass
class CampusTrace:
    """A generated trace plus the node book-keeping the driver needs."""

    scenario: CampusScenario
    frequency_scale: float
    duration_s: float
    initial_nodes: List[NodeId]
    initial_positions: dict
    events: List[MobilityEvent]
    #: Ids of nodes that join during the trace (beyond the initial set).
    joining_nodes: List[NodeId]


def generate_campus_trace(
    scenario: CampusScenario,
    duration_s: float,
    rng: random.Random,
    frequency_scale: float = 1.0,
    first_node_id: NodeId = 0,
) -> CampusTrace:
    """Generate one trace from the observed rates.

    Join/leave/move events arrive as independent Poisson processes at the
    observed per-minute rates times ``frequency_scale``.  Leaves pick a
    uniformly random present node; moves walk a present node to a uniform
    destination at walking speed with 1 s position steps.
    """
    area = scenario.area
    events: List[MobilityEvent] = []
    positions = {}
    present: List[NodeId] = []
    next_id = first_node_id
    for _ in range(scenario.population):
        positions[next_id] = (
            rng.uniform(0, area.width),
            rng.uniform(0, area.height),
        )
        present.append(next_id)
        next_id += 1
    initial_nodes = list(present)
    initial_positions = dict(positions)
    joining: List[NodeId] = []

    def poisson_times(rate_per_minute: float) -> List[float]:
        rate = rate_per_minute * frequency_scale / 60.0
        times = []
        t = 0.0
        if rate <= 0:
            return times
        while True:
            t += rng.expovariate(rate)
            if t >= duration_s:
                return times
            times.append(t)

    timeline = []
    for t in poisson_times(scenario.joins_per_minute):
        timeline.append((t, "join"))
    for t in poisson_times(scenario.leaves_per_minute):
        timeline.append((t, "leave"))
    for t in poisson_times(scenario.moves_per_minute):
        timeline.append((t, "move"))
    timeline.sort()

    # Busy-walking nodes cannot be picked for another move/leave mid-walk;
    # track until when each node walks.
    walking_until = {}

    def pickable(now: float) -> List[NodeId]:
        return [n for n in present if walking_until.get(n, 0.0) <= now]

    for t, kind in timeline:
        if kind == "join":
            position = (rng.uniform(0, area.width), rng.uniform(0, area.height))
            events.append(
                MobilityEvent(t, MobilityEventKind.JOIN, next_id, position)
            )
            positions[next_id] = position
            present.append(next_id)
            joining.append(next_id)
            next_id += 1
        elif kind == "leave":
            candidates = pickable(t)
            if not candidates:
                continue
            node = rng.choice(candidates)
            events.append(MobilityEvent(t, MobilityEventKind.LEAVE, node))
            present.remove(node)
            positions.pop(node, None)
        else:  # move
            candidates = pickable(t)
            if not candidates:
                continue
            node = rng.choice(candidates)
            start = positions[node]
            dest = (rng.uniform(0, area.width), rng.uniform(0, area.height))
            distance = math.hypot(dest[0] - start[0], dest[1] - start[1])
            travel = distance / WALK_SPEED
            steps = max(1, int(travel / MOVE_STEP_S))
            for step in range(1, steps + 1):
                frac = step / steps
                when = t + frac * travel
                if when >= duration_s:
                    break
                waypoint = (
                    start[0] + frac * (dest[0] - start[0]),
                    start[1] + frac * (dest[1] - start[1]),
                )
                events.append(
                    MobilityEvent(when, MobilityEventKind.MOVE, node, waypoint)
                )
            positions[node] = dest
            walking_until[node] = t + travel

    events.sort(key=lambda e: e.time)
    return CampusTrace(
        scenario=scenario,
        frequency_scale=frequency_scale,
        duration_s=duration_s,
        initial_nodes=initial_nodes,
        initial_positions=initial_positions,
        events=events,
        joining_nodes=joining,
    )
