"""Static placements: the no-mobility baseline scenarios.

The paper's static scenario is a 10×10 grid (built by
:func:`repro.net.topology.build_grid`); this module adds uniform random
placement inside an area, used to initialise mobile scenarios and examples.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.mobility.model import AreaSpec
from repro.net.topology import NodeId, Position, Topology


def place_uniform(
    topology: Topology,
    node_ids: List[NodeId],
    area: AreaSpec,
    rng: random.Random,
) -> Dict[NodeId, Position]:
    """Place nodes uniformly at random inside ``area``.

    Returns:
        The positions assigned, keyed by node id.
    """
    positions = {}
    for node_id in node_ids:
        position = (rng.uniform(0, area.width), rng.uniform(0, area.height))
        topology.add_node(node_id, position)
        positions[node_id] = position
    return positions
