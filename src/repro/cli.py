"""Command-line interface: regenerate any figure of the paper.

Usage::

    python -m repro list
    python -m repro fig4
    python -m repro fig13_14 --seeds 5 --scale 1.0
    python -m repro all --seeds 2 --scale 0.25
    python -m repro fig4 --jobs 4          # 4 worker processes per sweep
    python -m repro fig4 --scheduler calendar   # calendar-queue event kernel

Observability::

    python -m repro fig4 --trace out.jsonl   # JSONL event trace of the run
    python -m repro fig4 --metrics           # wall-time / events-per-second
                                             # profile after the tables
    python -m repro inspect out.jsonl        # summarize a trace file
    python -m repro bench --quick --check    # perf-regression gate
    python -m repro profile fig5 --flame out.txt   # kernel hotspots +
                                                   # flamegraph export

Determinism observatory::

    python -m repro --version                  # version stamped in every
                                               # JSONL provenance header
    python -m repro fig4 --fingerprint fp.jsonl   # chained event digests
                                                  # + checkpoint stream
    python -m repro diverge --a scheduler=heap --b scheduler=calendar
                                               # bisect two configs to the
                                               # first divergent event
    python -m repro diverge --a file=fp.jsonl --b ''   # vs recorded stream

Campaign store::

    python -m repro fig12 --store runs/store --jobs 8   # durable campaign
    python -m repro campaign resume fig12 --store runs/store   # pick up a
                                                # killed campaign where it
                                                # stopped (bit-identical)
    python -m repro campaign status --store runs/store  # what's cached
    python -m repro campaign gc --store runs/store      # sweep tmp litter

Flight recorder::

    python -m repro fig4 --timeline tl.jsonl   # record protocol state
    python -m repro inspect tl.jsonl --timeline        # sparkline views
    python -m repro inspect tl.jsonl --at 12.5         # state at t=12.5s
    python -m repro inspect tl.jsonl --diff 5 20       # what changed
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.figures import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.durable import repro_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation figures of 'Content Centric Peer "
            "Data Sharing in Pervasive Edge Computing Environments' "
            "(ICDCS 2017)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {repro_version()}",
    )
    parser.add_argument(
        "figure",
        help="figure id (see `list`), `all`, `list`, `report` "
        "(rebuild EXPERIMENTS.md from benchmarks/results), or "
        "`inspect <trace.jsonl>` (summarize a trace file)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="trace file to read (only for `inspect`)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="number of seeds per data point (paper: 5)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (paper: 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per sweep (0 = one per CPU; default: "
        "REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--scheduler",
        choices=("heap", "calendar"),
        default=None,
        help="event-kernel scheduler (sets REPRO_SCHEDULER; both are "
        "order-identical — outputs never change, only kernel speed)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="content-addressed campaign store (sets REPRO_STORE): "
        "completed trials persist and are skipped on re-runs, so a "
        "killed campaign resumes with `repro campaign resume <figure> "
        "--store DIR` producing bit-identical tables",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL event trace of every simulation to FILE "
        "(with --jobs N>1, per-worker shards FILE.0, FILE.1, ...)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="profile the run (wall time, events/sec, peak queue depth)",
    )
    parser.add_argument(
        "--timeline",
        metavar="FILE",
        nargs="?",
        const=True,
        default=None,
        help="figure runs: record a flight-recorder timeline to FILE "
        "(bare --timeline records in memory, attaching summary columns "
        "only; with --jobs N>1, per-worker shards FILE.0, ...); "
        "inspect: render per-node sparkline views of a timeline file",
    )
    parser.add_argument(
        "--fingerprint",
        metavar="FILE",
        default=None,
        help="figure runs: stream a determinism fingerprint (chained "
        "event digests + checkpoints) to FILE (with --jobs N>1, "
        "per-worker shards FILE.0, ...); compare streams with "
        "`repro diverge`",
    )
    parser.add_argument(
        "--fingerprint-every",
        type=int,
        default=None,
        metavar="K",
        help="events per fingerprint checkpoint (default: 512)",
    )
    parser.add_argument(
        "--timeline-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sim seconds between timeline samples (default: 1.0)",
    )
    parser.add_argument(
        "--keyframe-every",
        type=int,
        default=None,
        metavar="K",
        help="write a full keyframe every K timeline samples (default: 10)",
    )
    parser.add_argument(
        "--at",
        type=float,
        default=None,
        metavar="T",
        help="inspect: reconstruct exact network state at sim time T "
        "from the nearest timeline keyframe plus deltas",
    )
    parser.add_argument(
        "--diff",
        type=float,
        nargs=2,
        default=None,
        metavar=("T1", "T2"),
        help="inspect: show timeline state entries added/removed/"
        "rewritten between sim times T1 and T2",
    )
    parser.add_argument(
        "--series",
        default=None,
        metavar="NAMES",
        help="inspect --timeline: comma-separated series to render "
        "(lqt, cdi, meta, chunks, bytes, sendq, radioq, retx)",
    )
    parser.add_argument(
        "--top-nodes",
        type=int,
        default=10,
        help="how many nodes `inspect` lists in its per-node ranking",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="inspect: reconstruct per-query/per-chunk span trees with "
        "waterfall timelines",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="inspect: check protocol invariants; exit 1 on any violation",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="inspect: machine-readable JSON report instead of tables",
    )
    return parser


def _run_figures(args: argparse.Namespace) -> int:
    """Run one figure (or all), honouring --trace / --metrics / --jobs."""
    from contextlib import ExitStack

    from repro.experiments.runner import configured_jobs
    from repro.obs.fingerprint import DEFAULT_CHECKPOINT_EVERY, fingerprinting
    from repro.obs.metrics import MetricsRegistry, collect_registries
    from repro.obs.profile import RunProfiler
    from repro.obs.recorder import (
        DEFAULT_INTERVAL_S,
        DEFAULT_KEYFRAME_EVERY,
        recording,
    )
    from repro.obs.trace import JsonlSink, global_sink

    if args.figure != "all" and args.figure not in REGISTRY:
        print(
            f"unknown figure {args.figure!r}; try `python -m repro list`",
            file=sys.stderr,
        )
        return 2

    profiler = RunProfiler() if args.metrics else None
    registries: List[MetricsRegistry] = []
    with ExitStack() as stack:
        if args.trace:
            try:
                sink = JsonlSink(args.trace)
            except OSError as exc:
                print(f"cannot write trace file {args.trace}: {exc}", file=sys.stderr)
                return 2
            stack.enter_context(global_sink(sink))
        if args.timeline:
            timeline_path = (
                args.timeline if isinstance(args.timeline, str) else None
            )
            interval = (
                args.timeline_interval
                if args.timeline_interval is not None
                else DEFAULT_INTERVAL_S
            )
            keyframe = (
                args.keyframe_every
                if args.keyframe_every is not None
                else DEFAULT_KEYFRAME_EVERY
            )
            stack.enter_context(
                recording(
                    path=timeline_path,
                    interval_s=interval,
                    keyframe_every=keyframe,
                )
            )
        if args.fingerprint:
            stack.enter_context(
                fingerprinting(
                    path=args.fingerprint,
                    checkpoint_every=args.fingerprint_every
                    or DEFAULT_CHECKPOINT_EVERY,
                )
            )
        if profiler is not None:
            stack.enter_context(profiler.activate())
            registries = stack.enter_context(collect_registries())
        if args.figure == "all":
            for figure_id, module in REGISTRY.items():
                print(f"== {figure_id} ==")
                print(module.main())
                print()
        else:
            print(REGISTRY[args.figure].main())
    if args.trace:
        if configured_jobs() > 1:
            print(
                f"trace written to per-worker shards next to {args.trace}",
                file=sys.stderr,
            )
        else:
            print(f"trace written to {args.trace}", file=sys.stderr)
    if args.fingerprint:
        if configured_jobs() > 1:
            print(
                f"fingerprint written to per-worker shards next to "
                f"{args.fingerprint}",
                file=sys.stderr,
            )
        else:
            print(f"fingerprint written to {args.fingerprint}", file=sys.stderr)
    if isinstance(args.timeline, str):
        if configured_jobs() > 1:
            print(
                f"timeline written to per-worker shards next to {args.timeline}",
                file=sys.stderr,
            )
        else:
            print(f"timeline written to {args.timeline}", file=sys.stderr)
    if profiler is not None:
        print()
        print(profiler.render())
        if registries:
            merged = MetricsRegistry()
            for registry in registries:
                merged.merge_snapshot(registry.snapshot())
            print()
            print(merged.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv and raw_argv[0] == "bench":
        # The bench subcommand has its own flag set; dispatch before the
        # figure parser rejects them.
        from repro.bench import main as bench_main

        return bench_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "profile":
        from repro.profilecli import main as profile_main

        return profile_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "diverge":
        from repro.divergecli import main as diverge_main

        return diverge_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "campaign":
        from repro.campaigncli import main as campaign_main

        return campaign_main(raw_argv[1:])

    args = build_parser().parse_args(raw_argv)
    if args.seeds is not None:
        os.environ["REPRO_SEEDS"] = str(args.seeds)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.scheduler is not None:
        os.environ["REPRO_SCHEDULER"] = args.scheduler
    if args.store is not None:
        os.environ["REPRO_STORE"] = args.store

    if args.figure == "list":
        print("Available figures:")
        for figure_id, module in REGISTRY.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {figure_id:12s} {summary}")
        return 0

    if args.figure == "report":
        from repro.experiments.report import main as report_main

        return report_main([])

    if args.figure == "inspect":
        if not args.path:
            print("inspect needs a trace file: repro inspect out.jsonl", file=sys.stderr)
            return 2
        if args.timeline or args.at is not None or args.diff:
            # Timeline mode: the path names a flight-recorder file.
            from repro.obs.timeline import inspect_timeline

            series = (
                [name.strip() for name in args.series.split(",") if name.strip()]
                if args.series
                else None
            )
            try:
                code, text = inspect_timeline(
                    args.path,
                    timeline=bool(args.timeline),
                    at=args.at,
                    diff=args.diff,
                    series=series,
                    top_nodes=args.top_nodes,
                    as_json=args.as_json,
                )
            except FileNotFoundError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            print(text)
            return code
        from repro.obs.inspect import inspect_path

        try:
            # The path may be a single file, a directory of shards, or a
            # glob (parallel runs write trace.0.jsonl, trace.1.jsonl, ...).
            code, text = inspect_path(
                args.path,
                top_nodes=args.top_nodes,
                spans=args.spans,
                audit=args.audit,
                as_json=args.as_json,
            )
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(text)
        return code

    try:
        return _run_figures(args)
    except ConfigurationError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2


def _main_guarded(argv: Optional[List[str]] = None) -> int:
    """`python -m repro` entry: exit cleanly when the pager closes early."""
    try:
        return main(argv)
    except BrokenPipeError:
        # Downstream `head`/`less` closed the pipe; suppress the shutdown
        # flush error too, then report success like other unix filters.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(_main_guarded())
