"""Command-line interface: regenerate any figure of the paper.

Usage::

    python -m repro list
    python -m repro fig4
    python -m repro fig13_14 --seeds 5 --scale 1.0
    python -m repro all --seeds 2 --scale 0.25
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.figures import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation figures of 'Content Centric Peer "
            "Data Sharing in Pervasive Edge Computing Environments' "
            "(ICDCS 2017)."
        ),
    )
    parser.add_argument(
        "figure",
        help="figure id (see `list`), `all`, `list`, or `report` "
        "(rebuild EXPERIMENTS.md from benchmarks/results)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="number of seeds per data point (paper: 5)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (paper: 1.0)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.seeds is not None:
        os.environ["REPRO_SEEDS"] = str(args.seeds)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)

    if args.figure == "list":
        print("Available figures:")
        for figure_id, module in REGISTRY.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {figure_id:12s} {summary}")
        return 0

    if args.figure == "report":
        from repro.experiments.report import main as report_main

        return report_main([])

    if args.figure == "all":
        for figure_id, module in REGISTRY.items():
            print(f"== {figure_id} ==")
            print(module.main())
            print()
        return 0

    module = REGISTRY.get(args.figure)
    if module is None:
        print(
            f"unknown figure {args.figure!r}; try `python -m repro list`",
            file=sys.stderr,
        )
        return 2
    print(module.main())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
