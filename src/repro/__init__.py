"""PDS — Content Centric Peer Data Sharing in Pervasive Edge Computing.

A from-scratch Python reproduction of the ICDCS 2017 paper: the PDD/PDR
protocol core, a discrete-event wireless substrate replacing NS-3, the
Android-prototype link model, mobility generators, and a benchmark harness
regenerating every figure of the paper's evaluation.

Typical use::

    from repro import (
        Simulator, build_grid, BroadcastMedium, Device, DiscoverySession,
    )

See ``examples/quickstart.py`` for a complete scenario.
"""

from repro.bloom import BloomFilter
from repro.core import (
    DiscoverySession,
    MdrSession,
    RetrievalSession,
    RoundConfig,
    SessionResult,
)
from repro.data import (
    Chunk,
    DataDescriptor,
    DataItem,
    DataStore,
    Predicate,
    QuerySpec,
    make_descriptor,
    make_item,
)
from repro.net import (
    BroadcastMedium,
    NetworkStats,
    Topology,
    build_grid,
    center_node,
    center_subgrid,
)
from repro.node import Device, DeviceConfig, ProtocolConfig
from repro.sim import RngRegistry, Simulator

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "BroadcastMedium",
    "Chunk",
    "DataDescriptor",
    "DataItem",
    "DataStore",
    "Device",
    "DeviceConfig",
    "DiscoverySession",
    "MdrSession",
    "NetworkStats",
    "Predicate",
    "ProtocolConfig",
    "QuerySpec",
    "RetrievalSession",
    "RngRegistry",
    "RoundConfig",
    "SessionResult",
    "Simulator",
    "Topology",
    "build_grid",
    "center_node",
    "center_subgrid",
    "make_descriptor",
    "make_item",
    "__version__",
]
