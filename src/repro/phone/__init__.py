"""Android prototype link model and single-hop experiment harness (§V)."""

from repro.phone.prototype import (
    MODES,
    PrototypeConfig,
    PrototypeResult,
    reception_series,
    run_prototype,
)
from repro.phone.udp import (
    ANDROID_MAC_BROADCAST_BPS,
    ANDROID_OS_BUFFER_BYTES,
    PROTOTYPE_PACKET_BYTES,
    UdpSendModel,
    android_radio_config,
)

__all__ = [
    "ANDROID_MAC_BROADCAST_BPS",
    "ANDROID_OS_BUFFER_BYTES",
    "MODES",
    "PROTOTYPE_PACKET_BYTES",
    "PrototypeConfig",
    "PrototypeResult",
    "UdpSendModel",
    "android_radio_config",
    "reception_series",
    "run_prototype",
]
