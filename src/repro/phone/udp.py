"""Model of the Android UDP broadcast send path (§V-2).

The paper's measurement: the non-blocking UDP send API copies each message
into a finite OS buffer that drains at the MAC broadcast rate; when the
buffer is full, newly arriving messages are *silently* discarded — they are
never transmitted by the radio at all (validated with Wireshark: the first
≈658 × 1.5 KB messages arrive everywhere, then losses begin, and lost
messages are heard by no receiver).

This module parameterises that path.  The mechanics live in
:class:`repro.net.radio.Radio` (finite ``os_buffer_bytes`` + MAC-rate
drain); here we define the phone-calibrated constants and a convenience
config used by the prototype harness and its tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.medium import DEFAULT_BROADCAST_RATE_BPS
from repro.net.radio import RadioConfig

#: UDP payload used by the prototype measurements (1.5 KB packets, §V-4).
PROTOTYPE_PACKET_BYTES = 1500

#: The Android OS send buffer: ≈658 packets of 1.5 KB ≈ 1 MB (§V-2).
ANDROID_OS_BUFFER_BYTES = 1_010_000

#: 802.11n 20 MHz MAC broadcast rate (§V-2).
ANDROID_MAC_BROADCAST_BPS = DEFAULT_BROADCAST_RATE_BPS


def android_radio_config() -> RadioConfig:
    """Radio configuration matching the measured Android send path."""
    return RadioConfig(os_buffer_bytes=ANDROID_OS_BUFFER_BYTES)


@dataclass(frozen=True)
class UdpSendModel:
    """Closed-form expectations of the buffer-overflow behaviour.

    Used by tests to validate the simulated path against the paper's
    arithmetic rather than against magic constants.
    """

    os_buffer_bytes: int = ANDROID_OS_BUFFER_BYTES
    mac_rate_bps: float = ANDROID_MAC_BROADCAST_BPS
    packet_bytes: int = PROTOTYPE_PACKET_BYTES

    def packets_before_overflow(self) -> int:
        """How many back-to-back packets fit before the first drop."""
        return self.os_buffer_bytes // self.packet_bytes

    def steady_state_reception(self, app_rate_bps: float) -> float:
        """Long-run reception ratio when the app sends at ``app_rate_bps``.

        Once the buffer is full, the OS accepts packets only as fast as the
        MAC drains them, so reception approaches ``mac_rate / app_rate``.
        """
        if app_rate_bps <= self.mac_rate_bps:
            return 1.0
        return self.mac_rate_bps / app_rate_bps
