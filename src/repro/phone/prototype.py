"""Single-hop prototype harness: the §V-4 phone experiments.

Reproduces the measurement setup of the paper's Android prototype: a set
of sender phones within one hop of a receiver phone, blasting 1.5 KB UDP
broadcast packets, under three configurations (Fig. 3):

* ``raw``        — straight into the OS buffer (silent overflow, ≈14%);
* ``bucket``     — leaky-bucket paced (no retransmission);
* ``bucket_ack`` — leaky bucket + per-hop ack/retransmission.

The harness measures the *reception rate*: distinct application messages
heard by the receiver over distinct messages the sender side committed to
the network (messages still backlogged in pacing queues when the run ends
are excluded — they were neither transmitted nor lost).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.net.faces import BroadcastFace
from repro.net.leaky_bucket import LeakyBucketConfig
from repro.net.medium import BroadcastMedium
from repro.net.message import FRAME_HEADER_BYTES, Frame
from repro.net.reliability import ReliabilityConfig
from repro.net.stats import NetworkStats
from repro.net.topology import Topology
from repro.phone.udp import PROTOTYPE_PACKET_BYTES, android_radio_config
from repro.sim.simulator import Simulator

#: Valid prototype modes (Fig. 3 series).
MODES = ("raw", "bucket", "bucket_ack")


@dataclass(frozen=True)
class PrototypeConfig:
    """One single-hop experiment.

    Attributes:
        n_senders: Concurrent sender phones (Fig. 3 x-axis).
        mode: One of ``raw`` / ``bucket`` / ``bucket_ack``.
        packets_per_sender: Workload each sender generates.
        app_rate_bps: Rate at which the application calls the send API
            ("as quickly as possible" in the paper — far above the MAC
            broadcast rate).
        bucket: Leaky-bucket parameters (BucketCapacity / LeakingRate).
        reliability: Ack/retransmission parameters (RetrTimeout /
            MaxRetrTime).
    """

    n_senders: int = 1
    mode: str = "bucket_ack"
    packets_per_sender: int = 6000
    app_rate_bps: float = 50e6
    bucket: LeakyBucketConfig = field(default_factory=LeakyBucketConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}, got {self.mode}")
        if self.n_senders < 1:
            raise ConfigurationError("need at least one sender")
        if self.packets_per_sender < 1:
            raise ConfigurationError("need at least one packet")


@dataclass
class PrototypeResult:
    """Outcome of one run."""

    received: int
    committed: int
    generated: int
    duration_s: float
    stats: NetworkStats

    @property
    def reception_rate(self) -> float:
        """Distinct messages received / messages committed to the network."""
        if self.committed == 0:
            return 0.0
        return self.received / self.committed

    @property
    def goodput_bps(self) -> float:
        """Application-level receive rate over the run."""
        if self.duration_s <= 0:
            return 0.0
        return self.received * PROTOTYPE_PACKET_BYTES * 8 / self.duration_s


def run_prototype(config: PrototypeConfig, seed: int = 0) -> PrototypeResult:
    """Run one single-hop experiment and return its measurements."""
    sim = Simulator()
    topology = Topology(radio_range=20.0)
    stats = NetworkStats()
    medium = BroadcastMedium(
        sim, topology, random.Random(seed * 7919 + 13), stats=stats
    )
    receiver_id = 0
    topology.add_node(receiver_id, (0.0, 0.0))
    sender_ids = list(range(1, config.n_senders + 1))
    # Senders ring the receiver, all mutually within range (one hop).
    for index, sender_id in enumerate(sender_ids):
        angle = index / max(1, len(sender_ids))
        topology.add_node(sender_id, (5.0 + angle, 5.0 - angle))

    use_bucket = config.mode in ("bucket", "bucket_ack")
    reliable = config.mode == "bucket_ack"
    reliability = config.reliability
    if not reliable:
        reliability = ReliabilityConfig(
            retr_timeout_s=reliability.retr_timeout_s,
            max_retransmissions=reliability.max_retransmissions,
            backoff_factor=reliability.backoff_factor,
            enabled=False,
        )

    received_ids = set()

    def on_receive(frame: Frame, addressed: bool) -> None:
        if addressed and frame.kind == "proto":
            received_ids.add(frame.frame_id)

    receiver_face = BroadcastFace(
        sim,
        medium,
        receiver_id,
        random.Random(seed * 31 + 5),
        radio_config=android_radio_config(),
        bucket_config=config.bucket,
        reliability_config=reliability,
        use_leaky_bucket=use_bucket,
    )
    receiver_face.on_receive(on_receive)

    faces: Dict[int, BroadcastFace] = {}
    for sender_id in sender_ids:
        faces[sender_id] = BroadcastFace(
            sim,
            medium,
            sender_id,
            random.Random(seed * 31 + sender_id),
            radio_config=android_radio_config(),
            bucket_config=config.bucket,
            reliability_config=reliability,
            use_leaky_bucket=use_bucket,
        )

    packet_payload = PROTOTYPE_PACKET_BYTES - FRAME_HEADER_BYTES
    interval = PROTOTYPE_PACKET_BYTES * 8 / config.app_rate_bps
    generated = 0

    def make_generator(sender_id: int):
        remaining = [config.packets_per_sender]

        def generate() -> None:
            nonlocal generated
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
            generated += 1
            faces[sender_id].send(
                payload=("pkt", sender_id, remaining[0]),
                payload_size=packet_payload,
                receivers=frozenset({receiver_id}),
                kind="proto",
                reliable=reliable,
            )
            if remaining[0] > 0:
                sim.schedule(interval, generate)

        return generate

    for sender_id in sender_ids:
        sim.schedule(0.0, make_generator(sender_id))

    # Run to quiescence: generation is a fixed workload, pacing queues
    # drain, and retransmissions settle — the paper measures reception of
    # the workload, so cutting off mid-drain would conflate backlog with
    # loss.  A generous cap guards against runaway configurations.
    cap = 3600.0
    while sim.pending_events and sim.now < cap:
        sim.run(until=min(cap, sim.now + 30.0))

    # Messages still backlogged in pacing queues were neither transmitted
    # nor lost; exclude them from the denominator.  Retransmission copies
    # in the queues do not count — their original already had its chance.
    backlog = 0
    for face in faces.values():
        for queued in face.bucket.queued_frames():
            if queued.retransmission == 0:
                backlog += 1
        for queued in face.radio.queued_frames():
            if queued.retransmission == 0:
                backlog += 1
    committed = generated - backlog

    return PrototypeResult(
        received=len(received_ids),
        committed=max(0, committed),
        generated=generated,
        duration_s=sim.now,
        stats=stats,
    )


def reception_series(
    modes: List[str],
    sender_counts: List[int],
    seeds: List[int],
    packets_per_sender: int = 800,
    bucket: Optional[LeakyBucketConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
) -> Dict[str, List[float]]:
    """Fig. 3 series: mean reception rate per mode per sender count."""
    series: Dict[str, List[float]] = {}
    for mode in modes:
        points = []
        for n_senders in sender_counts:
            rates = []
            for seed in seeds:
                config = PrototypeConfig(
                    n_senders=n_senders,
                    mode=mode,
                    packets_per_sender=packets_per_sender,
                    bucket=bucket if bucket is not None else LeakyBucketConfig(),
                    reliability=reliability
                    if reliability is not None
                    else ReliabilityConfig(),
                )
                rates.append(run_prototype(config, seed).reception_rate)
            points.append(sum(rates) / len(rates))
        series[mode] = points
    return series
