"""``repro diverge`` — localize the first divergent event between two runs.

Usage::

    # Scheduler parity: where does calendar first differ from heap?
    python -m repro diverge --a scheduler=heap --b scheduler=calendar

    # Parallel parity: serial vs 4 workers
    python -m repro diverge --a jobs=1 --b jobs=4

    # Fault-injection drill: flip the 40th draw of the medium stream
    python -m repro diverge --a '' --b perturb=medium:40

    # Against a recorded baseline checkpoint stream (e.g. another build)
    python -m repro diverge --a '' --b file=fp_baseline.jsonl

Exit status: 0 when the sides' chained digests match, 1 when a
divergence was found (the report pinpoints the first divergent event),
2 on configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.obs.diverge import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_CONTEXT,
    ScenarioSpec,
    SideSpec,
    diverge,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro diverge",
        description=(
            "Run one scenario under two configurations (or load recorded "
            "fingerprint streams), binary-search their checkpoint streams "
            "to the first divergent event, and report it field-by-field."
        ),
    )
    parser.add_argument(
        "--a",
        default="",
        metavar="SPEC",
        help="side A: comma-separated scheduler=/jobs=/profile=/perturb= "
        "run options, or file=<recorded fingerprint stream> "
        "(default: the default configuration)",
    )
    parser.add_argument(
        "--b",
        default="",
        metavar="SPEC",
        help="side B, same syntax as --a",
    )
    parser.add_argument(
        "--seeds",
        default="1",
        help="comma-separated seed list for the scenario (default: 1)",
    )
    parser.add_argument("--rows", type=int, default=6)
    parser.add_argument("--cols", type=int, default=6)
    parser.add_argument(
        "--metadata-count", type=int, default=400, dest="metadata_count"
    )
    parser.add_argument(
        "--max-rounds", type=int, default=3, dest="max_rounds"
    )
    parser.add_argument(
        "--sim-cap", type=float, default=120.0, dest="sim_cap"
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        dest="checkpoint_every",
        help=f"events per fingerprint checkpoint "
        f"(default: {DEFAULT_CHECKPOINT_EVERY})",
    )
    parser.add_argument(
        "--context",
        type=int,
        default=DEFAULT_CONTEXT,
        help=f"preceding events shown around the divergence "
        f"(default: {DEFAULT_CONTEXT})",
    )
    parser.add_argument(
        "--keep",
        default=None,
        metavar="DIR",
        help="keep the fingerprint streams in DIR instead of a tempdir",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON report instead of text",
    )
    return parser


def _parse_seeds(raw: str) -> List[int]:
    try:
        seeds = [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise ConfigurationError(
            f"--seeds must be a comma-separated integer list, got {raw!r}"
        ) from None
    if not seeds:
        raise ConfigurationError("--seeds must name at least one seed")
    return seeds


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec_a = SideSpec.parse("a", args.a)
        spec_b = SideSpec.parse("b", args.b)
        scenario = ScenarioSpec(
            seeds=tuple(_parse_seeds(args.seeds)),
            rows=args.rows,
            cols=args.cols,
            metadata_count=args.metadata_count,
            max_rounds=args.max_rounds,
            sim_cap_s=args.sim_cap,
        )
        report = diverge(
            spec_a,
            spec_b,
            scenario=scenario,
            checkpoint_every=args.checkpoint_every,
            context=args.context,
            workdir=args.keep,
        )
    except (ConfigurationError, FileNotFoundError) as exc:
        print(f"diverge error: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 1 if report.diverged else 0


if __name__ == "__main__":
    raise SystemExit(main())
