"""The ``repro campaign`` subcommand: operate on a campaign store.

Usage::

    repro campaign status --store runs/store        # what's cached
    repro campaign resume fig12 --store runs/store  # re-run a figure,
                                                    # skipping cached
                                                    # trials
    repro campaign gc --store runs/store            # sweep *.tmp litter
                                                    # and corrupt entries
    repro campaign gc --failed --store runs/store   # also drop failure
                                                    # records

``--store`` defaults to the ``REPRO_STORE`` environment variable, so a
campaign launched with ``repro fig12 --store runs/store --jobs 8`` (then
killed) resumes with ``repro campaign resume fig12 --store runs/store``
— every trial already completed is served from the store and the final
table is bit-identical to an uninterrupted run.

``resume`` accepts the same knobs as a figure run (``--seeds``,
``--scale``, ``--jobs``, ``--scheduler`` and the observability flags);
they are forwarded verbatim to the figure runner.  Keep them identical
to the original invocation: the store key includes the scheduler and
observability profile, and ``--seeds``/``--scale`` shape the trial
parameters, so changed knobs simply miss the cache (sound, just not a
resume).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ConfigurationError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Inspect, resume, or garbage-collect a campaign store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    status = sub.add_parser(
        "status", help="summarize the store's entries by kind and trial"
    )
    status.add_argument(
        "--store",
        default=None,
        help="campaign store directory (default: REPRO_STORE)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON instead of a table",
    )

    resume = sub.add_parser(
        "resume",
        help="re-run a figure against the store, skipping cached trials",
    )
    resume.add_argument("figure", help="figure id (see `repro list`)")
    resume.add_argument(
        "--store",
        default=None,
        help="campaign store directory (default: REPRO_STORE)",
    )

    gc = sub.add_parser(
        "gc", help="delete *.tmp leftovers and corrupt entries"
    )
    gc.add_argument(
        "--store",
        default=None,
        help="campaign store directory (default: REPRO_STORE)",
    )
    gc.add_argument(
        "--failed",
        action="store_true",
        help="also delete failure records (they re-run on resume anyway)",
    )
    return parser


def _resolve_root(raw: Optional[str]) -> str:
    root = raw or os.environ.get("REPRO_STORE")
    if not root:
        raise ConfigurationError(
            "no campaign store named; pass --store PATH or set REPRO_STORE"
        )
    return root


def _status(root: str, as_json: bool) -> int:
    import json

    from repro.experiments.store import CampaignStore

    report = CampaignStore(root).status()
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"campaign store {report['root']}")
    print(
        f"  entries: {report['entries']} "
        f"({report['ok']} ok, {report['failed']} failed)"
    )
    for kind, count in report["by_kind"].items():
        print(f"    {kind:<8s} {count}")
    if report["by_trial"]:
        print("  by trial:")
        for name, count in report["by_trial"].items():
            print(f"    {name:<48s} {count}")
    print(f"  corrupt: {report['corrupt']}  tmp: {report['tmp']}")
    print(f"  size: {report['bytes']} bytes")
    return 0


def _gc(root: str, failed: bool) -> int:
    from repro.experiments.store import CampaignStore

    removed = CampaignStore(root).gc(failed=failed)
    print(
        f"removed {removed['tmp']} tmp file(s), "
        f"{removed['corrupt']} corrupt entry(s), "
        f"{removed['failed']} failure record(s)"
    )
    return 0


def _resume(root: str, figure: str, passthrough: List[str]) -> int:
    # Delegate to the figure runner with the store in effect; run_trials/
    # run_sweep pick it up through REPRO_STORE and skip cached trials.
    from repro.cli import main as cli_main

    os.environ["REPRO_STORE"] = root
    return cli_main([figure, *passthrough])


def main(argv: Optional[List[str]] = None) -> int:
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    # `resume` forwards unknown flags (--seeds, --jobs, --trace, ...) to
    # the figure runner instead of rejecting them.
    parser = build_parser()
    args, extra = parser.parse_known_args(raw_argv)
    if extra and args.command != "resume":
        parser.error(f"unrecognized arguments: {' '.join(extra)}")
    try:
        root = _resolve_root(args.store)
        if args.command == "status":
            return _status(root, args.as_json)
        if args.command == "gc":
            return _gc(root, args.failed)
        return _resume(root, args.figure, extra)
    except ConfigurationError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
