"""The ``repro profile`` subcommand: where does a figure's wall time go?

Usage::

    python -m repro profile fig5                   # hotspot tables
    python -m repro profile fig5 --top 25          # longer handler table
    python -m repro profile fig5 --flame out.txt   # collapsed stacks for
                                                   # flamegraph.pl / speedscope
    python -m repro profile fig5 --memory          # tracemalloc phase deltas
    python -m repro profile fig5 --json            # machine-readable report

Runs one figure (or ``all``) under the kernel profiler
(:mod:`repro.obs.kernelprof`) plus the whole-run profiler
(:mod:`repro.obs.profile`), then renders per-subsystem / per-handler
hotspot tables and, on request, a collapsed-stack flamegraph file and
per-phase memory telemetry (:mod:`repro.obs.memprof`).

Profiling does not perturb simulation outputs — event order, virtual
time, and RNG draws are untouched (see DESIGN.md §10) — so the figure
tables printed here are identical to an unprofiled run's.

``REPRO_PROFILE=1`` is exported for the duration so campaign workers
(``--jobs N``) profile their trials and ship stats back to this process;
``--memory`` is per-process and therefore forces ``--jobs 1`` unless
``--jobs`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import ExitStack
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.figures import REGISTRY
from repro.obs.kernelprof import KernelProfiler
from repro.obs.memprof import MemoryTelemetry
from repro.obs.profile import RunProfiler


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile a figure run: kernel hotspots, flamegraph "
        "export, optional memory telemetry.",
    )
    parser.add_argument(
        "figure",
        help="figure id (see `repro list`) or `all`",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="number of seeds per data point (paper: 5)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (paper: 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per sweep (0 = one per CPU; default: "
        "REPRO_JOBS or 1; --memory defaults to 1)",
    )
    parser.add_argument(
        "--scheduler",
        choices=("heap", "calendar"),
        default=None,
        help="event-kernel scheduler (sets REPRO_SCHEDULER); dispatch "
        "time shows up as the sim.scheduler subsystem either way",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="handlers to list in the hotspot table (default: 15)",
    )
    parser.add_argument(
        "--flame",
        metavar="FILE",
        default=None,
        help="write collapsed-stack flamegraph text to FILE "
        "(flamegraph.pl / speedscope compatible)",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="record tracemalloc snapshots at phase boundaries "
        "(setup / discovery rounds / retrieval) with per-subsystem "
        "allocator attribution",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON report instead of tables "
        "(suppresses the figure's own output)",
    )
    return parser


def _json_report(
    figure: str,
    kernel: KernelProfiler,
    profiler: RunProfiler,
    memory: Optional[MemoryTelemetry],
    top: int,
) -> str:
    stats = kernel.stats()
    handlers = sorted(stats.items(), key=lambda item: -item[1][1])[:top]
    report = {
        "figure": figure,
        "kernel": kernel.summary(),
        "subsystems": {
            name: {"events": count, "ns": ns}
            for name, (count, ns) in sorted(kernel.subsystem_totals().items())
        },
        "handlers": [
            {
                "subsystem": subsystem,
                "handler": handler,
                "events": count,
                "ns": ns,
            }
            for (subsystem, handler), (count, ns) in handlers
        ],
        "runs": profiler.summary(),
    }
    if memory is not None:
        report["memory"] = {
            "summary": memory.summary(),
            "phases": [
                {
                    "name": record.name,
                    "current_kb": round(record.current_kb, 1),
                    "peak_kb": round(record.peak_kb, 1),
                    "growth": [
                        {
                            "subsystem": subsystem,
                            "delta_kb": round(delta_kb, 1),
                            "delta_blocks": delta_blocks,
                        }
                        for subsystem, delta_kb, delta_blocks in record.growth
                    ],
                }
                for record in memory.phases
            ],
        }
    return json.dumps(report, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv)
    )
    if args.figure != "all" and args.figure not in REGISTRY:
        print(
            f"unknown figure {args.figure!r}; try `python -m repro list`",
            file=sys.stderr,
        )
        return 2

    if args.seeds is not None:
        os.environ["REPRO_SEEDS"] = str(args.seeds)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.scheduler is not None:
        os.environ["REPRO_SCHEDULER"] = args.scheduler
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    elif args.memory:
        # Phase boundaries fire in whichever process crosses them; keep
        # the whole campaign here so the telemetry sees all of it.
        os.environ["REPRO_JOBS"] = "1"
    # Campaign workers check this env knob to profile their trials.
    os.environ["REPRO_PROFILE"] = "1"

    kernel = KernelProfiler()
    profiler = RunProfiler()
    memory = MemoryTelemetry() if args.memory else None
    figure_outputs: List[str] = []
    try:
        with ExitStack() as stack:
            stack.enter_context(profiler.activate())
            stack.enter_context(kernel.activate())
            if memory is not None:
                stack.enter_context(memory.activate())
            if args.figure == "all":
                for figure_id, module in REGISTRY.items():
                    figure_outputs.append(f"== {figure_id} ==")
                    figure_outputs.append(module.main())
                    figure_outputs.append("")
            else:
                figure_outputs.append(REGISTRY[args.figure].main())
    except ConfigurationError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(_json_report(args.figure, kernel, profiler, memory, args.top))
    else:
        for chunk in figure_outputs:
            print(chunk)
        print()
        print(profiler.render())
        print()
        print(kernel.render(top=args.top))
        if memory is not None:
            print()
            print(memory.render())
    if args.flame:
        try:
            kernel.write_flamegraph(args.flame)
        except OSError as exc:
            print(
                f"cannot write flamegraph file {args.flame}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"flamegraph stacks written to {args.flame}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
