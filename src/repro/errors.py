"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is used incorrectly.

    Examples: scheduling an event in the past, running a simulator that was
    already stopped, or re-entrant calls to :meth:`Simulator.run`.
    """


class ConfigurationError(ReproError):
    """Raised when a configuration object carries invalid values."""


class TopologyError(ReproError):
    """Raised for invalid topology operations (unknown node, bad grid)."""


class DataModelError(ReproError):
    """Raised for invalid descriptors, predicates or queries."""


class ProtocolError(ReproError):
    """Raised when a protocol engine receives a malformed message."""
