"""Discrete-event simulation kernel used by all PDS experiments."""

from repro.sim.event import (
    DEFAULT_PRIORITY,
    Event,
    EventQueue,
    HeapScheduler,
    Scheduler,
)
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.scheduler import (
    SCHEDULER_NAMES,
    CalendarScheduler,
    configured_scheduler,
    resolve_scheduler,
)
from repro.sim.simulator import Simulator

__all__ = [
    "DEFAULT_PRIORITY",
    "CalendarScheduler",
    "Event",
    "EventQueue",
    "HeapScheduler",
    "PeriodicTask",
    "RngRegistry",
    "SCHEDULER_NAMES",
    "Scheduler",
    "Simulator",
    "Timer",
    "configured_scheduler",
    "derive_seed",
    "resolve_scheduler",
]
