"""Discrete-event simulation kernel used by all PDS experiments."""

from repro.sim.event import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.simulator import Simulator

__all__ = [
    "DEFAULT_PRIORITY",
    "Event",
    "EventQueue",
    "PeriodicTask",
    "RngRegistry",
    "Simulator",
    "Timer",
    "derive_seed",
]
