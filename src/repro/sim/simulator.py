"""The discrete-event simulator driving every PDS experiment.

The :class:`Simulator` owns the virtual clock and the event queue.  Protocol
code never sleeps or polls; it schedules callbacks at future virtual times
with :meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.at`
(absolute time).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.event import DEFAULT_PRIORITY, Event, EventQueue


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes:
        now: Current virtual time in seconds.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args, priority)

    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self.now}"
            )
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (safe to call more than once)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events in time order.

        Args:
            until: Stop once the clock would pass this time.  The clock is
                advanced to ``until`` when the queue drains earlier, so
                repeated ``run(until=...)`` calls observe monotonic time.
            max_events: Safety valve; raise after this many events.

        Returns:
            The number of events processed.

        Raises:
            SimulationError: on re-entrant calls or when ``max_events`` is hit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue and not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event.time < self.now:
                    raise SimulationError(
                        f"event queue yielded past event (t={event.time} < now={self.now})"
                    )
                self.now = event.time
                event.fire()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        return processed

    def stop(self) -> None:
        """Stop the current (or next) :meth:`run` after the active event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of active events still scheduled."""
        return len(self._queue)

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for reuse in tests)."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._queue.clear()
        self.now = 0.0
        self._stopped = False
