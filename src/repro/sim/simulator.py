"""The discrete-event simulator driving every PDS experiment.

The :class:`Simulator` owns the virtual clock and the event queue.  Protocol
code never sleeps or polls; it schedules callbacks at future virtual times
with :meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.at`
(absolute time).
"""

from __future__ import annotations

from time import perf_counter, perf_counter_ns
from typing import Any, Callable, Optional, Union

from repro.errors import SimulationError
from repro.obs.fingerprint import EventFingerprinter, configured_fingerprint
from repro.obs.kernelprof import active_kernel_profiler
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import active_profiler
from repro.obs.trace import TraceBus, global_sinks
from repro.sim.event import DEFAULT_PRIORITY, Event, Scheduler
from repro.sim.scheduler import resolve_scheduler


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes:
        now: Current virtual time in seconds.
        trace: This simulation's trace bus (disabled until a sink
            subscribes; process-wide sinks are attached automatically).
        metrics: This simulation's metrics registry (counters, gauges,
            histograms recorded by the stack).
        events_processed: Total events fired over the simulator's life.
        peak_queue_depth: Largest event-queue length observed while running.
        scheduler_name: Registry name of the pending-event scheduler this
            simulator runs on (``"heap"`` unless selected otherwise).
        recorder: The attached flight recorder
            (:class:`repro.obs.recorder.FlightRecorder`), or ``None``.
            Left ``None`` unless a recording is configured — the event
            loop itself never consults it, so a disabled recorder adds
            zero per-event cost.

    Args:
        scheduler: Pending-event scheduler selection — a registry name
            (``"heap"``/``"calendar"``), a ready
            :class:`~repro.sim.event.Scheduler` instance, or ``None`` to
            honour the ``REPRO_SCHEDULER`` env knob (default: heap).  All
            registered schedulers are order-identical, so the choice
            affects kernel speed only, never simulation outputs.
    """

    def __init__(self, scheduler: Union[str, Scheduler, None] = None) -> None:
        self.now: float = 0.0
        self._queue = resolve_scheduler(scheduler)
        self.scheduler_name: str = self._queue.name
        self._running = False
        self._stopped = False
        self.trace = TraceBus(clock=lambda: self.now)
        for sink in global_sinks():
            self.trace.subscribe(sink)
        self.metrics = MetricsRegistry()
        self.events_processed: int = 0
        self.peak_queue_depth: int = 0
        self.recorder: Optional[Any] = None
        self._fingerprint: Optional[EventFingerprinter] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args, priority)

    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self.now}"
            )
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (safe to call more than once)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events in time order.

        Args:
            until: Stop once the clock would pass this time.  The clock is
                advanced to ``until`` when the queue drains earlier, so
                repeated ``run(until=...)`` calls observe monotonic time.
            max_events: Safety valve; raise after this many events.

        Returns:
            The number of events processed.

        Raises:
            SimulationError: on re-entrant calls or when ``max_events`` is hit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        processed = 0
        profiler = active_profiler()
        kernel = active_kernel_profiler()
        fp_config = configured_fingerprint()
        fingerprint: Optional[EventFingerprinter] = None
        if fp_config is not None:
            fingerprint = self._fingerprint
            if fingerprint is None or fingerprint.config is not fp_config:
                fingerprint = self._fingerprint = EventFingerprinter(
                    self, fp_config
                )
        wall_start = perf_counter() if profiler is not None else 0.0
        queue = self._queue
        peak_depth = len(queue)
        try:
            if kernel is None and fingerprint is None:
                while queue and not self._stopped:
                    next_time = queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        break
                    event = queue.pop()
                    if event.time < self.now:
                        raise SimulationError(
                            f"event queue yielded past event (t={event.time} < now={self.now})"
                        )
                    self.now = event.time
                    event.fire()
                    processed += 1
                    depth = len(queue)
                    if depth > peak_depth:
                        peak_depth = depth
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(processed={processed}, now={self.now}); "
                            f"runaway simulation?"
                        )
            elif fingerprint is None:
                # Kernel-profiled variant of the loop above.  Kept as a
                # separate branch (not per-event `if kernel` checks) so the
                # unprofiled path is byte-for-byte the original loop and
                # profiler-off runs stay bit-identical.  Timing wraps only
                # the scheduler's peek/pop and the fire() call; event
                # order, clock, and RNG draws are untouched, so profiled
                # runs keep exact output digests.  The accumulator update
                # is inlined (rather than calling kernel.note) to keep
                # profiled overhead under the <10% budget on event-dense
                # workloads.  Scheduler dispatch time is booked under the
                # scheduler's own sentinel handler so it surfaces as a
                # `sim.scheduler` subsystem; push time lands in whichever
                # handler scheduled the event, like any other work a
                # handler does.
                acc_map = kernel._acc
                sched_key = queue.profile_key
                sched_acc = acc_map.get(sched_key)
                if sched_acc is None:
                    sched_acc = acc_map[sched_key] = [0, 0]
                while queue and not self._stopped:
                    sched_start = perf_counter_ns()
                    next_time = queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        break
                    event = queue.pop()
                    sched_acc[0] += 1
                    sched_acc[1] += perf_counter_ns() - sched_start
                    if event.time < self.now:
                        raise SimulationError(
                            f"event queue yielded past event (t={event.time} < now={self.now})"
                        )
                    self.now = event.time
                    fire_start = perf_counter_ns()
                    event.fire()
                    elapsed_ns = perf_counter_ns() - fire_start
                    callback = event.callback
                    key = getattr(callback, "__func__", callback)
                    acc = acc_map.get(key)
                    if acc is None:
                        acc = acc_map[key] = [0, 0]
                    acc[0] += 1
                    acc[1] += elapsed_ns
                    processed += 1
                    depth = len(queue)
                    if depth > peak_depth:
                        peak_depth = depth
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(processed={processed}, now={self.now}); "
                            f"runaway simulation?"
                        )
            else:
                # Fingerprinting variant.  A third branch for the same
                # reason kernel profiling gets one: the plain path above
                # must stay byte-for-byte the original loop so
                # fingerprint-off runs are bit-identical to seed.  The
                # event is folded into the chained digest BEFORE fire()
                # so a handler that raises still leaves the divergent
                # event on the stream.  Fingerprinting wraps around the
                # dispatch without touching event order, the clock, or
                # RNG draws — fingerprinted runs keep exact output
                # digests.  Kernel accounting is folded in with per-event
                # None checks (profile+fingerprint together is rare and
                # already paying the hash cost).
                acc_map = sched_acc = None
                if kernel is not None:
                    acc_map = kernel._acc
                    sched_key = queue.profile_key
                    sched_acc = acc_map.get(sched_key)
                    if sched_acc is None:
                        sched_acc = acc_map[sched_key] = [0, 0]
                note = fingerprint.note
                while queue and not self._stopped:
                    sched_start = perf_counter_ns() if kernel else 0
                    next_time = queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        break
                    event = queue.pop()
                    if sched_acc is not None:
                        sched_acc[0] += 1
                        sched_acc[1] += perf_counter_ns() - sched_start
                    if event.time < self.now:
                        raise SimulationError(
                            f"event queue yielded past event (t={event.time} < now={self.now})"
                        )
                    self.now = event.time
                    note(event)
                    fire_start = perf_counter_ns() if kernel else 0
                    event.fire()
                    if acc_map is not None:
                        elapsed_ns = perf_counter_ns() - fire_start
                        callback = event.callback
                        key = getattr(callback, "__func__", callback)
                        acc = acc_map.get(key)
                        if acc is None:
                            acc = acc_map[key] = [0, 0]
                        acc[0] += 1
                        acc[1] += elapsed_ns
                    processed += 1
                    depth = len(queue)
                    if depth > peak_depth:
                        peak_depth = depth
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(processed={processed}, now={self.now}); "
                            f"runaway simulation?"
                        )
        finally:
            self._running = False
            if fingerprint is not None:
                fingerprint.flush_checkpoint()
            self.events_processed += processed
            if peak_depth > self.peak_queue_depth:
                self.peak_queue_depth = peak_depth
            if profiler is not None:
                profiler.record_run(
                    wall_s=perf_counter() - wall_start,
                    events=processed,
                    sim_time_s=self.now,
                    peak_queue_depth=peak_depth,
                )
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        if self.trace.enabled:
            self.trace.emit(
                "sim_run_end",
                processed=processed,
                pending=len(self._queue),
                peak_queue_depth=peak_depth,
            )
        return processed

    def stop(self) -> None:
        """Stop the current (or next) :meth:`run` after the active event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of active events still scheduled."""
        return len(self._queue)

    def reset(self) -> None:
        """Rewind the simulator for reuse (tests, repeated campaigns).

        Cleared: the event queue, the virtual clock, the stop flag, the
        event/queue-depth counters, and every instrument in ``metrics``.
        The metrics are zeroed *in place* — components that cached
        instrument references (``NetworkStats``, the round controller's
        duration histogram, the radio queue gauge) keep recording into
        the same objects, now reading zero.

        NOT cleared: the trace bus (sink subscriptions and per-kind
        emission tallies persist) and any state owned by objects built on
        top of the simulator — devices, caches, and the per-kind
        ``Counter`` breakdowns kept by ``NetworkStats`` outside the
        registry.  Rebuild the scenario when you need a fully fresh run.
        """
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._queue.clear()
        self.now = 0.0
        self._stopped = False
        self.events_processed = 0
        self.peak_queue_depth = 0
        self.recorder = None
        self.metrics.reset()
